#!/usr/bin/env python
"""Memory-system study: traffic, replication planning, cost-effectiveness.

Takes one SPEC95-like workload (compress by default) and walks the
paper's memory-system analyses end to end:

1. Table-1-style ESP traffic accounting (what leaves the chip?).
2. Profile-driven static replication planning (Section 3.2).
3. The effect of replication on a real 2-node DataScalar run.
4. A Wood-Hill costup/speedup cost-effectiveness check (Section 4.4).

Run:  python examples/memory_system_study.py [workload]
"""

import sys

from repro import DataScalarSystem, TraditionalSystem
from repro.analysis import CostModel, format_percent, measure_esp_traffic
from repro.core import plan_replication
from repro.experiments import (
    datascalar_config,
    timing_node_config,
    traditional_config,
)
from repro.workloads import build_program


def main(workload: str = "compress") -> None:
    program = build_program(workload)
    print(f"workload: {workload} ({program.text_bytes}B text, "
          f"{program.global_bytes + program.heap_bytes}B data)\n")

    # 1. ESP traffic accounting.
    traffic = measure_esp_traffic(program)
    print("1) ESP traffic accounting (Table 1 methodology)")
    print(f"   line misses {traffic.misses}, write-backs "
          f"{traffic.writebacks}")
    print(f"   bytes eliminated by ESP: "
          f"{format_percent(traffic.bytes_eliminated)}")
    print(f"   transactions eliminated: "
          f"{format_percent(traffic.transactions_eliminated)}\n")

    # 2. Replication planning.
    plan = plan_replication(program, page_size=4096, num_nodes=2,
                            budget_pages=6)
    hottest = plan.profile.pages_by_count()[:3]
    print("2) profile-driven replication plan")
    print(f"   hottest pages (page, accesses): {hottest}")
    print(f"   replicating {len(plan.replicated_pages)} pages; "
          f"distribution block {plan.distribution_block_pages} page(s)\n")

    # 3. Measured effect of replication.
    node = timing_node_config()
    base = DataScalarSystem(datascalar_config(2, node=node)).run(program)
    repl = DataScalarSystem(datascalar_config(2, node=node)).run(
        program, replicated_pages=plan.replicated_pages)
    print("3) two-node DataScalar runs")
    print(f"   no replication : IPC {base.ipc:.2f}, "
          f"{sum(n.broadcasts_sent for n in base.nodes)} broadcasts")
    print(f"   hot pages repl.: IPC {repl.ipc:.2f}, "
          f"{sum(n.broadcasts_sent for n in repl.nodes)} broadcasts\n")

    # 4. Cost-effectiveness.
    trad = TraditionalSystem(traditional_config(2, node=node)).run(program)
    speedup = trad.cycles / repl.cycles
    model = CostModel(processor_cost=1.0, memory_cost=8.0,
                      overhead_cost=0.25,
                      replicated_fraction=0.1)
    costup = model.costup(2)
    verdict = "YES" if model.is_cost_effective(2, speedup) else "no"
    print("4) Wood-Hill cost-effectiveness (memory-dominated chips)")
    print(f"   speedup over traditional: {speedup:.2f}x, "
          f"costup of the second node: {costup:.2f}x")
    print(f"   cost-effective: {verdict}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "compress")
