#!/usr/bin/env python
"""Quickstart: write a kernel, run it on three machines, compare.

Builds a small array-sweep program with the :class:`ProgramBuilder` DSL,
then simulates it on a 2-node DataScalar system, the matched traditional
system (half the memory on-chip, request/response off-chip), and the
perfect-data-cache upper bound.

Run:  python examples/quickstart.py
"""

from repro import (
    DataScalarSystem,
    PerfectSystem,
    SystemConfig,
    TraditionalConfig,
    TraditionalSystem,
)
from repro.experiments import (
    datascalar_config,
    timing_node_config,
    traditional_config,
)
from repro.isa import ProgramBuilder


def build_sweep_program(words: int = 8192):
    """A read-modify-write sweep over ``words`` integers (32KB)."""
    b = ProgramBuilder("sweep")
    data = b.alloc_global("data", words * 4)
    b.li("r1", data)
    b.li("r2", 0)
    with b.repeat(words, "r3"):
        b.lw("r4", "r1", 0)       # load
        b.add("r2", "r2", "r4")   # accumulate
        b.sw("r2", "r1", 0)       # store the running sum back
        b.addi("r1", "r1", 4)
    b.halt()
    return b.build()


def main() -> None:
    program = build_sweep_program()
    print(f"program: {program!r}\n")

    node = timing_node_config()

    perfect = PerfectSystem(node.cpu).run(program)
    print(f"perfect data cache : IPC {perfect.ipc:5.2f} "
          f"({perfect.cycles:,} cycles)")

    ds = DataScalarSystem(datascalar_config(2, node=node)).run(program)
    print(f"DataScalar, 2 nodes: IPC {ds.ipc:5.2f} "
          f"({ds.cycles:,} cycles, "
          f"{sum(n.broadcasts_sent for n in ds.nodes)} broadcasts, "
          f"{sum(n.dropped_stores for n in ds.nodes)} stores dropped)")

    trad = TraditionalSystem(traditional_config(2, node=node)).run(program)
    print(f"traditional (1/2)  : IPC {trad.ipc:5.2f} "
          f"({trad.cycles:,} cycles, {trad.requests} requests, "
          f"{trad.writebacks_offchip + trad.writethroughs_offchip} "
          f"off-chip writes)")

    print(f"\nDataScalar speedup over traditional: "
          f"{trad.cycles / ds.cycles:.2f}x")
    print("Note how ESP removed every request and write from the bus: the")
    print("owner of each line pushes it once, and stores complete on-chip.")


if __name__ == "__main__":
    main()
