#!/usr/bin/env python
"""ESP from the Massive Memory Machine to DataScalar datathreading.

Part 1 replays the paper's Figure 1 on the synchronous MMM model and
shows how reference-string layout (datathread length) controls lock-step
ESP performance.

Part 2 runs a pointer-chasing workload on an asynchronous (out-of-order)
DataScalar machine and shows the same effect: distributing the chain in
larger blocks lengthens datathreads and pipelines broadcasts.

Run:  python examples/esp_walkthrough.py
"""

from repro import DataScalarSystem, MassiveMemoryMachine
from repro.experiments import datascalar_config, timing_node_config
from repro.isa import ProgramBuilder

PAGE = 4096


def part1_synchronous_esp() -> None:
    print("=" * 64)
    print("Part 1: synchronous ESP (the Massive Memory Machine)")
    print("=" * 64)
    mmm = MassiveMemoryMachine(num_processors=2)
    schedule = mmm.figure1_example()
    print(f"Figure 1 reference string receive times: "
          f"{schedule.receive_times}")
    print(f"lead changes: {schedule.lead_changes}, "
          f"datathreads: {schedule.datathreads}")
    blocked = mmm.schedule([0] * 8 + [1] * 8)
    interleaved = mmm.schedule([0, 1] * 8)
    print(f"\n16 words, two owners:")
    print(f"  blocked layout (two long datathreads): "
          f"{blocked.total_cycles} cycles")
    print(f"  interleaved layout (16 lead changes ): "
          f"{interleaved.total_cycles} cycles")


def build_chase(pages: int = 8, hops: int = 600):
    """A dependent pointer chain walking sequentially through pages."""
    b = ProgramBuilder("chase")
    chain = b.alloc_global("chain", pages * PAGE)
    step = 52  # words between chain elements
    addresses = [chain + ((i * step * 4) % (pages * PAGE)) & ~3
                 for i in range(hops)]
    addresses = sorted(set(addresses))[:hops]
    for here, there in zip(addresses, addresses[1:]):
        b.init_word(here, there)
    b.init_word(addresses[-1], 0)
    b.li("r1", addresses[0])
    loop = b.fresh_label("walk")
    done = b.fresh_label("done")
    b.label(loop)
    b.beq("r1", "r0", done)
    b.lw("r1", "r1", 0)
    b.j(loop)
    b.label(done)
    b.halt()
    return b.build()


def part2_datathreading() -> None:
    print()
    print("=" * 64)
    print("Part 2: asynchronous ESP — pipelined broadcasts on 4 nodes")
    print("=" * 64)
    from repro import TraditionalSystem
    from repro.experiments import traditional_config

    program = build_chase()
    node = timing_node_config(dcache_bytes=1024)
    ds = DataScalarSystem(datascalar_config(4, node=node)).run(program)
    trad = TraditionalSystem(traditional_config(4, node=node)).run(program)
    print(f"dependent pointer chase across 8 pages, 4 nodes:")
    print(f"  DataScalar : {ds.cycles:6,} cycles "
          f"(one broadcast per chain line)")
    print(f"  traditional: {trad.cycles:6,} cycles "
          f"({trad.requests} request/response round trips)")
    print(f"  speedup    : {trad.cycles / ds.cycles:.2f}x")
    print("\nEach chain element an owner holds locally is fetched without")
    print("an off-chip round trip and its broadcast pipelines behind the")
    print("previous one — the paper's Figure 3: 2 serialized crossings")
    print("instead of 8.")


if __name__ == "__main__":
    part1_synchronous_esp()
    part2_datathreading()
