#!/usr/bin/env python
"""Hybrid SPSD/SPMD execution (paper Section 5.2).

"The DataScalar execution model is a memory system optimization, not a
substitute for parallel processing."  This example runs the same
computation three ways on identical 4-node hardware:

1. **pure SPSD** — the whole program executed redundantly (DataScalar);
2. **pure SPMD** — the parallelizable sweep split four ways, each node
   working privately on its quarter, joined by a barrier;
3. **hybrid** — the parallel sweep SPMD, the serial reduction SPSD.

Run:  python examples/hybrid_parallel.py
"""

from repro.core import HybridSystem, ParallelPhase, SerialPhase
from repro.experiments import datascalar_config, timing_node_config
from repro.isa import ProgramBuilder

WORDS = 8192  # a 32KB array
NODES = 4


def sweep_program(start: int, count: int, name: str):
    """Scale array[start : start+count] by 3 and accumulate a sum."""
    b = ProgramBuilder(name)
    arr = b.alloc_global("arr", WORDS * 4)
    for index in range(start, start + count):
        b.init_word(arr + 4 * index, index & 0xFF)
    b.li("r1", arr + 4 * start)
    b.li("r2", 0)
    b.li("r5", 3)
    with b.repeat(count, "r3"):
        b.lw("r4", "r1", 0)
        b.mul("r4", "r4", "r5")
        b.sw("r4", "r1", 0)
        b.add("r2", "r2", "r4")
        b.addi("r1", "r1", 4)
    b.halt()
    return b.build()


def reduction_program():
    """The serial tail: a dependent chain over the partial results."""
    b = ProgramBuilder("reduce")
    partials = b.alloc_global("partials", 64 * 4)
    for index in range(64):
        b.init_word(partials + 4 * index, index * 7)
    b.li("r1", partials)
    b.li("r2", 1)
    with b.repeat(64, "r3"):
        b.lw("r4", "r1", 0)
        b.add("r2", "r2", "r4")
        b.addi("r1", "r1", 4)
    b.halt()
    return b.build()


def main() -> None:
    config = datascalar_config(NODES, node=timing_node_config())
    system = HybridSystem(config)

    whole = sweep_program(0, WORDS, "whole")
    quarters = [sweep_program(i * WORDS // NODES, WORDS // NODES, f"q{i}")
                for i in range(NODES)]
    reduce_tail = reduction_program()

    spsd = system.run([SerialPhase(whole), SerialPhase(reduce_tail)])
    spmd = system.run([ParallelPhase(quarters, boundary_bytes=32),
                       SerialPhase(reduce_tail)])

    print(f"{'strategy':<28}{'cycles':>12}")
    print(f"{'pure SPSD (DataScalar)':<28}{spsd.total_cycles:>12,}")
    print(f"{'hybrid SPMD sweep + SPSD':<28}{spmd.total_cycles:>12,}")
    speedup = spsd.total_cycles / spmd.total_cycles
    print(f"\nhybrid speedup: {speedup:.2f}x "
          f"(parallel fraction {spmd.parallel_fraction:.0%}, "
          f"barrier cost {spmd.barrier_cycles} cycles)")
    print("\nThe same four chips cover both regimes: redundant SPSD where")
    print("the code is serial, partitioned SPMD where it is parallel —")
    print("the paper's argument that DataScalar hardware composes with")
    print("conventional parallel processing.")


if __name__ == "__main__":
    main()
