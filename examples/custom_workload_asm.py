#!/usr/bin/env python
"""Author a workload in textual assembly and sweep machine parameters.

Shows the other front door to the simulator: instead of the Python
builder DSL, write the kernel as assembly text, assemble it, and run a
Figure-8-style sensitivity sweep of the off-chip bus clock on it.

Run:  python examples/custom_workload_asm.py
"""

from repro import DataScalarSystem, TraditionalSystem
from repro.experiments import (
    datascalar_config,
    timing_bus_config,
    timing_node_config,
    traditional_config,
)
from repro.isa import assemble

HISTOGRAM_KERNEL = """
; histogram: count value buckets over a table, then rescan the counts.
.alloc table 16384          ; 4096 input words
.alloc bins  1024           ; 256 bucket counters

        li   r1, table
        li   r5, 255
        li   r2, 4096       ; elements
loop:
        lw   r3, r1, 0      ; value
        and  r4, r3, r5     ; bucket = value & 255
        slli r4, r4, 2
        addi r4, r4, 0
        li   r6, bins
        add  r4, r4, r6
        lw   r7, r4, 0      ; counter
        addi r7, r7, 1
        sw   r7, r4, 0      ; store it back (read-modify-write)
        addi r1, r1, 4
        addi r2, r2, -1
        bgt  r2, r0, loop

        li   r1, bins       ; rescan the bins
        li   r2, 256
        li   r8, 0
scan:
        lw   r3, r1, 0
        add  r8, r8, r3
        addi r1, r1, 4
        addi r2, r2, -1
        bgt  r2, r0, scan
        halt
"""


def main() -> None:
    program = assemble(HISTOGRAM_KERNEL, name="histogram")
    # Give the input table some values.
    table_base = 0x1000_0000
    builder_view = program.data_image
    for index in range(4096):
        builder_view[table_base + 4 * index] = (index * 2654435761) & 0xFFFF

    node = timing_node_config(dcache_bytes=2048)
    print("bus clock sweep (processor cycles per bus cycle):\n")
    print(f"{'divisor':>8} {'DataScalar-2 IPC':>18} {'traditional IPC':>16}")
    for divisor in (2, 4, 8, 16):
        bus = timing_bus_config(cycles_per_bus_cycle=divisor)
        ds = DataScalarSystem(
            datascalar_config(2, node=node, bus=bus)).run(program)
        trad = TraditionalSystem(
            traditional_config(2, node=node, bus=bus)).run(program)
        print(f"{divisor:>8} {ds.ipc:>18.3f} {trad.ipc:>16.3f}")
    print("\nAn instructive *loss* for DataScalar: the histogram's hot")
    print("bucket array fits on the traditional chip, so it never goes")
    print("off-chip there — while ESP must still broadcast every input")
    print("line to the other node.  DataScalar pays off when the working")
    print("set exceeds what one chip can hold (see quickstart.py and the")
    print("Figure 7 benchmarks); small hot data favors the traditional")
    print("machine, exactly the go-like behavior in the paper's results.")


if __name__ == "__main__":
    main()
