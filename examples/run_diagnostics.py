#!/usr/bin/env python
"""Diagnosing a DataScalar run: timelines, skew, and placement.

Records a cycle-sampled timeline of a 2-node run (per-node commit
progress, BSHR/DCUB occupancy, broadcast counts), reports the commit
skew between nodes — how far the datathreading leader runs ahead — and
then applies affinity-based page placement to see whether a smarter
layout helps this workload.

Run:  python examples/run_diagnostics.py [workload]
"""

import sys

from repro.analysis import TimelineRecorder
from repro.core import (
    AffinityGraph,
    DataScalarSystem,
    analyze_stream,
    plan_placement,
    round_robin_placement,
)
from repro.experiments import datascalar_config, timing_node_config
from repro.isa import Interpreter
from repro.workloads import build_program

LIMIT = 20_000


def main(workload: str = "gcc") -> None:
    program = build_program(workload)
    config = datascalar_config(2, node=timing_node_config())

    # 1. Timeline-sampled run.
    recorder = TimelineRecorder(sample_every=250)
    result = DataScalarSystem(config).run(program, limit=LIMIT,
                                          observer=recorder)
    timeline = recorder.timeline
    skew = timeline.commit_skew()
    print(f"workload {workload}: {result.cycles:,} cycles, "
          f"IPC {result.ipc:.2f}")
    print(f"samples: {len(timeline.samples)} "
          f"(every 250 cycles)")
    print(f"commit skew between nodes: max {max(skew)}, "
          f"mean {sum(skew) / len(skew):.1f} instructions")
    print(f"peak BSHR occupancy: "
          f"{max(max(s.bshr_occupancy) for s in timeline.samples)}")
    print(f"peak DCUB occupancy: "
          f"{max(max(s.dcub_occupancy) for s in timeline.samples)}")

    # 2. Placement study on the same reference stream.
    page_size = config.node.memory.page_size
    graph = AffinityGraph(page_size)
    addrs = [ref.addr for ref in Interpreter(program).mem_refs(
        limit=LIMIT, include_ifetch=False)]
    graph.observe_stream(addrs)
    smart = plan_placement(graph, num_nodes=2)
    naive = round_robin_placement(graph, num_nodes=2)
    smart_threads = analyze_stream(smart.build_page_table(page_size), addrs)
    naive_threads = analyze_stream(naive.build_page_table(page_size), addrs)
    print(f"\npage placement (datathread mean length):")
    print(f"  round-robin : {naive_threads.mean_length:6.2f} "
          f"(cut weight {naive.cut_weight:,})")
    print(f"  affinity    : {smart_threads.mean_length:6.2f} "
          f"(cut weight {smart.cut_weight:,})")
    improvement = (smart_threads.mean_length
                   / max(naive_threads.mean_length, 1e-9))
    print(f"  -> {improvement:.2f}x longer datathreads from layout alone")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "gcc")
