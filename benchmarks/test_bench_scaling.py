"""Benchmark: node-count scaling (Section 4.4's scalability question)."""

from conftest import run_once

from repro.experiments import format_scaling, run_scaling


def test_scaling_with_node_count(benchmark, timing_limit):
    points = run_once(benchmark, run_scaling, "compress",
                      node_counts=(1, 2, 4, 8), limit=timing_limit)
    print()
    print(format_scaling(points))
    multi = [p for p in points if p.num_nodes >= 2]
    # ESP traffic is constant in node count...
    assert len({p.broadcasts for p in multi}) == 1
    # ...so the DataScalar advantage grows as the traditional machine's
    # on-chip fraction shrinks.
    assert multi[-1].speedup > multi[0].speedup
