"""Benchmark: the cost of the perfect-branch-prediction assumption.

The paper assumes perfect prediction and notes its correspondence
protocol "does not currently support speculative broadcasts".  This
bench measures what that buys: DataScalar with a real (bimodal)
predictor, with and without the conservative commit-time broadcast
buffering a speculation-safe protocol would need.
"""

import dataclasses

from conftest import run_once

from repro.analysis import format_table
from repro.core import DataScalarSystem
from repro.experiments import datascalar_config, timing_node_config
from repro.workloads import build_program

LIMIT = 10_000


def test_speculation_cost(benchmark):
    def run():
        rows = []
        for name in ("go", "compress"):
            program = build_program(name)
            node = timing_node_config()
            perfect = DataScalarSystem(
                datascalar_config(2, node=node)).run(program, limit=LIMIT)
            bp_cpu = dataclasses.replace(node.cpu,
                                         branch_predictor="bimodal")
            bp_node = dataclasses.replace(node, cpu=bp_cpu)
            predicted = DataScalarSystem(
                datascalar_config(2, node=bp_node)).run(program, limit=LIMIT)
            spec_node = dataclasses.replace(bp_node,
                                            commit_time_broadcasts=True)
            buffered = DataScalarSystem(
                datascalar_config(2, node=spec_node)).run(program,
                                                          limit=LIMIT)
            mispredict = predicted.nodes[0].pipeline.misprediction_rate
            rows.append((name, perfect, predicted, buffered, mispredict))
        return rows

    rows = run_once(benchmark, run)
    print()
    table_rows = []
    for name, perfect, predicted, buffered, mispredict in rows:
        table_rows.append([
            name,
            round(perfect.ipc, 3),
            round(predicted.ipc, 3),
            round(buffered.ipc, 3),
            f"{mispredict:.1%}",
        ])
    print(format_table(
        ["benchmark", "perfect BP", "bimodal BP",
         "bimodal + buffered bcasts", "mispredict rate"],
        table_rows,
        title="Extension: cost of the perfect-prediction assumption "
              "(DataScalar, 2 nodes)",
    ))
    for name, perfect, predicted, buffered, _ in rows:
        assert perfect.ipc >= predicted.ipc >= buffered.ipc * 0.95, name
