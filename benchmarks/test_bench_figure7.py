"""Benchmark: regenerate Figure 7 (IPC across the five systems)."""

from conftest import run_once

from repro.experiments import format_figure7, run_figure7


def test_figure7_ipc_comparison(benchmark, timing_limit):
    rows = run_once(benchmark, run_figure7, limit=timing_limit)
    print()
    print(format_figure7(rows))
    by_name = {row.benchmark: row for row in rows}
    for row in rows:
        # The perfect data cache bounds everything.
        assert row.perfect_ipc >= row.datascalar2_ipc
        assert row.perfect_ipc >= row.traditional_half_ipc
        # DataScalar degrades less than traditional with finer
        # distribution (the paper's 2->4 node comparison).
        ds_drop = row.datascalar2_ipc - row.datascalar4_ipc
        trad_drop = row.traditional_half_ipc - row.traditional_quarter_ipc
        assert ds_drop <= trad_drop + 0.1, row.benchmark
    # compress is a clear DataScalar win (store elimination).
    assert by_name["compress"].speedup_2 > 1.0
    assert by_name["compress"].speedup_4 > 1.3
    # At four nodes the clear majority of benchmarks favor DataScalar
    # (the paper: +9% to +100%; our scaled go stays traditional-friendly
    # because its hot pages fit the traditional chip's memory).
    wins = sum(1 for row in rows if row.speedup_4 > 1.0)
    assert wins >= 4
