"""Benchmark: regenerate Table 3 (DataScalar broadcast statistics)."""

from conftest import run_once

from repro.experiments import format_table3, run_table3


def test_table3_broadcast_statistics(benchmark, timing_limit):
    rows = run_once(benchmark, run_table3, limit=timing_limit)
    print()
    print(format_table3(rows))
    for row in rows:
        assert row.total_broadcasts > 0
        assert 0.0 <= row.late_broadcasts <= 0.8
        assert 0.0 <= row.bshr_squashes <= 0.8
