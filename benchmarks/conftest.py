"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures and
prints it (run with ``-s`` or ``tee`` to capture).  Instruction limits
default to quick-run sizes; set ``REPRO_FULL=1`` to run every kernel to
completion (several minutes per figure, closest to the paper's setup).
"""

import os

import pytest

#: Dynamic-instruction cap for timing benchmarks in quick mode.
QUICK_TIMING_LIMIT = 16_000
#: Cap for trace-level (cache-filter) benchmarks in quick mode.
QUICK_TRACE_LIMIT = 120_000


def full_run() -> bool:
    return os.environ.get("REPRO_FULL", "") == "1"


@pytest.fixture
def timing_limit():
    return None if full_run() else QUICK_TIMING_LIMIT


@pytest.fixture
def trace_limit():
    return None if full_run() else QUICK_TRACE_LIMIT


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
