"""Benchmark: regenerate Table 1 (off-chip traffic reduced by ESP)."""

from conftest import run_once

from repro.experiments import format_table1, run_table1


def test_table1_traffic_reduction(benchmark, trace_limit):
    rows = run_once(benchmark, run_table1, limit=trace_limit)
    print()
    print(format_table1(rows))
    # Paper-shape assertions: transaction elimination is always >= 50%,
    # byte elimination lands in a sane band.
    for row in rows:
        assert row.transactions_eliminated >= 0.5
        assert 0.0 <= row.bytes_eliminated < 0.8
