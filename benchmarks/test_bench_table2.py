"""Benchmark: regenerate Table 2 (datathread measurements, 4 nodes)."""

from conftest import run_once

from repro.experiments import format_table2, run_table2


def test_table2_datathreads(benchmark, trace_limit):
    rows = run_once(benchmark, run_table2, limit=trace_limit)
    print()
    print(format_table2(rows))
    by_name = {row.benchmark: row for row in rows}
    # Paper shapes: fpppp's replicated text gives the longest text
    # threads; the interleaved-array FP codes have short data threads.
    assert by_name["fpppp"].thread_text == max(
        row.thread_text for row in rows)
    for name in ("swim", "mgrid"):
        assert by_name[name].thread_data < 50
