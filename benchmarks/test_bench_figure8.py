"""Benchmark: regenerate Figure 8 (sensitivity analysis panels)."""

import os

from conftest import full_run, run_once

from repro.experiments import PARAMETERS, format_figure8, run_figure8

#: Reduced value grids for quick mode (full mode uses every value).
QUICK_VALUES = {
    "cache_size": [4 * 1024, 16 * 1024],
    "memory_latency": [4, 32],
    "bus_clock": [2, 16],
    "bus_width": [2, 16],
    "ruu_entries": [16, 256],
}


def test_figure8_sensitivity(benchmark):
    limit = None if full_run() else 5000
    values = None if full_run() else QUICK_VALUES
    panels = run_once(benchmark, run_figure8, limit=limit,
                      values_per_parameter=values)
    print()
    print(format_figure8(panels))
    assert len(panels) == 2 * len(PARAMETERS)
    for panel in panels:
        for point in panel.points:
            assert point.perfect_ipc >= point.datascalar2_ipc
            assert point.datascalar4_ipc > 0
    # The paper's convergence claim: as memory bank time dominates, the
    # systems converge (measured on go; see EXPERIMENTS.md).
    go_mem = next(p for p in panels
                  if p.benchmark == "go" and p.parameter == "memory_latency")
    first, last = go_mem.points[0], go_mem.points[-1]
    gap_first = first.datascalar2_ipc / first.traditional_half_ipc
    gap_last = last.datascalar2_ipc / last.traditional_half_ipc
    assert abs(gap_last - 1.0) < abs(gap_first - 1.0) + 0.15
