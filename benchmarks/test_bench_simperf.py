"""Benchmark: simulator wall-clock speed (scheduler + front-end paths).

Times :meth:`DataScalarSystem.run` on a memory-bound four-node
configuration — ``compress`` over the slow-bus Figure 8 sweep point
(16 processor cycles per bus cycle) — on three rungs of the optimization
ladder:

* **dense**: the pre-optimization scheduler (one interpreter per node,
  ``fast_forward=False``);
* **interpreter**: shared trace fan-out + idle-cycle fast-forward, the
  classic interpreter front end (``engine="interpreter"``);
* **codegen**: the same scheduler fed by the program-specialized
  generated stepper (``engine="codegen"``, :mod:`repro.isa.codegen`).

All three must produce bit-identical results.  The full-system speedup
lives mostly in the scheduler (the functional front end is a few percent
of a timing run — Amdahl caps what codegen can add there), so the
front-end win is measured where it actually accrues: a micro-benchmark
of the two engines generating the same dynamic stream, at both the
``trace`` grain (what the timing models consume) and the ``run`` grain
(pure functional execution, as in trace-level studies).

``BENCH_simperf.json`` at the repo root records the measured numbers;
regenerate it on a quiet machine with ``REPRO_WRITE_BENCH=1``.
"""

import dataclasses
import json
import os
import pathlib
import time
from collections import deque

from conftest import QUICK_TIMING_LIMIT, full_run, run_once

from repro.core import DataScalarSystem
from repro.experiments.config import datascalar_config, timing_bus_config
from repro.isa.codegen import CompiledExecution
from repro.isa.interpreter import Interpreter
from repro.obs.spans import (SpanRecorder, breakdown, recording,
                             records_as_dicts)
from repro.workloads import build_program

BASELINE_PATH = pathlib.Path(__file__).resolve().parent.parent \
    / "BENCH_simperf.json"
WORKLOAD = "compress"
NUM_NODES = 4
#: Figure 8's slowest bus clock: the wait-dominated regime where the
#: dense scheduler burns most of its time ticking idle pipelines.
CYCLES_PER_BUS_CYCLE = 16
#: Minimum full-system speedup of the optimized scheduler (codegen
#: front end, the default) over the dense one.  Measured ~2.3-2.5x
#: with the specialized timing loop (see BENCH_simperf.json); asserted
#: with headroom for machine variance.  ``REPRO_MIN_SPEEDUP``
#: overrides the floor (CI's bench smoke raises it).
MIN_SPEEDUP = float(os.environ.get("REPRO_MIN_SPEEDUP", "1.5"))
#: Minimum front-end speedup of the generated stepper over the
#: interpreter at the ``run`` grain (measured ~3.6x) and the ``trace``
#: grain (measured ~2.1x).  Overridable for noisy machines.
MIN_RUN_SPEEDUP = float(os.environ.get("REPRO_MIN_RUN_SPEEDUP", "2.0"))
MIN_TRACE_SPEEDUP = float(os.environ.get("REPRO_MIN_TRACE_SPEEDUP", "1.3"))
#: Micro-benchmark repetitions (best-of, to shed scheduler noise).
FRONTEND_REPS = 5


class _DenseSystem(DataScalarSystem):
    """The pre-optimization scheduler (see tests/test_fastforward_equivalence)."""

    def _make_trace(self, program, node_id, limit):
        return Interpreter(program).trace(limit=limit)


def _key(result):
    return (result.cycles, result.instructions, result.bus_transactions,
            result.bus_payload_bytes)


def _best_of(fn, reps=FRONTEND_REPS):
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _frontend_series(program, limit):
    """Best-of times for both engines at both grains, plus parity."""
    drain = deque(maxlen=0)  # cheapest way to exhaust a generator
    # Warm once: program build and codegen compile are memoized per
    # process; steady-state generation speed is what sweeps see.
    drain.extend(CompiledExecution(program).trace(limit=limit))
    interp_trace = _best_of(
        lambda: drain.extend(Interpreter(program).trace(limit=limit)))
    codegen_trace = _best_of(
        lambda: drain.extend(CompiledExecution(program).trace(limit=limit)))
    interp_run = _best_of(lambda: Interpreter(program).run(limit=limit))
    codegen_run = _best_of(
        lambda: CompiledExecution(program).run(limit=limit))
    assert (CompiledExecution(program).run(limit=limit)
            == Interpreter(program).run(limit=limit))
    return {
        "trace": {
            "interpreter_seconds": round(interp_trace, 4),
            "codegen_seconds": round(codegen_trace, 4),
            "speedup": round(interp_trace / codegen_trace, 3),
        },
        "run": {
            "interpreter_seconds": round(interp_run, 4),
            "codegen_seconds": round(codegen_run, 4),
            "speedup": round(interp_run / codegen_run, 3),
        },
    }


def _timing_phases(config, program, limit):
    """Timing-loop phase breakdown from a separate instrumented run.

    Kept apart from the timed runs: an active span recorder swaps the
    flat ``tick`` for the accumulator-instrumented ``tick_spanned``,
    which is slower — instrumenting the timed run would corrupt
    ``optimized_seconds``.  The absolute seconds recorded here are an
    instrumented run's, but the share gate
    (``repro.obs.baseline --share-tolerance``) only consumes the
    *ratios* between phases, which the instrumentation overhead shifts
    far less than machine variance does.
    """
    recorder = SpanRecorder()
    with recording(recorder):
        DataScalarSystem(dataclasses.replace(config, engine="codegen")).run(
            program, limit=limit)
    return {
        name: round(entry["wall"], 6)
        for name, entry in breakdown(
            records_as_dicts(recorder), root="timing-loop").items()
    }


def test_simperf_speedup(benchmark):
    limit = None if full_run() else QUICK_TIMING_LIMIT
    program = build_program(WORKLOAD)
    config = datascalar_config(
        num_nodes=NUM_NODES,
        bus=timing_bus_config(cycles_per_bus_cycle=CYCLES_PER_BUS_CYCLE))
    program_dense = build_program(WORKLOAD)

    start = time.perf_counter()
    dense = _DenseSystem(
        dataclasses.replace(config, fast_forward=False)).run(
            program_dense, limit=limit)
    dense_seconds = time.perf_counter() - start

    start = time.perf_counter()
    interp = DataScalarSystem(
        dataclasses.replace(config, engine="interpreter")).run(
            program, limit=limit)
    interpreter_seconds = time.perf_counter() - start

    start = time.perf_counter()
    fast = run_once(benchmark, DataScalarSystem(
        dataclasses.replace(config, engine="codegen")).run,
        program, limit=limit)
    fast_seconds = time.perf_counter() - start

    assert _key(fast) == _key(dense)
    assert _key(fast) == _key(interp)
    speedup = dense_seconds / fast_seconds
    frontend = _frontend_series(program, limit)
    record = {
        "workload": WORKLOAD,
        "num_nodes": NUM_NODES,
        "interconnect": "bus",
        "cycles_per_bus_cycle": CYCLES_PER_BUS_CYCLE,
        "limit": limit,
        "cpus": os.cpu_count() or 1,
        "cycles": fast.cycles,
        "instructions": fast.instructions,
        "dense_seconds": round(dense_seconds, 4),
        "interpreter_seconds": round(interpreter_seconds, 4),
        "optimized_seconds": round(fast_seconds, 4),
        "speedup": round(speedup, 3),
        "engine_speedup": round(interpreter_seconds / fast_seconds, 3),
        "frontend": frontend,
        "timing_phases": _timing_phases(config, program, limit),
    }
    print()
    print(json.dumps(record, indent=2))
    if os.environ.get("REPRO_WRITE_BENCH", "") == "1":
        BASELINE_PATH.write_text(json.dumps(record, indent=2) + "\n")
        return
    if limit == QUICK_TIMING_LIMIT and BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        # The committed baseline documents the acceptance measurement;
        # cycle counts are deterministic and must match it exactly.
        assert baseline["cycles"] == fast.cycles
        assert baseline["instructions"] == fast.instructions
        assert baseline["speedup"] >= 2.0
        assert baseline["frontend"]["run"]["speedup"] >= 3.0
    assert speedup >= MIN_SPEEDUP, (
        f"optimized scheduler only {speedup:.2f}x faster than dense "
        f"({fast_seconds:.3f}s vs {dense_seconds:.3f}s)")
    assert frontend["run"]["speedup"] >= MIN_RUN_SPEEDUP, (
        f"generated stepper only {frontend['run']['speedup']:.2f}x faster "
        f"than the interpreter at the run grain")
    assert frontend["trace"]["speedup"] >= MIN_TRACE_SPEEDUP, (
        f"generated stepper only {frontend['trace']['speedup']:.2f}x "
        f"faster than the interpreter at the trace grain")


# ----------------------------------------------------------------------
# Intra-run sharding: warm-sharded wall-clock vs straight-through
# (docs/runner.md, "Intra-run sharding and checkpoint caching").
# ----------------------------------------------------------------------
#: Long-horizon run for the sharding measurement — inside compress's
#: ~44k dynamic instructions so every shard boundary is reachable.
SHARDED_LIMIT = 40_000
SHARDED_SHARDS = 4
#: Minimum straight-through / warm-sharded speedup.  Real fan-out
#: needs real cores: asserted only on machines with >= SHARDED_SHARDS
#: CPUs (the committed record is ``cpus``-stamped, so a single-core
#: container produces honest numbers without a vacuous floor) —
#: the same convention as BENCH_sweep's parallel floor.
MIN_SHARDED_SPEEDUP = float(os.environ.get("REPRO_MIN_SHARDED_SPEEDUP",
                                           "2.0"))


def test_simperf_sharded(tmp_path):
    from repro.runner import ResultCache, ShardedRun
    from repro.runner.digest import result_fingerprint

    config = datascalar_config(
        num_nodes=NUM_NODES,
        bus=timing_bus_config(cycles_per_bus_cycle=CYCLES_PER_BUS_CYCLE))
    program = build_program(WORKLOAD)

    start = time.perf_counter()
    straight = DataScalarSystem(config).run(program, limit=SHARDED_LIMIT)
    straight_seconds = time.perf_counter() - start

    cache = ResultCache(tmp_path)
    sharded = ShardedRun(SHARDED_SHARDS, cache=cache, jobs=SHARDED_SHARDS)
    start = time.perf_counter()
    cold = sharded.run(WORKLOAD, limit=SHARDED_LIMIT, config=config)
    cold_seconds = time.perf_counter() - start
    assert not sharded.last_warm
    assert result_fingerprint(cold) == result_fingerprint(straight)

    start = time.perf_counter()
    warm = sharded.run(WORKLOAD, limit=SHARDED_LIMIT, config=config)
    warm_seconds = time.perf_counter() - start
    # The rerun must actually be served from the checkpoint cache...
    assert sharded.last_warm
    hits = sharded.registry.counter("runner.checkpoint.hits").value
    assert hits == len(sharded.last_boundaries) > 0
    # ...and stitch a bit-identical result.
    assert result_fingerprint(warm) == result_fingerprint(straight)

    cpus = os.cpu_count() or 1
    speedup = straight_seconds / warm_seconds
    record = {
        "workload": WORKLOAD,
        "num_nodes": NUM_NODES,
        "limit": SHARDED_LIMIT,
        "shards": SHARDED_SHARDS,
        "cpus": cpus,
        "cycles": warm.cycles,
        "instructions": warm.instructions,
        "straight_seconds": round(straight_seconds, 4),
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "speedup": round(speedup, 3),
    }
    print()
    print(json.dumps({"sharded": record}, indent=2))
    if os.environ.get("REPRO_WRITE_BENCH", "") == "1":
        merged = (json.loads(BASELINE_PATH.read_text())
                  if BASELINE_PATH.exists() else {})
        merged["sharded"] = record
        BASELINE_PATH.write_text(json.dumps(merged, indent=2) + "\n")
        return
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text()).get("sharded")
        if baseline and baseline["limit"] == SHARDED_LIMIT:
            # Deterministic numbers must match the committed record.
            assert baseline["cycles"] == warm.cycles
            assert baseline["instructions"] == warm.instructions
    if cpus >= SHARDED_SHARDS:
        assert speedup >= MIN_SHARDED_SPEEDUP, (
            f"warm sharded run only {speedup:.2f}x faster than "
            f"straight-through ({warm_seconds:.3f}s vs "
            f"{straight_seconds:.3f}s) on {cpus} CPUs")
    else:
        print(f"[sharded] {cpus} CPU(s) < {SHARDED_SHARDS}: recording "
              f"honest numbers, skipping the {MIN_SHARDED_SPEEDUP}x floor")
