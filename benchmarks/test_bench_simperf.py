"""Benchmark: simulator wall-clock speed (scheduler fast path).

Times :meth:`DataScalarSystem.run` on a memory-bound four-node
configuration — ``compress`` over the slow-bus Figure 8 sweep point
(16 processor cycles per bus cycle) — under the optimized scheduler
(shared trace fan-out + idle-cycle fast-forward, the defaults) and under
the pre-optimization dense scheduler (one interpreter per node,
``fast_forward=False``).  Both runs must produce bit-identical results;
the optimized run must be at least twice as fast.

``BENCH_simperf.json`` at the repo root records the measured numbers;
regenerate it on a quiet machine with ``REPRO_WRITE_BENCH=1``.
"""

import dataclasses
import json
import os
import pathlib
import time

from conftest import QUICK_TIMING_LIMIT, full_run, run_once

from repro.core import DataScalarSystem
from repro.experiments.config import datascalar_config, timing_bus_config
from repro.isa.interpreter import Interpreter
from repro.workloads import build_program

BASELINE_PATH = pathlib.Path(__file__).resolve().parent.parent \
    / "BENCH_simperf.json"
WORKLOAD = "compress"
NUM_NODES = 4
#: Figure 8's slowest bus clock: the wait-dominated regime where the
#: dense scheduler burns most of its time ticking idle pipelines.
CYCLES_PER_BUS_CYCLE = 16
#: Minimum speedup the optimized scheduler must deliver here.  Measured
#: ~2.2x (see BENCH_simperf.json); asserted with headroom for machine
#: variance.  ``REPRO_MIN_SPEEDUP`` overrides the floor (CI's bench
#: smoke job raises it to 1.5).
MIN_SPEEDUP = float(os.environ.get("REPRO_MIN_SPEEDUP", "1.4"))


class _DenseSystem(DataScalarSystem):
    """The pre-optimization scheduler (see tests/test_fastforward_equivalence)."""

    def _make_trace(self, program, node_id, limit):
        return Interpreter(program).trace(limit=limit)


def _key(result):
    return (result.cycles, result.instructions, result.bus_transactions,
            result.bus_payload_bytes)


def test_simperf_speedup(benchmark):
    limit = None if full_run() else QUICK_TIMING_LIMIT
    program = build_program(WORKLOAD)
    config = datascalar_config(
        num_nodes=NUM_NODES,
        bus=timing_bus_config(cycles_per_bus_cycle=CYCLES_PER_BUS_CYCLE))
    program_dense = build_program(WORKLOAD)

    start = time.perf_counter()
    dense = _DenseSystem(
        dataclasses.replace(config, fast_forward=False)).run(
            program_dense, limit=limit)
    dense_seconds = time.perf_counter() - start

    start = time.perf_counter()
    fast = run_once(benchmark, DataScalarSystem(config).run,
                    program, limit=limit)
    fast_seconds = time.perf_counter() - start

    assert _key(fast) == _key(dense)
    speedup = dense_seconds / fast_seconds
    record = {
        "workload": WORKLOAD,
        "num_nodes": NUM_NODES,
        "interconnect": "bus",
        "cycles_per_bus_cycle": CYCLES_PER_BUS_CYCLE,
        "limit": limit,
        "cycles": fast.cycles,
        "instructions": fast.instructions,
        "dense_seconds": round(dense_seconds, 4),
        "optimized_seconds": round(fast_seconds, 4),
        "speedup": round(speedup, 3),
    }
    print()
    print(json.dumps(record, indent=2))
    if os.environ.get("REPRO_WRITE_BENCH", "") == "1":
        BASELINE_PATH.write_text(json.dumps(record, indent=2) + "\n")
        return
    if limit == QUICK_TIMING_LIMIT and BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        # The committed baseline documents the acceptance measurement;
        # cycle counts are deterministic and must match it exactly.
        assert baseline["cycles"] == fast.cycles
        assert baseline["instructions"] == fast.instructions
        assert baseline["speedup"] >= 2.0
    assert speedup >= MIN_SPEEDUP, (
        f"optimized scheduler only {speedup:.2f}x faster than dense "
        f"({fast_seconds:.3f}s vs {dense_seconds:.3f}s)")
