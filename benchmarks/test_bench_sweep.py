"""Benchmark: sweep-runner throughput (parallel fan-out + result cache).

Runs the full Figure 7 sweep (six benchmarks × five systems = thirty
points) three ways and times each: cold serial (``jobs=1``, no cache),
cold parallel (``jobs=min(4, cpus)``), and warm from the
content-addressed cache.  All three paths must produce bit-identical
results; the warm path must beat cold serial by at least 10x
(``REPRO_MIN_WARM_SPEEDUP`` overrides the floor).

The parallel-speedup floor (``REPRO_MIN_PARALLEL_SPEEDUP``, default 2x)
is only asserted when the machine actually has four or more CPUs —
process fan-out cannot beat serial on a single-core container, and this
suite records honest numbers.  ``BENCH_sweep.json`` at the repo root
stores the measurement (with its ``cpus`` field) from the most recent
``REPRO_WRITE_BENCH=1`` run; CI's four-vCPU sweep job regenerates and
uploads it as an artifact.
"""

import hashlib
import json
import os
import pathlib
import time

from conftest import QUICK_TIMING_LIMIT, full_run, run_once

from repro.experiments.figure7 import benchmark_points
from repro.runner import ResultCache, SweepRunner, result_fingerprint
from repro.workloads import TIMING_BENCHMARKS, build_program

BASELINE_PATH = pathlib.Path(__file__).resolve().parent.parent \
    / "BENCH_sweep.json"
PARALLEL_JOBS = min(4, os.cpu_count() or 1)
MIN_WARM_SPEEDUP = float(os.environ.get("REPRO_MIN_WARM_SPEEDUP", "10"))
MIN_PARALLEL_SPEEDUP = float(
    os.environ.get("REPRO_MIN_PARALLEL_SPEEDUP", "2"))


def _sweep_points(limit):
    points = []
    for name in TIMING_BENCHMARKS:
        points.extend(benchmark_points(name, limit=limit))
    return points


def _sweep_sha(results) -> str:
    text = json.dumps([result_fingerprint(r) for r in results],
                      sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def test_sweep_runner_throughput(benchmark, tmp_path):
    limit = None if full_run() else QUICK_TIMING_LIMIT
    points = _sweep_points(limit)
    for name in TIMING_BENCHMARKS:  # warm the program cache up front so
        build_program(name)         # every timed path measures pure
                                    # simulation, not program assembly
    start = time.perf_counter()
    serial = SweepRunner(jobs=1).run(points)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = SweepRunner(jobs=PARALLEL_JOBS).run(points)
    parallel_seconds = time.perf_counter() - start

    cache = ResultCache(tmp_path / "sweep-cache", code_version="bench")
    SweepRunner(jobs=1, cache=cache).run(points)
    warm_runner = SweepRunner(jobs=1, cache=cache)
    start = time.perf_counter()
    warm = run_once(benchmark, warm_runner.run, points)
    warm_seconds = time.perf_counter() - start

    # Hard invariant: the three paths are bit-identical.
    assert warm_runner.registry.counter("runner.points.executed").value == 0
    sha = _sweep_sha(serial)
    assert _sweep_sha(parallel) == sha
    assert _sweep_sha(warm) == sha

    parallel_speedup = serial_seconds / parallel_seconds
    warm_speedup = serial_seconds / warm_seconds
    record = {
        "cpus": os.cpu_count() or 1,
        "points": len(points),
        "limit": limit,
        "sweep_sha": sha,
        "serial_seconds": round(serial_seconds, 4),
        "parallel_jobs": PARALLEL_JOBS,
        "parallel_seconds": round(parallel_seconds, 4),
        "parallel_speedup": round(parallel_speedup, 3),
        "warm_seconds": round(warm_seconds, 4),
        "warm_speedup": round(warm_speedup, 1),
    }
    print()
    print(json.dumps(record, indent=2))
    if os.environ.get("REPRO_WRITE_BENCH", "") == "1":
        BASELINE_PATH.write_text(json.dumps(record, indent=2) + "\n")
        return
    if limit == QUICK_TIMING_LIMIT and BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        # Simulation is deterministic: the sweep's content hash must
        # match the committed measurement exactly.
        assert baseline["sweep_sha"] == sha
        # The committed measurement's parallel floor is only meaningful
        # when it was taken on a machine with real fan-out; the stamped
        # cpus field says which.  (Single-core containers record
        # parallel_speedup ~1x honestly — don't flake on them.)
        if baseline.get("cpus", 0) >= 4:
            assert baseline["parallel_speedup"] >= MIN_PARALLEL_SPEEDUP
    assert warm_speedup >= MIN_WARM_SPEEDUP, (
        f"warm cache only {warm_speedup:.1f}x faster than cold serial "
        f"({warm_seconds:.3f}s vs {serial_seconds:.3f}s)")
    if (os.cpu_count() or 1) >= 4:
        assert parallel_speedup >= MIN_PARALLEL_SPEEDUP, (
            f"jobs={PARALLEL_JOBS} only {parallel_speedup:.2f}x faster "
            f"than serial ({parallel_seconds:.3f}s vs "
            f"{serial_seconds:.3f}s)")
