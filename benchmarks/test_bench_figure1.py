"""Benchmark: regenerate Figure 1 (ESP Massive Memory Machine)."""

from conftest import run_once

from repro.experiments import format_figure1, run_figure1


def test_figure1_esp_operation(benchmark):
    result = run_once(benchmark, run_figure1)
    print()
    print(format_figure1(result))
    assert result.paper_schedule.receive_times == [1, 2, 3, 4, 7, 8, 9,
                                                   12, 13]
    assert result.paper_schedule.lead_changes == 2
