"""Benchmark: regenerate Figure 3 (pipelined broadcasts vs round trips)."""

from conftest import run_once

from repro.experiments import format_figure3, run_figure3


def test_figure3_offchip_serialization(benchmark):
    result = run_once(benchmark, run_figure3)
    print()
    print(format_figure3(result))
    assert result.datascalar_crossings == 2
    assert result.traditional_crossings == 8
    assert result.datascalar_cycles < result.traditional_cycles
