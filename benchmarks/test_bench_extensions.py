"""Benchmarks for the extension features beyond the paper's figures:
technology scenarios, hybrid SPSD/SPMD, datathread-aware placement, and
the branch-prediction survey behind the perfect-BP assumption.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.core import (
    AffinityGraph,
    HybridSystem,
    ParallelPhase,
    SerialPhase,
    analyze_stream,
    plan_placement,
    round_robin_placement,
)
from repro.cpu import survey_predictors
from repro.experiments import datascalar_config, run_scenarios, \
    timing_node_config
from repro.isa import Interpreter, ProgramBuilder
from repro.workloads import build_program

LIMIT = 10_000


def test_extension_technology_scenarios(benchmark):
    """Section 1's three candidate platforms on one workload."""
    program = build_program("compress")
    results = run_once(benchmark, run_scenarios, program, num_nodes=2,
                       limit=LIMIT)
    print()
    print(format_table(
        ["scenario", "DataScalar IPC", "traditional IPC", "speedup"],
        [[r.scenario, round(r.datascalar_ipc, 3),
          round(r.traditional_ipc, 3), f"{r.speedup:.2f}x"]
         for r in results],
        title="Extension: technology scenarios (compress, 2 nodes)",
    ))
    by_name = {r.scenario: r for r in results}
    assert by_name["cmp"].datascalar_ipc > by_name["now"].datascalar_ipc


def test_extension_hybrid_spsd_spmd(benchmark):
    """Section 5.2: partitioned SPMD sweep vs redundant SPSD."""
    words = 4096
    nodes = 2

    def sweep(start, count, name):
        b = ProgramBuilder(name)
        arr = b.alloc_global("arr", words * 4)
        b.li("r1", arr + 4 * start)
        b.li("r2", 0)
        with b.repeat(count, "r3"):
            b.lw("r4", "r1", 0)
            b.add("r2", "r2", "r4")
            b.sw("r2", "r1", 0)
            b.addi("r1", "r1", 4)
        b.halt()
        return b.build()

    config = datascalar_config(nodes, node=timing_node_config())

    def run():
        system = HybridSystem(config)
        spsd = system.run([SerialPhase(sweep(0, words, "whole"))])
        spmd = system.run([ParallelPhase(
            [sweep(i * words // nodes, words // nodes, f"p{i}")
             for i in range(nodes)], boundary_bytes=16)])
        return spsd, spmd

    spsd, spmd = run_once(benchmark, run)
    print()
    print(format_table(
        ["strategy", "cycles"],
        [["pure SPSD", spsd.total_cycles],
         ["SPMD partitioned", spmd.total_cycles]],
        title="Extension: hybrid execution (2 nodes)",
    ))
    assert spmd.total_cycles < spsd.total_cycles


def test_extension_datathread_placement(benchmark):
    """Affinity placement vs round-robin, measured in datathread length."""
    program = build_program("gcc")
    page_size = 4096

    def run():
        graph = AffinityGraph(page_size)
        interp = Interpreter(program)
        addrs = [ref.addr for ref in
                 interp.mem_refs(limit=40_000, include_ifetch=False)]
        graph.observe_stream(addrs)
        smart = plan_placement(graph, num_nodes=4)
        naive = round_robin_placement(graph, num_nodes=4)
        smart_report = analyze_stream(
            smart.build_page_table(page_size), addrs)
        naive_report = analyze_stream(
            naive.build_page_table(page_size), addrs)
        return smart, naive, smart_report, naive_report

    smart, naive, smart_report, naive_report = run_once(benchmark, run)
    print()
    print(format_table(
        ["layout", "cut weight", "mean datathread"],
        [["round-robin", naive.cut_weight,
          round(naive_report.mean_length, 2)],
         ["affinity", smart.cut_weight,
          round(smart_report.mean_length, 2)]],
        title="Extension: datathread-aware placement (gcc, 4 nodes)",
    ))
    assert smart.cut_weight <= naive.cut_weight
    assert smart_report.mean_length >= naive_report.mean_length


def test_extension_branch_prediction_survey(benchmark):
    """What the perfect-branch-prediction assumption papers over."""
    def run():
        out = {}
        for name in ("go", "compress", "tomcatv"):
            out[name] = survey_predictors(build_program(name), limit=30_000)
        return out

    surveys = run_once(benchmark, run)
    print()
    rows = []
    for name, reports in surveys.items():
        for report in reports:
            rows.append([name, report.predictor, report.branches,
                         f"{report.accuracy:.1%}"])
    print(format_table(
        ["workload", "predictor", "branches", "accuracy"],
        rows,
        title="Extension: branch-predictor survey (perfect-BP assumption)",
    ))
    for reports in surveys.values():
        learned = max(r.accuracy for r in reports)
        assert learned > 0.6


def test_extension_broadcast_medium_comparison(benchmark):
    """Section 4.4's transports compared at system level: the serializing
    bus, an SCI-style ring, and free-space optics."""
    import dataclasses

    from repro.core import DataScalarSystem

    program = build_program("wave5")
    base = datascalar_config(4, node=timing_node_config())

    def run():
        out = {}
        for kind in ("bus", "ring", "optical"):
            config = dataclasses.replace(base, interconnect=kind)
            out[kind] = DataScalarSystem(config).run(program, limit=LIMIT)
        return out

    results = run_once(benchmark, run)
    print()
    print(format_table(
        ["medium", "IPC", "broadcasts"],
        [[kind, round(r.ipc, 3), r.bus_transactions]
         for kind, r in results.items()],
        title="Extension: broadcast medium (wave5, 4 nodes)",
    ))
    assert results["optical"].ipc >= results["bus"].ipc


def test_extension_result_communication_executed(benchmark):
    """Section 5.1 executed in the timing simulator: private regions run
    only at their owner; one mailbox broadcast carries the result."""
    from repro.core.resultcomm_exec import run_with_result_communication

    program = build_program("gcc")
    config = datascalar_config(2, node=timing_node_config())

    def run():
        return run_with_result_communication(program, config, min_loads=6,
                                             limit=LIMIT)

    base, optimized, regions = run_once(benchmark, run)
    b_base = sum(n.broadcasts_sent for n in base.nodes)
    b_opt = sum(n.broadcasts_sent for n in optimized.nodes)
    print()
    print(format_table(
        ["mode", "cycles", "broadcasts"],
        [["plain ESP", base.cycles, b_base],
         [f"result comm ({len(regions)} regions)", optimized.cycles,
          b_opt]],
        title="Extension: executed result communication (gcc, 2 nodes)",
    ))
    assert b_opt < b_base
