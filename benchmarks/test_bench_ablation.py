"""Ablation benchmarks for the design choices DESIGN.md calls out.

These are not paper figures; they quantify the individual mechanisms:
write policy under ESP, static replication, distribution block size,
the commit-time-update correspondence discipline, result communication,
and bus-vs-ring broadcasting.
"""

import dataclasses

from conftest import run_once

from repro.analysis import CostModel, format_table
from repro.core import (
    DataScalarSystem,
    MassiveMemoryMachine,
    ResultCommunicationAnalyzer,
    plan_replication,
)
from repro.experiments import datascalar_config, timing_node_config
from repro.interconnect import Bus, Message, MessageKind, Ring
from repro.isa import Interpreter
from repro.memory import LayoutSpec, build_page_table
from repro.params import BusConfig
from repro.workloads import build_program

LIMIT = 10_000


def _run_ds(program, num_nodes=2, node=None, block=1, replicated=frozenset(),
            limit=LIMIT):
    config = datascalar_config(num_nodes, node=node,
                               distribution_block_pages=block)
    return DataScalarSystem(config).run(program, replicated_pages=replicated,
                                        limit=limit)


def test_ablation_write_allocate_broadcast_cost(benchmark):
    """Paper Section 4.2: write-noallocate is superior under ESP because
    a write-allocate miss forces a broadcast that the write overwrites."""
    program = build_program("compress")

    def run():
        noalloc = _run_ds(program, node=timing_node_config())
        node = timing_node_config()
        alloc_dcache = dataclasses.replace(node.dcache, write_allocate=True)
        alloc_node = dataclasses.replace(node, dcache=alloc_dcache)
        alloc = _run_ds(program, node=alloc_node)
        return noalloc, alloc

    noalloc, alloc = run_once(benchmark, run)
    na_b = sum(n.broadcasts_sent for n in noalloc.nodes)
    al_b = sum(n.broadcasts_sent for n in alloc.nodes)
    print()
    print(format_table(
        ["write policy", "broadcasts", "bus bytes", "IPC"],
        [["noallocate", na_b, noalloc.bus_payload_bytes,
          round(noalloc.ipc, 3)],
         ["allocate", al_b, alloc.bus_payload_bytes, round(alloc.ipc, 3)]],
        title="Ablation: D-cache write-miss policy under ESP",
    ))
    assert al_b > na_b


def test_ablation_static_replication(benchmark):
    """Replicating hot pages trades local memory for fewer broadcasts."""
    program = build_program("wave5")

    def run():
        results = []
        for budget in (0, 4, 16):
            plan = plan_replication(program, 4096, num_nodes=2,
                                    budget_pages=budget, limit=LIMIT)
            results.append((budget, _run_ds(
                program, replicated=plan.replicated_pages)))
        return results

    results = run_once(benchmark, run)
    print()
    print(format_table(
        ["replicated pages", "broadcasts", "IPC"],
        [[budget, sum(n.broadcasts_sent for n in r.nodes), round(r.ipc, 3)]
         for budget, r in results],
        title="Ablation: static replication budget (wave5, 2 nodes)",
    ))
    broadcasts = [sum(n.broadcasts_sent for n in r.nodes)
                  for _, r in results]
    assert broadcasts[-1] < broadcasts[0]


def test_ablation_distribution_block_size(benchmark):
    """Larger distribution blocks lengthen datathreads (Table 2's knob)."""
    program = build_program("applu")

    def run():
        return [(block, _run_ds(program, block=block))
                for block in (1, 2, 4)]

    results = run_once(benchmark, run)
    print()
    print(format_table(
        ["block pages", "IPC", "found in BSHR"],
        [[block, round(r.ipc, 3), f"{r.found_in_bshr_fraction:.1%}"]
         for block, r in results],
        title="Ablation: distribution block size (applu, 2 nodes)",
    ))
    assert all(r.ipc > 0 for _, r in results)


def test_ablation_correspondence_absorbs_divergence(benchmark):
    """The commit-update discipline absorbs issue-order divergence: count
    the false hits/misses it reconciled without deadlock."""
    program = build_program("turb3d")

    def run():
        return _run_ds(program, limit=LIMIT)

    result = run_once(benchmark, run)
    false_hits = sum(n.false_hits for n in result.nodes)
    false_misses = sum(n.false_misses for n in result.nodes)
    print()
    print(format_table(
        ["metric", "count"],
        [["false hits repaired", false_hits],
         ["false misses folded", false_misses],
         ["late broadcasts", sum(n.late_broadcasts for n in result.nodes)],
         ["BSHR squashes", sum(n.bshr_squashes for n in result.nodes)]],
        title="Ablation: correspondence protocol work (turb3d, 2 nodes)",
    ))
    assert false_hits + false_misses > 0  # divergence actually occurred


def test_ablation_result_communication(benchmark):
    """Section 5.1 extension: broadcasts replaced by result messages."""
    program = build_program("gcc")
    spec = LayoutSpec(num_nodes=2, page_size=4096)
    table, _ = build_page_table(program, spec)

    def run():
        analyzer = ResultCommunicationAnalyzer(table, min_loads=4)
        return analyzer.analyze(Interpreter(program).trace(limit=LIMIT))

    report = run_once(benchmark, run)
    print()
    print(format_table(
        ["metric", "value"],
        [["private regions", len(report.regions)],
         ["communicated loads", report.total_communicated_loads],
         ["broadcasts saved", report.saved_broadcasts],
         ["reduction", f"{report.broadcast_reduction:.1%}"]],
        title="Ablation: result-communication opportunity (gcc, 2 nodes)",
    ))
    assert report.total_communicated_loads > 0


def test_ablation_bus_vs_ring_broadcast(benchmark):
    """Section 4.4: rings pipeline independent broadcasts; buses
    serialize them."""
    config = BusConfig()

    def run():
        bus = Bus(config)
        ring = Ring(config, num_nodes=4)
        bus_done = 0
        ring_done = 0
        for index in range(64):
            message = Message(MessageKind.BROADCAST, src=index % 4,
                              line_addr=index * 32, payload_bytes=32)
            _, done = bus.transfer(0, message)
            bus_done = max(bus_done, done)
            arrivals = ring.broadcast(0, message)
            ring_done = max(ring_done, max(arrivals))
        return bus_done, ring_done

    bus_done, ring_done = run_once(benchmark, run)
    print()
    print(format_table(
        ["interconnect", "64 broadcasts complete at cycle"],
        [["bus", bus_done], ["ring", ring_done]],
        title="Ablation: broadcast interconnect",
    ))
    assert ring_done < bus_done * 4  # the ring pipelines across links


def test_ablation_cost_effectiveness(benchmark):
    """Wood-Hill check on measured Figure 7 speedups."""
    program = build_program("compress")

    def run():
        from repro.baseline import TraditionalSystem
        from repro.experiments import traditional_config
        ds = _run_ds(program, num_nodes=2)
        trad = TraditionalSystem(traditional_config(2)).run(program,
                                                            limit=LIMIT)
        return ds, trad

    ds, trad = run_once(benchmark, run)
    speedup = ds.ipc / trad.ipc
    model = CostModel(processor_cost=1.0, memory_cost=8.0,
                      overhead_cost=0.25)
    costup = model.costup(2)
    print()
    print(format_table(
        ["metric", "value"],
        [["speedup (DS2 / trad 1/2)", round(speedup, 3)],
         ["costup (memory-dominated)", round(costup, 3)],
         ["cost-effective", model.is_cost_effective(2, speedup)]],
        title="Ablation: Wood-Hill cost-effectiveness (compress)",
    ))
    assert costup < 2.0  # adding a processor far from doubles system cost


def test_ablation_iram_vs_l2_organization(benchmark):
    """Paper Section 4.3 dismisses comparing against a traditional chip
    whose on-chip memory is an L2 cache ('an unfair comparison'); this
    ablation measures that alternative."""
    from repro.baseline import L2System, TraditionalSystem
    from repro.experiments import timing_node_config, traditional_config
    from repro.params import CacheConfig

    node = timing_node_config()
    config = traditional_config(2, node=node)
    l2_config = CacheConfig(size_bytes=32 * 1024, assoc=4, line_size=32,
                            write_policy="writeback", write_allocate=True)
    program = build_program("vortex")

    def run():
        ds = _run_ds(program, num_nodes=2, node=node, limit=LIMIT)
        plain = TraditionalSystem(config).run(program, limit=LIMIT)
        l2 = L2System(config, l2_config=l2_config).run(program, limit=LIMIT)
        return ds, plain, l2

    ds, plain, l2 = run_once(benchmark, run)
    print()
    print(format_table(
        ["organization", "IPC", "bus transactions"],
        [["DataScalar (2 IRAMs)", round(ds.ipc, 3), ds.bus_transactions],
         ["traditional (1/2 on-chip main memory)", round(plain.ipc, 3),
          plain.bus_transactions],
         ["traditional (on-chip memory as L2)", round(l2.ipc, 3),
          l2.bus_transactions]],
        title="Ablation: what to do with on-chip capacity (vortex)",
    ))
    assert ds.ipc > 0 and plain.ipc > 0 and l2.ipc > 0


def test_ablation_l2_dynamic_replication(benchmark):
    """Footnote 4: dynamic replication at a unified L2 instead of the L1
    — a bigger replication pool trades an extra on-chip level per miss
    for fewer broadcasts on re-referenced data."""
    import dataclasses

    from repro.params import CacheConfig

    node = timing_node_config(dcache_bytes=2048)
    base = datascalar_config(2, node=node)
    l2_config = dataclasses.replace(
        base, l2=CacheConfig(size_bytes=32 * 1024, assoc=4, line_size=32,
                             write_policy="writeback", write_allocate=True))
    program = build_program("li")  # small hot heap: heavy reuse

    def run():
        l1_only = DataScalarSystem(base).run(program, limit=30_000)
        with_l2 = DataScalarSystem(l2_config).run(program, limit=30_000)
        return l1_only, with_l2

    l1_only, with_l2 = run_once(benchmark, run)
    print()
    print(format_table(
        ["replication level", "broadcasts", "IPC"],
        [["L1 only (paper)",
          sum(n.broadcasts_sent for n in l1_only.nodes),
          round(l1_only.ipc, 3)],
         ["unified L2 (footnote 4)",
          sum(n.broadcasts_sent for n in with_l2.nodes),
          round(with_l2.ipc, 3)]],
        title="Ablation: dynamic-replication level (li, 2 nodes)",
    ))
    assert (sum(n.broadcasts_sent for n in with_l2.nodes)
            <= sum(n.broadcasts_sent for n in l1_only.nodes))
