"""Exception hierarchy for the DataScalar reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without catching programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class AssemblyError(ReproError):
    """A program could not be assembled (bad opcode, undefined label, ...)."""


class ExecutionError(ReproError):
    """The functional interpreter hit an illegal state (bad PC, bad access)."""


class MemoryError_(ReproError):
    """A memory-system component was misused (bad address, bad config)."""


class ConfigError(ReproError):
    """A configuration dataclass holds inconsistent or impossible values."""


class ProtocolError(ReproError):
    """The DataScalar protocol reached a state the paper forbids.

    Examples: a BSHR deadlock (a node waits for a broadcast no owner will
    send), a correspondence violation (caches diverged at commit), or a
    store broadcast (ESP never broadcasts stores).
    """


class SimulationError(ReproError):
    """A timing simulation failed to make forward progress."""
