"""Exception hierarchy for the DataScalar reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without catching programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class AssemblyError(ReproError):
    """A program could not be assembled (bad opcode, undefined label, ...)."""


class ExecutionError(ReproError):
    """The functional interpreter hit an illegal state (bad PC, bad access)."""


class MemoryError_(ReproError):
    """A memory-system component was misused (bad address, bad config)."""


class ConfigError(ReproError):
    """A configuration dataclass holds inconsistent or impossible values."""


class ProtocolError(ReproError):
    """The DataScalar protocol reached a state the paper forbids.

    Examples: a BSHR deadlock (a node waits for a broadcast no owner will
    send), a correspondence violation (caches diverged at commit), or a
    store broadcast (ESP never broadcasts stores).
    """


class SimulationError(ReproError):
    """A timing simulation failed to make forward progress."""


class RunnerError(ReproError):
    """The sweep engine could not execute a sweep as requested.

    Raised for invalid runner parameters, for sweeps where one or more
    points failed after their retry budget (the first failing point's
    original exception is chained as ``__cause__``), and as the base of
    the timeout error below.
    """


class PointTimeoutError(RunnerError):
    """A sweep stalled: no point made progress within the runner's
    ``timeout`` window, so outstanding work was cancelled."""


class PointQuarantinedError(RunnerError):
    """A sweep point repeatedly killed its worker process.

    Worker loss (an ``os._exit``, an OOM kill, a segfault in an
    extension) is recovered by rebuilding the pool and resubmitting the
    points that were in flight; a point that keeps taking workers down
    with it exhausts its ``worker_death_budget`` and is quarantined —
    the rest of the sweep drains normally and the quarantined point
    surfaces as this typed error (chained under :class:`RunnerError`
    like any other point failure)."""


class SweepInterruptedError(RunnerError):
    """A sweep was cancelled cooperatively (SIGINT/SIGTERM).

    Raised from :meth:`repro.runner.SweepRunner.run` after completed
    points have been journaled and cached, so a later run over the same
    journal and cache (``--resume``) re-executes only the remainder."""


class JournalError(RunnerError):
    """A sweep journal could not be opened, parsed, or replayed
    (unknown schema, not a journal file, unwritable path)."""


class FaultError(SimulationError):
    """An injected transport fault could not be recovered.

    The fault-injection layer (:mod:`repro.faults`) guarantees that a run
    either completes with the same architectural results as a fault-free
    run or dies with a subclass of this error — never a silently wrong
    result.
    """


class RecoveryExhaustedError(FaultError):
    """The ESP recovery slow path gave up: a receiver's retransmit
    requests failed ``max_retries`` consecutive times."""


class CorruptionError(FaultError):
    """A broadcast payload failed ECC and no NACK/retransmit path is
    available (``FaultConfig.nack_enabled=False``)."""


class BroadcastLostError(FaultError):
    """A BSHR wait outlived the entire recovery budget.

    With fault injection armed, every lost or corrupted broadcast is
    detected and retransmitted within a bounded window; a wait older than
    ``FaultConfig.wait_deadline`` cycles means the transport silently
    violated its delivery contract (or the protocol leaked), and the run
    aborts with this typed error instead of spinning to the generic
    pipeline deadlock detector.
    """
