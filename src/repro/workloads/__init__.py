"""SPEC95-like synthetic workloads (see DESIGN.md for the substitution
rationale: each kernel reproduces the memory-behaviour fingerprint of its
SPEC95 namesake, re-expressed in the simulated ISA)."""

from dataclasses import dataclass

from ..errors import ReproError
from . import (
    applu,
    common,
    compress,
    fpppp,
    gcc,
    go,
    hydro2d,
    li,
    m88ksim,
    mgrid,
    perl,
    swim,
    tomcatv,
    turb3d,
    vortex,
    wave5,
)


@dataclass(frozen=True)
class Workload:
    """One registered benchmark kernel."""

    name: str
    category: str  # "fp" or "int"
    description: str
    module: object

    def build(self, scale: int = 1):
        """Build the program at the given scale factor.

        Builds are memoized per ``(name, scale)`` — kernels are pure
        functions of their scale and programs are immutable after
        assembly, so repeated sweeps share one build per process (see
        :func:`repro.workloads.common.shared_program`).
        """
        if scale < 1:
            raise ReproError(f"scale must be >= 1, got {scale}")
        return common.shared_program(self.name, scale,
                                     lambda: self.module.build(scale))


_REGISTRY = [
    Workload("tomcatv", "fp", "2D mesh relaxation, 5-point sweeps", tomcatv),
    Workload("swim", "fp", "shallow water, interleaved grid arrays", swim),
    Workload("hydro2d", "fp", "2D hydrodynamics, row+column sweeps", hydro2d),
    Workload("mgrid", "fp", "3D multigrid stencil + restriction", mgrid),
    Workload("applu", "fp", "SSOR wavefront substitution", applu),
    Workload("m88ksim", "int", "CPU simulator fetch/decode/dispatch", m88ksim),
    Workload("turb3d", "fp", "FFT butterflies, power-of-two strides", turb3d),
    Workload("gcc", "int", "IR tree walking + symbol table scan", gcc),
    Workload("compress", "int", "LZW hash table, store-heavy", compress),
    Workload("li", "int", "cons-cell churn over a tiny heap", li),
    Workload("perl", "int", "string hashing, chained buckets", perl),
    Workload("fpppp", "fp", "huge FP basic blocks, tiny data", fpppp),
    Workload("wave5", "fp", "particle-in-cell gather/scatter", wave5),
    Workload("vortex", "int", "OO database transactions", vortex),
    Workload("go", "int", "game-tree evaluation, tiny board", go),
]

#: name -> Workload for every registered kernel.
WORKLOADS = {workload.name: workload for workload in _REGISTRY}

#: The fourteen benchmarks of Table 1/Table 2, in the paper's order.
TABLE_BENCHMARKS = [
    "tomcatv", "swim", "hydro2d", "mgrid", "applu", "m88ksim", "turb3d",
    "gcc", "compress", "li", "perl", "fpppp", "wave5", "vortex",
]

#: The six benchmarks of the timing experiments (Figures 7/8, Table 3).
TIMING_BENCHMARKS = ["applu", "compress", "go", "mgrid", "turb3d", "wave5"]


def get_workload(name: str) -> Workload:
    """Look up a workload by name."""
    if name not in WORKLOADS:
        known = ", ".join(sorted(WORKLOADS))
        raise ReproError(f"unknown workload {name!r}; known: {known}")
    return WORKLOADS[name]


def build_program(name: str, scale: int = 1):
    """Build the named workload's program."""
    return get_workload(name).build(scale)


__all__ = [
    "Workload",
    "WORKLOADS",
    "TABLE_BENCHMARKS",
    "TIMING_BENCHMARKS",
    "get_workload",
    "build_program",
]
