"""compress-like kernel: LZW hash-table compression.

SPEC95 *compress* spends its time probing and filling a large hash table.
The fingerprint the paper leans on: "compress issues almost as many
stores as loads, which never have to go off-chip in a DataScalar system"
— Figure 7's biggest win.  Each symbol hashes into a 64KB table; probes
that miss insert (two stores), probes that match update a count (one
store).
"""

from __future__ import annotations

from ..isa.builder import ProgramBuilder
from .common import LCG_INC, LCG_MULT, checksum_slot, lcg_step, \
    store_checksum

#: Hash-table entries (words); 64KB table + 64KB code table.
TABLE_ENTRIES = 16384


def build(scale: int = 1):
    """Compress 2000*scale pseudo-random symbols."""
    symbols = 2000 * scale
    mask = TABLE_ENTRIES - 1
    b = ProgramBuilder("compress")
    table = b.alloc_global("htab", TABLE_ENTRIES * 4)
    codes = b.alloc_global("codetab", TABLE_ENTRIES * 4)
    csum = checksum_slot(b)

    b.li("r10", 12345)      # LCG state = input stream
    b.li("r11", 0)          # next free code
    b.li("r12", 0)          # checksum
    b.li("r15", mask)
    with b.repeat(symbols, "r20"):
        lcg_step(b, "r10", "r21")
        # fcode = symbol; hash = (fcode >> 4) & mask.
        b.srli("r13", "r10", 4)
        b.and_("r13", "r13", "r15")
        b.slli("r14", "r13", 2)
        b.addi("r16", "r14", table)
        b.lw("r17", "r16", 0)        # probe
        with b.if_cond("eq", "r17", "r10"):
            # Hit: bump the code's use count.
            b.addi("r18", "r14", 0)
            b.addi("r18", "r18", codes)
            b.lw("r19", "r18", 0)
            b.addi("r19", "r19", 1)
            b.sw("r19", "r18", 0)
        with b.if_cond("ne", "r17", "r10"):
            # Miss: check the displaced code, then insert symbol and its
            # new code (one load, two stores -> stores ~ loads overall).
            b.addi("r18", "r14", 0)
            b.addi("r18", "r18", codes)
            b.lw("r19", "r18", 0)
            b.add("r12", "r12", "r19")
            b.sw("r10", "r16", 0)
            b.addi("r11", "r11", 1)
            b.sw("r11", "r18", 0)
        b.add("r12", "r12", "r13")

    store_checksum(b, csum, "r12")
    b.halt()
    return b.build()


# Re-export the LCG constants for tests that model the input stream.
__all__ = ["build", "TABLE_ENTRIES", "LCG_MULT", "LCG_INC"]
