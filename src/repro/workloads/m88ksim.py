"""m88ksim-like kernel: an instruction-set simulator simulating itself.

SPEC95 *m88ksim* simulates a Motorola 88100: fetch a simulated
instruction word, decode its fields, dispatch on the opcode, and update a
simulated register file and memory.  The fingerprint: a large read-mostly
instruction-memory array, a small hot register-file array, a simulated
data memory hit by load/store cases, and heavy data-dependent branching.
"""

from __future__ import annotations

from ..isa.builder import ProgramBuilder
from .common import checksum_slot, init_word_array, store_checksum

#: Simulated instruction memory (words).
SIM_TEXT_WORDS = 8192
#: Simulated data memory (words).
SIM_DATA_WORDS = 4096
#: Simulated register file (words).
SIM_REGS = 32


def build(scale: int = 1):
    """Simulate 2500*scale target instructions."""
    steps = 2500 * scale
    b = ProgramBuilder("m88ksim")
    sim_text = b.alloc_global("simtext", SIM_TEXT_WORDS * 4)
    sim_data = b.alloc_global("simdata", SIM_DATA_WORDS * 4)
    sim_regs = b.alloc_global("simregs", SIM_REGS * 4)
    csum = checksum_slot(b)
    # Encoded target instruction: [op:3][rd:5][rs:5][imm:16] packed low.
    init_word_array(
        b, sim_text, SIM_TEXT_WORDS,
        lambda i: (((i * 2654435761) >> 3) & 0x7)
        | ((((i * 40503) >> 2) & 0x1F) << 3)
        | ((((i * 69069) >> 5) & 0x1F) << 8)
        | (((i * 12345) & 0xFFF) << 13),
    )
    init_word_array(b, sim_data, SIM_DATA_WORDS, lambda i: i & 0xFFFF)
    init_word_array(b, sim_regs, SIM_REGS, lambda i: i)

    b.li("r10", 0)   # simulated pc (word index)
    b.li("r12", 0)   # checksum
    b.li("r9", SIM_TEXT_WORDS - 1)
    with b.repeat(steps, "r20"):
        # Fetch.
        b.slli("r13", "r10", 2)
        b.addi("r13", "r13", sim_text)
        b.lw("r14", "r13", 0)
        # Decode.
        b.andi("r15", "r14", 0x7)         # op
        b.srli("r16", "r14", 3)
        b.andi("r16", "r16", 0x1F)        # rd
        b.srli("r17", "r14", 8)
        b.andi("r17", "r17", 0x1F)        # rs
        b.srli("r18", "r14", 13)          # imm
        # Register-file reads.
        b.slli("r21", "r16", 2)
        b.addi("r21", "r21", sim_regs)    # &regs[rd]
        b.slli("r22", "r17", 2)
        b.addi("r22", "r22", sim_regs)    # &regs[rs]
        b.lw("r23", "r22", 0)             # regs[rs]
        # Dispatch.
        with b.if_cond("eq", "r15", "r0"):        # 0: add-immediate
            b.add("r24", "r23", "r18")
            b.sw("r24", "r21", 0)
        b.li("r25", 1)
        with b.if_cond("eq", "r15", "r25"):       # 1: xor
            b.lw("r24", "r21", 0)
            b.xor("r24", "r24", "r23")
            b.sw("r24", "r21", 0)
        b.li("r25", 2)
        with b.if_cond("eq", "r15", "r25"):       # 2: load
            b.li("r24", SIM_DATA_WORDS - 1)
            b.and_("r24", "r18", "r24")
            b.slli("r24", "r24", 2)
            b.addi("r24", "r24", sim_data)
            b.lw("r24", "r24", 0)
            b.sw("r24", "r21", 0)
        b.li("r25", 3)
        with b.if_cond("eq", "r15", "r25"):       # 3: store
            b.li("r24", SIM_DATA_WORDS - 1)
            b.and_("r24", "r18", "r24")
            b.slli("r24", "r24", 2)
            b.addi("r24", "r24", sim_data)
            b.sw("r23", "r24", 0)
        b.li("r25", 4)
        with b.if_cond("eq", "r15", "r25"):       # 4: branch if rs != 0
            with b.if_cond("ne", "r23", "r0"):
                b.andi("r10", "r18", 0xFFF)
        # Default/arith cases fold into the checksum.
        b.add("r12", "r12", "r15")
        # Advance and wrap the simulated pc.
        b.addi("r10", "r10", 1)
        with b.if_cond("gt", "r10", "r9"):
            b.li("r10", 0)

    store_checksum(b, csum, "r12")
    b.halt()
    return b.build()
