"""wave5-like kernel: particle-in-cell plasma simulation.

SPEC95 *wave5* pushes particles through electromagnetic fields on a
grid.  The fingerprint: per-particle gather/scatter — a particle's
position computes a *data-dependent* grid index, the field there is
gathered, and charge is scattered back with a read-modify-write.  The
indirect indices spray across field pages owned by different nodes.
"""

from __future__ import annotations

from ..isa.builder import ProgramBuilder
from .common import checksum_slot, init_double_array, init_word_array, \
    store_checksum_fp


def build(scale: int = 1):
    """One particle push over 1500*scale particles and a 4096-entry
    field."""
    particles = 1500 * scale
    field_cells = 4096
    b = ProgramBuilder("wave5")
    px = b.alloc_global("px", particles * 8)     # positions (double)
    pv = b.alloc_global("pv", particles * 8)     # velocities (double)
    pidx = b.alloc_global("pidx", particles * 4)  # precomputed cell index
    field = b.alloc_global("field", field_cells * 8)
    charge = b.alloc_global("charge", field_cells * 8)
    consts = b.alloc_global("consts", 16)
    csum = checksum_slot(b)
    init_double_array(b, px, particles, lambda i: float((i * 37) % 4096))
    init_double_array(b, pv, particles, lambda i: 0.5 + (i % 13) * 0.0625)
    init_word_array(b, pidx, particles,
                    lambda i: ((i * 2654435761) >> 7) % (field_cells - 1))
    init_double_array(b, field, field_cells, lambda i: 0.25 + (i % 31) * 0.03125)
    init_double_array(b, charge, field_cells, lambda i: 0.0)
    b.init_double(consts, 0.1)

    b.li("r1", consts)
    b.ld("f25", "r1", 0)  # dt

    b.li("r10", px)
    b.li("r11", pv)
    b.li("r12", pidx)
    with b.repeat(particles, "r20"):
        b.lw("r13", "r12", 0)        # cell index (data dependent)
        b.slli("r14", "r13", 3)
        b.addi("r15", "r14", field)
        b.ld("f1", "r15", 0)         # gather E-field at the cell
        b.ld("f2", "r15", 8)         # and its neighbor
        b.fadd("f1", "f1", "f2")
        b.ld("f3", "r11", 0)         # v
        b.fmul("f4", "f1", "f25")
        b.fadd("f3", "f3", "f4")     # v += E * dt
        b.sd("f3", "r11", 0)
        b.ld("f5", "r10", 0)         # x
        b.fmul("f6", "f3", "f25")
        b.fadd("f5", "f5", "f6")     # x += v * dt
        b.sd("f5", "r10", 0)
        # Scatter charge: read-modify-write at the indirect cell.
        b.addi("r16", "r14", charge)
        b.ld("f7", "r16", 0)
        b.fadd("f7", "f7", "f25")
        b.sd("f7", "r16", 0)
        b.addi("r10", "r10", 8)
        b.addi("r11", "r11", 8)
        b.addi("r12", "r12", 4)

    b.li("r1", charge)
    b.cvtif("f0", "r0")
    with b.repeat(256, "r3"):
        b.ld("f1", "r1", 0)
        b.fadd("f0", "f0", "f1")
        b.addi("r1", "r1", 8)
    store_checksum_fp(b, csum, "f0")
    b.halt()
    return b.build()
