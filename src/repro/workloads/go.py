"""go-like kernel: game-tree position evaluation.

SPEC95 *go* (The Many Faces of Go) evaluates board positions with deeply
branchy integer code over a small board.  The fingerprint: a compact
working set (a 19x19 board plus small side arrays — DataScalar's gains
are modest when little data is communicated), branch-dense neighbor
scans, and ray-casting loops with data-dependent exits.
"""

from __future__ import annotations

from ..isa.builder import ProgramBuilder
from .common import checksum_slot, lcg_step, store_checksum

#: Board edge; positions are stored in a SIZE*SIZE word array.
SIZE = 19


def build(scale: int = 1):
    """Evaluate 250*scale candidate moves on a pseudo-random board."""
    moves = 250 * scale
    cells = SIZE * SIZE
    b = ProgramBuilder("go")
    board = b.alloc_global("board", cells * 4)
    influence = b.alloc_global("influence", cells * 4)
    history = b.alloc_global("history", 2048 * 4)
    # Pattern library: joseki/shape tables consulted per candidate move
    # (real go's data segment is dominated by pattern databases).
    patterns = b.alloc_global("patterns", 4096 * 4)
    csum = checksum_slot(b)
    for i in range(cells):
        b.init_word(board + 4 * i, (i * 2654435761 >> 8) % 3)  # 0/1/2
    for i in range(4096):
        b.init_word(patterns + 4 * i, (i * 40503) & 0xFF)

    b.li("r10", 31415)   # LCG move selector
    b.li("r12", 0)       # score accumulator
    b.li("r11", history)  # history cursor
    b.li("r9", history + 2048 * 4 - 4)
    with b.repeat(moves, "r20"):
        lcg_step(b, "r10", "r21")
        # Pick a cell away from the edge: 1 + x % (SIZE-2).
        b.li("r13", SIZE - 2)
        b.rem("r14", "r10", "r13")
        with b.if_cond("lt", "r14", "r0"):
            b.add("r14", "r14", "r13")
        b.addi("r14", "r14", 1)          # row
        b.srli("r15", "r10", 8)
        b.rem("r16", "r15", "r13")
        with b.if_cond("lt", "r16", "r0"):
            b.add("r16", "r16", "r13")
        b.addi("r16", "r16", 1)          # col
        b.li("r17", SIZE)
        b.mul("r18", "r14", "r17")
        b.add("r18", "r18", "r16")
        b.slli("r18", "r18", 2)
        b.addi("r19", "r18", board)      # &board[cell]
        # Count friendly neighbors (branch-dense).
        b.li("r22", 0)
        for offset in (-4, 4, -SIZE * 4, SIZE * 4):
            b.lw("r23", "r19", offset)
            b.li("r24", 1)
            with b.if_cond("eq", "r23", "r24"):
                b.addi("r22", "r22", 1)
        # Cast a ray east until a stone or the edge (data-dependent exit).
        b.mov("r25", "r16")
        b.mov("r21", "r19")
        ray = b.fresh_label("ray")
        ray_end = b.fresh_label("rayend")
        b.label(ray)
        b.li("r24", SIZE - 1)
        b.bge("r25", "r24", ray_end)
        b.addi("r21", "r21", 4)
        b.lw("r23", "r21", 0)
        b.bne("r23", "r0", ray_end)
        b.addi("r25", "r25", 1)
        b.addi("r22", "r22", 1)          # open-space bonus
        b.j(ray)
        b.label(ray_end)
        # Consult the pattern library at a shape-dependent index.
        b.mul("r23", "r18", "r22")
        b.li("r24", 4095)
        b.and_("r23", "r23", "r24")
        b.slli("r23", "r23", 2)
        b.addi("r23", "r23", patterns)
        b.lw("r24", "r23", 0)
        b.add("r22", "r22", "r24")
        # Update influence and (occasionally) play the move.
        b.addi("r23", "r18", 0)
        b.addi("r23", "r23", influence)
        b.lw("r24", "r23", 0)
        b.add("r24", "r24", "r22")
        b.sw("r24", "r23", 0)
        b.li("r24", 3)
        with b.if_cond("gt", "r22", "r24"):
            b.li("r25", 1)
            b.sw("r25", "r19", 0)        # place a stone
            b.sw("r18", "r11", 0)        # record in history
            b.addi("r11", "r11", 4)
            with b.if_cond("gt", "r11", "r9"):
                b.li("r11", history)
        b.add("r12", "r12", "r22")

    store_checksum(b, csum, "r12")
    b.halt()
    return b.build()
