"""Command-line access to the workload kernels.

Usage::

    python -m repro.workloads list
    python -m repro.workloads run compress [--scale 2] [--limit 100000]
    python -m repro.workloads disasm go
"""

from __future__ import annotations

import argparse
import sys

from ..isa import Interpreter, disassemble
from . import WORKLOADS, get_workload


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads",
        description="List, run, or disassemble the SPEC95-like kernels.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list every registered kernel")
    run = sub.add_parser("run", help="execute a kernel functionally")
    run.add_argument("name")
    run.add_argument("--scale", type=int, default=1)
    run.add_argument("--limit", type=int, default=None)
    dis = sub.add_parser("disasm", help="print a kernel's assembly")
    dis.add_argument("name")
    dis.add_argument("--scale", type=int, default=1)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(name) for name in WORKLOADS)
        for name, workload in WORKLOADS.items():
            print(f"{name.ljust(width)}  [{workload.category}]  "
                  f"{workload.description}")
        return 0
    workload = get_workload(args.name)
    program = workload.build(args.scale)
    if args.command == "disasm":
        print(disassemble(program), end="")
        return 0
    interp = Interpreter(program)
    result = interp.run(limit=args.limit)
    print(f"{args.name} (scale {args.scale}): "
          f"{result.instructions:,} instructions, "
          f"{result.loads:,} loads, {result.stores:,} stores, "
          f"halted={result.halted}")
    print(f"text {program.text_bytes:,}B, "
          f"global {program.global_bytes:,}B, "
          f"heap {program.heap_bytes:,}B")
    return 0


if __name__ == "__main__":
    sys.exit(main())
