"""perl-like kernel: string hashing into chained hash tables.

SPEC95 *perl* interprets scripts dominated by associative-array
operations: byte-at-a-time string hashing, bucket lookup, and chain
walking.  The fingerprint: byte loads (LB) over a text buffer, a bucket
array, pointer-chased chains in the heap, and bump-allocated inserts.
"""

from __future__ import annotations

from ..isa.builder import ProgramBuilder
from .common import checksum_slot, store_checksum

#: Hash buckets (words holding chain-head pointers).
BUCKETS = 2048
#: Chain nodes: key, value, next (3 words + pad).
NODE_BYTES = 16
#: Bytes of "script text" hashed per token.
TOKEN_BYTES = 8


def build(scale: int = 1):
    """Tokenize and intern 1200*scale tokens from a 16KB text buffer."""
    tokens = 1200 * scale
    text_bytes = 16384
    b = ProgramBuilder("perl")
    text = b.alloc_global("text", text_bytes)
    buckets = b.alloc_global("buckets", BUCKETS * 4)
    arena = b.alloc_heap("arena", (tokens + 1) * NODE_BYTES)
    csum = checksum_slot(b)
    for i in range(text_bytes):
        b.init_byte(text + i, (i * 131 + 7) & 0xFF)

    b.li("r10", text)     # read cursor
    b.li("r11", arena)    # bump allocator
    b.li("r12", 0)        # checksum
    b.li("r9", text + text_bytes - TOKEN_BYTES)
    with b.repeat(tokens, "r20"):
        # Hash TOKEN_BYTES bytes: h = h*31 + byte.
        b.li("r13", 0)
        b.li("r22", 31)
        with b.repeat(TOKEN_BYTES, "r21"):
            b.lb("r14", "r10", 0)
            b.mul("r13", "r13", "r22")
            b.add("r13", "r13", "r14")
            b.addi("r10", "r10", 1)
        with b.if_cond("gt", "r10", "r9"):
            b.li("r10", text)  # wrap the cursor
        b.li("r15", BUCKETS - 1)
        b.and_("r16", "r13", "r15")
        b.slli("r16", "r16", 2)
        b.addi("r16", "r16", buckets)
        # Walk the chain looking for the key.
        b.lw("r17", "r16", 0)
        b.li("r18", 0)  # found flag
        chain = b.fresh_label("chain")
        chain_end = b.fresh_label("chainend")
        b.label(chain)
        b.beq("r17", "r0", chain_end)
        b.lw("r19", "r17", 0)  # key
        with b.if_cond("eq", "r19", "r13"):
            b.lw("r23", "r17", 4)
            b.addi("r23", "r23", 1)
            b.sw("r23", "r17", 4)  # bump value
            b.li("r18", 1)
            b.j(chain_end)
        b.lw("r17", "r17", 8)  # next
        b.j(chain)
        b.label(chain_end)
        with b.if_cond("eq", "r18", "r0"):
            # Intern: allocate a node, link at bucket head.
            b.sw("r13", "r11", 0)
            b.li("r23", 1)
            b.sw("r23", "r11", 4)
            b.lw("r24", "r16", 0)
            b.sw("r24", "r11", 8)
            b.sw("r11", "r16", 0)
            b.addi("r11", "r11", NODE_BYTES)
        b.add("r12", "r12", "r13")

    store_checksum(b, csum, "r12")
    b.halt()
    return b.build()
