"""mgrid-like kernel: 3D multigrid V-cycle pieces.

SPEC95 *mgrid* applies multigrid smoothing over 3D grids.  The
fingerprint: a 7-point 3D stencil (unit, plane, and slab strides in the
same loop body), plus a stride-2 restriction to a coarser grid — large
power-of-two strides that touch pages owned by different nodes in quick
succession, giving the short data datathreads Table 2 reports.
"""

from __future__ import annotations

from ..isa.builder import ProgramBuilder
from .common import checksum_slot, init_double_array, store_checksum_fp


def build(scale: int = 1):
    """One smoothing sweep plus one restriction (n = 16 * scale)."""
    n = 16 * scale
    plane = n * n * 8
    row = n * 8
    half = n // 2
    b = ProgramBuilder("mgrid")
    fine = b.alloc_global("fine", n * n * n * 8)
    resid = b.alloc_global("resid", n * n * n * 8)
    coarse = b.alloc_global("coarse", half * half * half * 8)
    consts = b.alloc_global("consts", 16)
    csum = checksum_slot(b)
    init_double_array(b, fine, n * n * n, lambda i: 1.0 + (i % 23) * 0.0625)
    b.init_double(consts, 1.0 / 6.0)

    b.li("r1", consts)
    b.ld("f25", "r1", 0)

    # 7-point smoothing: resid = avg(neighbors) - center.
    b.li("r10", 1)          # k (slab)
    b.li("r9", n - 1)
    with b.while_cond("lt", "r10", "r9"):
        b.li("r20", plane)
        b.mul("r21", "r10", "r20")  # slab offset
        b.li("r11", 1)      # j (row)
        with b.while_cond("lt", "r11", "r9"):
            b.li("r22", row)
            b.mul("r12", "r11", "r22")
            b.add("r12", "r12", "r21")
            b.addi("r13", "r12", resid + 8)
            b.addi("r12", "r12", fine + 8)
            with b.repeat(n - 2, "r14"):
                b.ld("f1", "r12", -8)
                b.ld("f2", "r12", 8)
                b.ld("f3", "r12", -row)
                b.ld("f4", "r12", row)
                b.ld("f5", "r12", -plane)
                b.ld("f6", "r12", plane)
                b.ld("f7", "r12", 0)
                b.fadd("f8", "f1", "f2")
                b.fadd("f9", "f3", "f4")
                b.fadd("f10", "f5", "f6")
                b.fadd("f8", "f8", "f9")
                b.fadd("f8", "f8", "f10")
                b.fmul("f8", "f8", "f25")
                b.fsub("f8", "f8", "f7")
                b.sd("f8", "r13", 0)
                b.addi("r12", "r12", 8)
                b.addi("r13", "r13", 8)
            b.addi("r11", "r11", 1)
        b.addi("r10", "r10", 1)

    # Restriction: coarse[k,j,i] = resid at stride-2 sample points.
    b.li("r10", 0)
    b.li("r9", half)
    with b.while_cond("lt", "r10", "r9"):
        b.li("r11", 0)
        with b.while_cond("lt", "r11", "r9"):
            # fine index (2k, 2j, 0); coarse index (k, j, 0).
            b.li("r20", 2 * plane)
            b.mul("r21", "r10", "r20")
            b.li("r22", 2 * row)
            b.mul("r23", "r11", "r22")
            b.add("r21", "r21", "r23")
            b.addi("r12", "r21", resid)
            b.li("r20", half * half * 8)
            b.mul("r21", "r10", "r20")
            b.li("r22", half * 8)
            b.mul("r23", "r11", "r22")
            b.add("r21", "r21", "r23")
            b.addi("r13", "r21", coarse)
            with b.repeat(half, "r14"):
                b.ld("f1", "r12", 0)
                b.ld("f2", "r12", 8)
                b.fadd("f1", "f1", "f2")
                b.sd("f1", "r13", 0)
                b.addi("r12", "r12", 16)  # stride-2 in the fine grid
                b.addi("r13", "r13", 8)
            b.addi("r11", "r11", 1)
        b.addi("r10", "r10", 1)

    b.li("r1", coarse)
    b.cvtif("f0", "r0")
    with b.repeat(half * half, "r3"):
        b.ld("f1", "r1", 0)
        b.fadd("f0", "f0", "f1")
        b.addi("r1", "r1", 8)
    store_checksum_fp(b, csum, "f0")
    b.halt()
    return b.build()
