"""swim-like kernel: shallow-water finite differences.

SPEC95 *swim* integrates the shallow-water equations over 2D grids.  The
fingerprint: many distinct arrays (u, v, p and their successors) read in
the *same* inner loop — interleaved accesses to arrays that land on
different owners cut datathreads short (the effect the paper calls out
for the FP codes: "our approximation of datathreads is cut by
interleaved accesses to arrays residing at different processors").
"""

from __future__ import annotations

from ..isa.builder import ProgramBuilder
from .common import checksum_slot, init_double_array, store_checksum_fp


def build(scale: int = 1):
    """Two half-steps over six ``n x n`` grids (n = 24 * scale)."""
    n = 24 * scale
    row_bytes = n * 8
    b = ProgramBuilder("swim")
    au = b.alloc_global("u", n * n * 8)
    av = b.alloc_global("v", n * n * 8)
    ap = b.alloc_global("p", n * n * 8)
    aun = b.alloc_global("unew", n * n * 8)
    avn = b.alloc_global("vnew", n * n * 8)
    apn = b.alloc_global("pnew", n * n * 8)
    consts = b.alloc_global("consts", 16)
    csum = checksum_slot(b)
    init_double_array(b, au, n * n, lambda i: 0.5 + (i % 11) * 0.1)
    init_double_array(b, av, n * n, lambda i: 0.25 + (i % 5) * 0.2)
    init_double_array(b, ap, n * n, lambda i: 10.0 + (i % 9) * 0.5)
    b.init_double(consts, 0.125)

    b.li("r1", consts)
    b.ld("f25", "r1", 0)  # the time-step weight

    for src_u, src_v, src_p, dst_u, dst_v, dst_p in (
        (au, av, ap, aun, avn, apn),
        (aun, avn, apn, au, av, ap),
    ):
        b.li("r10", 1)
        b.li("r9", n - 1)
        with b.while_cond("lt", "r10", "r9"):
            b.li("r16", row_bytes)
            b.mul("r12", "r10", "r16")
            b.addi("r13", "r12", src_v + 8)
            b.addi("r14", "r12", src_p + 8)
            b.addi("r15", "r12", dst_u + 8)
            b.addi("r17", "r12", dst_v + 8)
            b.addi("r18", "r12", dst_p + 8)
            b.addi("r12", "r12", src_u + 8)
            with b.repeat(n - 2, "r11"):
                # Interleave reads across u, v, p every iteration.
                b.ld("f1", "r12", 0)
                b.ld("f2", "r13", 0)
                b.ld("f3", "r14", 0)
                b.ld("f4", "r14", 8)
                b.ld("f5", "r14", -8)
                b.fsub("f6", "f4", "f5")       # dp/dx
                b.fmul("f6", "f6", "f25")
                b.fsub("f7", "f1", "f6")       # u'
                b.sd("f7", "r15", 0)
                b.ld("f8", "r14", row_bytes)
                b.ld("f9", "r14", -row_bytes)
                b.fsub("f10", "f8", "f9")      # dp/dy
                b.fmul("f10", "f10", "f25")
                b.fsub("f11", "f2", "f10")     # v'
                b.sd("f11", "r17", 0)
                b.fadd("f12", "f7", "f11")
                b.fmul("f12", "f12", "f25")
                b.fsub("f13", "f3", "f12")     # p'
                b.sd("f13", "r18", 0)
                for reg in ("r12", "r13", "r14", "r15", "r17", "r18"):
                    b.addi(reg, reg, 8)
            b.addi("r10", "r10", 1)

    b.li("r1", ap + (n // 2) * row_bytes)
    b.fmov("f0", "f25")
    with b.repeat(n, "r3"):
        b.ld("f1", "r1", 0)
        b.fadd("f0", "f0", "f1")
        b.addi("r1", "r1", 8)
    store_checksum_fp(b, csum, "f0")
    b.halt()
    return b.build()
