"""li-like kernel: Lisp interpreter cons-cell churn.

SPEC95 *li* is xlisp running a small workload: its data set is tiny and
hot ("the datathread length for li is high because most of its data set
is replicated" — Table 2), dominated by pointer chasing through cons
cells.  This kernel builds lists from a free list, reverses them in place
(pointer stores), and traverses them (dependent-load chains).
"""

from __future__ import annotations

from ..isa.builder import ProgramBuilder
from .common import checksum_slot, store_checksum

#: Cons cells in the heap (each is two words: car, cdr).
CELLS = 4096


def build(scale: int = 1):
    """60*scale rounds of cons / reverse / sum over a 200-cell list."""
    rounds = 60 * scale
    list_len = 200
    b = ProgramBuilder("li")
    heap = b.alloc_heap("cells", CELLS * 8)
    csum = checksum_slot(b)
    # Initial free list: cell i -> cell i+1.
    for i in range(CELLS):
        b.init_word(heap + 8 * i, i + 1)  # car: payload
        nxt = heap + 8 * (i + 1) if i + 1 < CELLS else 0
        b.init_word(heap + 8 * i + 4, nxt)  # cdr: next free

    b.li("r10", heap)  # free-list head
    b.li("r12", 0)     # checksum
    with b.repeat(rounds, "r20"):
        # cons up a fresh list of list_len cells (or reuse the pool
        # cyclically once exhausted).
        b.li("r13", 0)  # list head (nil)
        with b.repeat(list_len, "r21"):
            with b.if_cond("eq", "r10", "r0"):
                b.li("r10", heap)        # refill from the pool
            b.lw("r14", "r10", 4)        # next free
            b.sw("r13", "r10", 4)        # cdr <- old head
            b.mov("r13", "r10")          # head <- cell
            b.mov("r10", "r14")
        # Destructive reverse (nreverse): pure pointer stores.
        b.li("r15", 0)  # prev
        loop = b.fresh_label("rev")
        done = b.fresh_label("revdone")
        b.label(loop)
        b.beq("r13", "r0", done)
        b.lw("r16", "r13", 4)
        b.sw("r15", "r13", 4)
        b.mov("r15", "r13")
        b.mov("r13", "r16")
        b.j(loop)
        b.label(done)
        # Traverse, summing cars (dependent loads).
        b.mov("r13", "r15")
        walk = b.fresh_label("walk")
        walked = b.fresh_label("walked")
        b.label(walk)
        b.beq("r13", "r0", walked)
        b.lw("r17", "r13", 0)
        b.add("r12", "r12", "r17")
        b.lw("r13", "r13", 4)
        b.j(walk)
        b.label(walked)
        # Return the cells to the free list for the next round.
        b.mov("r10", "r15")

    store_checksum(b, csum, "r12")
    b.halt()
    return b.build()
