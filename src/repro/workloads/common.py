"""Shared helpers for authoring workload kernels.

Every kernel is a function ``build(scale=1) -> Program`` written against
the :class:`~repro.isa.builder.ProgramBuilder` DSL.  These helpers cover
the recurring idioms: 2D/3D array indexing, in-register linear
congruential "input data", and checksum plumbing so tests can verify a
kernel computes something deterministic.
"""

from __future__ import annotations

from ..isa.builder import ProgramBuilder
from ..obs.spans import span

#: (name, scale) -> assembled Program.  Kernels are pure functions of
#: their scale and Programs are immutable after assembly (branch targets
#: resolve once, inside ``ProgramBuilder.build``), so one build can be
#: shared by every system that executes it — Figure 7 already runs five
#: systems over one Program per benchmark.
_PROGRAM_CACHE: "dict[tuple[str, int], object]" = {}


def shared_program(name: str, scale: int, builder):
    """Memoize ``builder()`` under ``(name, scale)``.

    All program construction funnels through here (via
    :meth:`repro.workloads.Workload.build`), so a sweep that touches the
    same benchmark at the same scale dozens of times assembles it once
    per process.
    """
    key = (name, scale)
    program = _PROGRAM_CACHE.get(key)
    if program is None:
        # Only actual builds are charged to the program-build phase;
        # memoized lookups cost (and record) nothing.
        with span("program-build"):
            program = builder()
        _PROGRAM_CACHE[key] = program
    return program


def clear_program_cache() -> None:
    """Drop every memoized program (tests; memory-pressure escape hatch)."""
    _PROGRAM_CACHE.clear()


#: Multiplier/increment of the in-register LCG (Numerical Recipes').
LCG_MULT = 1664525
LCG_INC = 1013904223
LCG_MASK = 0xFFFFFFFF


def lcg_step(b: ProgramBuilder, reg: str, tmp: str) -> None:
    """Advance the 32-bit LCG state held in ``reg`` (clobbers ``tmp``)."""
    b.li(tmp, LCG_MULT)
    b.mul(reg, reg, tmp)
    b.addi(reg, reg, LCG_INC)
    b.li(tmp, LCG_MASK)
    b.and_(reg, reg, tmp)


def row_base(b: ProgramBuilder, dest: str, array_base: int, row_reg: str,
             row_bytes: int, tmp: str) -> None:
    """``dest = array_base + row_reg * row_bytes`` (clobbers ``tmp``)."""
    b.li(tmp, row_bytes)
    b.mul(dest, row_reg, tmp)
    b.addi(dest, dest, array_base)


def checksum_slot(b: ProgramBuilder) -> int:
    """Allocate the conventional 8-byte checksum slot."""
    return b.alloc_global("checksum", 8)


def store_checksum(b: ProgramBuilder, addr: int, reg: str,
                   tmp: str = "r26") -> None:
    """Store an integer checksum register to the checksum slot."""
    b.li(tmp, addr)
    b.sw(reg, tmp, 0)


def store_checksum_fp(b: ProgramBuilder, addr: int, freg: str,
                      tmp: str = "r26") -> None:
    """Store a floating-point checksum register to the checksum slot."""
    b.li(tmp, addr)
    b.sd(freg, tmp, 0)


def init_double_array(b: ProgramBuilder, base: int, count: int,
                      fn=lambda i: (i % 17) * 0.25 + 1.0) -> None:
    """Fill a double array in the initial memory image."""
    for index in range(count):
        b.init_double(base + 8 * index, fn(index))


def init_word_array(b: ProgramBuilder, base: int, count: int,
                    fn=lambda i: (i * 2654435761) & 0x7FFFFFFF) -> None:
    """Fill a word array in the initial memory image."""
    for index in range(count):
        b.init_word(base + 4 * index, fn(index))
