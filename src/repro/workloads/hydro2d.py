"""hydro2d-like kernel: 2D hydrodynamical Navier-Stokes sweeps.

SPEC95 *hydro2d* computes galactical jets with alternating row/column
sweeps over several state arrays.  The fingerprint: four interleaved 2D
arrays, a division in the inner loop (long-latency FDIV pressure), and
column-order sweeps whose large stride defeats spatial locality.
"""

from __future__ import annotations

from ..isa.builder import ProgramBuilder
from .common import checksum_slot, init_double_array, store_checksum_fp


def build(scale: int = 1):
    """One row sweep and one column sweep over four grids (n=28*scale)."""
    n = 28 * scale
    row_bytes = n * 8
    b = ProgramBuilder("hydro2d")
    aro = b.alloc_global("ro", n * n * 8)
    apx = b.alloc_global("px", n * n * 8)
    apy = b.alloc_global("py", n * n * 8)
    aen = b.alloc_global("en", n * n * 8)
    csum = checksum_slot(b)
    init_double_array(b, aro, n * n, lambda i: 1.0 + (i % 6) * 0.5)
    init_double_array(b, apx, n * n, lambda i: 0.1 * (i % 10))
    init_double_array(b, apy, n * n, lambda i: 0.2 * (i % 5))
    init_double_array(b, aen, n * n, lambda i: 5.0 + (i % 4))

    # Row sweep: momentum update with density division.
    b.li("r10", 1)
    b.li("r9", n - 1)
    with b.while_cond("lt", "r10", "r9"):
        b.li("r16", row_bytes)
        b.mul("r12", "r10", "r16")
        b.addi("r13", "r12", apx + 8)
        b.addi("r14", "r12", apy + 8)
        b.addi("r15", "r12", aen + 8)
        b.addi("r12", "r12", aro + 8)
        with b.repeat(n - 2, "r11"):
            b.ld("f1", "r12", 0)   # ro
            b.ld("f2", "r13", 0)   # px
            b.ld("f3", "r14", 0)   # py
            b.ld("f4", "r15", 0)   # en
            b.fdiv("f5", "f2", "f1")   # vx = px / ro
            b.fdiv("f6", "f3", "f1")   # vy = py / ro
            b.fmul("f7", "f5", "f5")
            b.fmul("f8", "f6", "f6")
            b.fadd("f7", "f7", "f8")
            b.fsub("f9", "f4", "f7")   # internal energy
            b.sd("f9", "r15", 0)
            b.ld("f10", "r12", 8)
            b.fadd("f11", "f1", "f10")
            b.fmul("f11", "f11", "f5")
            b.sd("f11", "r13", 0)
            for reg in ("r12", "r13", "r14", "r15"):
                b.addi(reg, reg, 8)
        b.addi("r10", "r10", 1)

    # Column sweep: stride-n walks (poor spatial locality).
    b.li("r10", 1)  # column index
    b.li("r9", n - 1)
    with b.while_cond("lt", "r10", "r9"):
        b.slli("r12", "r10", 3)
        b.addi("r13", "r12", apy + row_bytes)
        b.addi("r12", "r12", aro + row_bytes)
        with b.repeat(n - 2, "r11"):
            b.ld("f1", "r12", 0)
            b.ld("f2", "r12", row_bytes)
            b.ld("f3", "r13", 0)
            b.fadd("f4", "f1", "f2")
            b.fmul("f4", "f4", "f3")
            b.sd("f4", "r13", 0)
            b.addi("r12", "r12", row_bytes)
            b.addi("r13", "r13", row_bytes)
        b.addi("r10", "r10", 1)

    b.li("r1", aen + (n // 2) * row_bytes)
    b.cvtif("f0", "r0")
    with b.repeat(n, "r3"):
        b.ld("f1", "r1", 0)
        b.fadd("f0", "f0", "f1")
        b.addi("r1", "r1", 8)
    store_checksum_fp(b, csum, "f0")
    b.halt()
    return b.build()
