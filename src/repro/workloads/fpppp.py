"""fpppp-like kernel: quantum-chemistry two-electron integrals.

SPEC95 *fpppp* computes multi-electron integral derivatives: enormous
straight-line basic blocks of floating-point arithmetic over a tiny data
set.  The fingerprint: text large relative to data (the paper notes
fpppp's code datathreads run into the thousands because so much of its
text is replicated), negligible data-cache pressure, and deep FP
dependence chains.
"""

from __future__ import annotations

from ..isa.builder import ProgramBuilder
from .common import checksum_slot, init_double_array, store_checksum_fp

#: Number of distinct straight-line integral blocks (each is unique code).
NUM_BLOCKS = 10
#: FP operations per block.
OPS_PER_BLOCK = 96


def _integral_block(b: ProgramBuilder, block_index: int) -> None:
    """Emit one long straight-line block combining the 8 staged values
    in f1..f8 into f9, with block-unique dataflow."""
    rotation = block_index % 7
    b.fadd("f9", "f1", "f2")
    for op in range(OPS_PER_BLOCK):
        a = 1 + (op + rotation) % 8
        c = 1 + (op * 3 + block_index) % 8
        if op % 4 == 0:
            b.fmul("f9", "f9", f"f{a}")
        elif op % 4 == 1:
            b.fadd("f9", "f9", f"f{c}")
        elif op % 4 == 2:
            b.fsub(f"f{a}", f"f{a}", "f9")
        else:
            b.fadd("f9", f"f{a}", f"f{c}")


def build(scale: int = 1):
    """Iterate NUM_BLOCKS straight-line integral blocks over a small
    basis set (24 * scale outer iterations)."""
    iterations = 24 * scale
    b = ProgramBuilder("fpppp")
    basis = b.alloc_global("basis", 64 * 8)
    out = b.alloc_global("out", NUM_BLOCKS * 8)
    csum = checksum_slot(b)
    init_double_array(b, basis, 64, lambda i: 1.0 + i * 0.015625)

    b.li("r4", out)
    with b.repeat(iterations, "r20"):
        b.li("r1", basis)
        for block in range(NUM_BLOCKS):
            # Stage eight basis values (hot, cached after first pass).
            for reg in range(1, 9):
                b.ld(f"f{reg}", "r1", ((block * 8 + reg) % 64) * 8)
            _integral_block(b, block)
            b.sd("f9", "r4", block * 8)

    b.li("r1", out)
    b.cvtif("f0", "r0")
    with b.repeat(NUM_BLOCKS, "r3"):
        b.ld("f1", "r1", 0)
        b.fadd("f0", "f0", "f1")
        b.addi("r1", "r1", 8)
    store_checksum_fp(b, csum, "f0")
    b.halt()
    return b.build()
