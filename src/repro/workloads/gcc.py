"""gcc-like kernel: irregular tree walking over compiler IR.

SPEC95 *gcc* traverses pointer-linked RTL trees with data-dependent
branching and a large, poorly-localized working set.  The fingerprint: a
heap-allocated binary tree (64KB of 16-byte nodes) descended root-to-leaf
along pseudo-random paths, marking visit counts (occasional stores), plus
a symbol-table scan phase.
"""

from __future__ import annotations

from ..isa.builder import ProgramBuilder
from ..memory.address import HEAP_BASE
from .common import checksum_slot, lcg_step, store_checksum

#: Nodes in the IR tree; each node is 4 words (left, right, value, visits).
TREE_NODES = 4095


def build(scale: int = 1):
    """400*scale root-to-leaf walks plus a symbol-table scan."""
    walks = 400 * scale
    b = ProgramBuilder("gcc")
    tree = b.alloc_heap("tree", TREE_NODES * 16)
    symtab = b.alloc_global("symtab", 2048 * 4)
    csum = checksum_slot(b)
    # Heap-style binary tree: node i's children are 2i+1 and 2i+2.
    for i in range(TREE_NODES):
        left = 2 * i + 1
        right = 2 * i + 2
        b.init_word(tree + 16 * i + 0,
                    tree + 16 * left if left < TREE_NODES else 0)
        b.init_word(tree + 16 * i + 4,
                    tree + 16 * right if right < TREE_NODES else 0)
        b.init_word(tree + 16 * i + 8, (i * 2654435761) & 0xFFFF)
    for i in range(2048):
        b.init_word(symtab + 4 * i, (i * 40503) & 0xFFFF)

    b.li("r10", 98765)   # LCG path selector
    b.li("r12", 0)       # checksum
    with b.repeat(walks, "r20"):
        lcg_step(b, "r10", "r21")
        b.li("r13", tree)            # current node
        b.mov("r14", "r10")          # path bits
        loop = b.fresh_label("descend")
        done = b.fresh_label("leaf")
        b.label(loop)
        b.beq("r13", "r0", done)
        b.lw("r15", "r13", 8)        # node value
        b.add("r12", "r12", "r15")
        b.lw("r16", "r13", 12)       # visit count
        b.addi("r16", "r16", 1)
        b.sw("r16", "r13", 12)
        b.andi("r17", "r14", 1)
        b.srli("r14", "r14", 1)
        with b.if_cond("eq", "r17", "r0"):
            b.lw("r13", "r13", 0)    # left child
        with b.if_cond("ne", "r17", "r0"):
            b.lw("r13", "r13", 4)    # right child
        b.j(loop)
        b.label(done)

    # Symbol-table scan: count entries above a threshold.
    b.li("r13", symtab)
    b.li("r15", 0x8000)
    with b.repeat(2048, "r20"):
        b.lw("r14", "r13", 0)
        with b.if_cond("gt", "r14", "r15"):
            b.addi("r12", "r12", 1)
        b.addi("r13", "r13", 4)

    store_checksum(b, csum, "r12")
    b.halt()
    return b.build()


#: Sanity constant exported for tests: the tree lives in the heap.
TREE_SEGMENT_BASE = HEAP_BASE
