"""vortex-like kernel: object-oriented database transactions.

SPEC95 *vortex* runs insert/lookup transactions against an in-memory OO
database.  The fingerprint: an index array mapping keys to records,
multi-word records read and *updated* (notable store traffic for an
integer code), and occasional pointer hops to related records.
"""

from __future__ import annotations

from ..isa.builder import ProgramBuilder
from .common import checksum_slot, lcg_step, store_checksum

#: Records in the database; each record is 8 words (32 bytes).
RECORDS = 2048
RECORD_BYTES = 32


def build(scale: int = 1):
    """1500*scale lookup/update transactions."""
    transactions = 1500 * scale
    b = ProgramBuilder("vortex")
    index = b.alloc_global("index", RECORDS * 4)
    store = b.alloc_heap("records", RECORDS * RECORD_BYTES)
    csum = checksum_slot(b)
    for i in range(RECORDS):
        # Index: a scrambled permutation of record addresses.
        target = (i * 769) % RECORDS
        b.init_word(index + 4 * i, store + target * RECORD_BYTES)
    for i in range(RECORDS):
        base = store + i * RECORD_BYTES
        b.init_word(base + 0, i)                       # key
        b.init_word(base + 4, (i * 40503) & 0xFFFF)    # balance
        b.init_word(base + 8, 0)                       # touch count
        related = (i * 31 + 7) % RECORDS
        b.init_word(base + 12, store + related * RECORD_BYTES)

    b.li("r10", 55555)   # LCG key stream
    b.li("r12", 0)       # checksum
    with b.repeat(transactions, "r20"):
        lcg_step(b, "r10", "r21")
        b.li("r13", RECORDS - 1)
        b.and_("r13", "r10", "r13")
        b.slli("r13", "r13", 2)
        b.addi("r13", "r13", index)
        b.lw("r14", "r13", 0)        # record pointer
        b.lw("r15", "r14", 4)        # balance
        b.addi("r15", "r15", 3)
        b.sw("r15", "r14", 4)        # update balance
        b.lw("r16", "r14", 8)
        b.addi("r16", "r16", 1)
        b.sw("r16", "r14", 8)        # bump touch count
        b.add("r12", "r12", "r15")
        # Every fourth transaction follows the related-record pointer.
        b.andi("r17", "r10", 3)
        with b.if_cond("eq", "r17", "r0"):
            b.lw("r18", "r14", 12)
            b.lw("r19", "r18", 4)
            b.add("r12", "r12", "r19")
            b.lw("r16", "r18", 8)
            b.addi("r16", "r16", 1)
            b.sw("r16", "r18", 8)

    store_checksum(b, csum, "r12")
    b.halt()
    return b.build()
