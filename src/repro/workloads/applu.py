"""applu-like kernel: SSOR forward/backward substitution.

SPEC95 *applu* solves parabolic/elliptic PDEs with symmetric successive
over-relaxation.  The fingerprint: wavefront sweeps whose inner loop
*reads values written moments earlier* (v[i-1], v[i-row], v[i-plane]) —
memory-carried dependence chains that stress store-to-load forwarding
and produce the short, migrating datathreads of the FP codes.
"""

from __future__ import annotations

from ..isa.builder import ProgramBuilder
from .common import checksum_slot, init_double_array, store_checksum_fp


def build(scale: int = 1):
    """Forward then backward SSOR sweep over an n^3 grid (n=12*scale)."""
    n = 12 * scale
    plane = n * n * 8
    row = n * 8
    b = ProgramBuilder("applu")
    v = b.alloc_global("v", n * n * n * 8)
    rhs = b.alloc_global("rhs", n * n * n * 8)
    consts = b.alloc_global("consts", 16)
    csum = checksum_slot(b)
    init_double_array(b, v, n * n * n, lambda i: 0.0)
    init_double_array(b, rhs, n * n * n, lambda i: 1.0 + (i % 19) * 0.125)
    b.init_double(consts, 0.4)  # over-relaxation factor

    b.li("r1", consts)
    b.ld("f25", "r1", 0)

    # Forward substitution: v[k,j,i] from already-updated lower neighbors.
    b.li("r10", 1)
    b.li("r9", n - 1)
    with b.while_cond("lt", "r10", "r9"):
        b.li("r20", plane)
        b.mul("r21", "r10", "r20")
        b.li("r11", 1)
        with b.while_cond("lt", "r11", "r9"):
            b.li("r22", row)
            b.mul("r12", "r11", "r22")
            b.add("r12", "r12", "r21")
            b.addi("r13", "r12", rhs + 8)
            b.addi("r12", "r12", v + 8)
            with b.repeat(n - 2, "r14"):
                b.ld("f1", "r12", -8)       # just written this row
                b.ld("f2", "r12", -row)     # written this sweep
                b.ld("f3", "r12", -plane)
                b.ld("f4", "r13", 0)
                b.fadd("f5", "f1", "f2")
                b.fadd("f5", "f5", "f3")
                b.fmul("f5", "f5", "f25")
                b.fsub("f6", "f4", "f5")
                b.sd("f6", "r12", 0)
                b.addi("r12", "r12", 8)
                b.addi("r13", "r13", 8)
            b.addi("r11", "r11", 1)
        b.addi("r10", "r10", 1)

    # Backward substitution: mirror-image sweep.
    b.li("r10", n - 2)
    b.li("r9", 0)
    with b.while_cond("gt", "r10", "r9"):
        b.li("r20", plane)
        b.mul("r21", "r10", "r20")
        b.li("r11", n - 2)
        with b.while_cond("gt", "r11", "r9"):
            b.li("r22", row)
            b.mul("r12", "r11", "r22")
            b.add("r12", "r12", "r21")
            b.addi("r12", "r12", v + (n - 2) * 8)
            with b.repeat(n - 2, "r14"):
                b.ld("f1", "r12", 8)
                b.ld("f2", "r12", row)
                b.ld("f3", "r12", plane)
                b.ld("f4", "r12", 0)
                b.fadd("f5", "f1", "f2")
                b.fadd("f5", "f5", "f3")
                b.fmul("f5", "f5", "f25")
                b.fsub("f6", "f4", "f5")
                b.sd("f6", "r12", 0)
                b.addi("r12", "r12", -8)
            b.addi("r11", "r11", -1)
        b.addi("r10", "r10", -1)

    b.li("r1", v + plane + row + 8)
    b.cvtif("f0", "r0")
    with b.repeat(n, "r3"):
        b.ld("f1", "r1", 0)
        b.fadd("f0", "f0", "f1")
        b.addi("r1", "r1", 8)
    store_checksum_fp(b, csum, "f0")
    b.halt()
    return b.build()
