"""tomcatv-like kernel: vectorized 2D mesh relaxation.

SPEC95 *tomcatv* generates meshes by relaxing coupled 2D grids.  The
memory fingerprint this kernel reproduces: several large double-precision
2D arrays swept row-major with 5-point neighborhoods, high spatial
locality, moderate store traffic (two result arrays per sweep), and a
text segment small enough to replicate.
"""

from __future__ import annotations

from ..isa.builder import ProgramBuilder
from .common import checksum_slot, init_double_array, store_checksum_fp


def build(scale: int = 1):
    """Two relaxation sweeps over ``n x n`` grids (n = 32 * scale)."""
    n = 32 * scale
    row_bytes = n * 8
    b = ProgramBuilder("tomcatv")
    ax = b.alloc_global("x", n * n * 8)
    ay = b.alloc_global("y", n * n * 8)
    arx = b.alloc_global("rx", n * n * 8)
    ary = b.alloc_global("ry", n * n * 8)
    consts = b.alloc_global("consts", 16)
    csum = checksum_slot(b)
    init_double_array(b, ax, n * n, lambda i: 1.0 + (i % 13) * 0.125)
    init_double_array(b, ay, n * n, lambda i: 2.0 + (i % 7) * 0.25)
    b.init_double(consts, 0.25)

    b.li("r1", consts)
    b.ld("f25", "r1", 0)  # the relaxation weight

    with b.repeat(2, "r20"):  # two sweeps
        b.li("r10", 1)  # i
        b.li("r9", n - 1)
        with b.while_cond("lt", "r10", "r9"):
            # Row pointers at column 1 of row i.
            b.li("r16", row_bytes)
            b.mul("r12", "r10", "r16")
            b.addi("r13", "r12", ay + 8)
            b.addi("r14", "r12", arx + 8)
            b.addi("r15", "r12", ary + 8)
            b.addi("r12", "r12", ax + 8)
            with b.repeat(n - 2, "r11"):
                # x residual: 5-point neighborhood.
                b.ld("f1", "r12", -8)
                b.ld("f2", "r12", 8)
                b.ld("f3", "r12", -row_bytes)
                b.ld("f4", "r12", row_bytes)
                b.ld("f5", "r12", 0)
                b.fadd("f6", "f1", "f2")
                b.fadd("f7", "f3", "f4")
                b.fadd("f6", "f6", "f7")
                b.fmul("f6", "f6", "f25")
                b.fsub("f6", "f6", "f5")
                b.sd("f6", "r14", 0)
                # y residual.
                b.ld("f1", "r13", -8)
                b.ld("f2", "r13", 8)
                b.ld("f3", "r13", -row_bytes)
                b.ld("f4", "r13", row_bytes)
                b.ld("f5", "r13", 0)
                b.fadd("f8", "f1", "f2")
                b.fadd("f7", "f3", "f4")
                b.fadd("f8", "f8", "f7")
                b.fmul("f8", "f8", "f25")
                b.fsub("f8", "f8", "f5")
                b.sd("f8", "r15", 0)
                # Correct the grids toward the residuals.
                b.ld("f9", "r12", 0)
                b.fadd("f9", "f9", "f6")
                b.sd("f9", "r12", 0)
                b.ld("f10", "r13", 0)
                b.fadd("f10", "f10", "f8")
                b.sd("f10", "r13", 0)
                b.addi("r12", "r12", 8)
                b.addi("r13", "r13", 8)
                b.addi("r14", "r14", 8)
                b.addi("r15", "r15", 8)
            b.addi("r10", "r10", 1)

    # Checksum: sum the middle row of rx.
    b.li("r1", arx + (n // 2) * row_bytes)
    b.fmov("f0", "f25")
    with b.repeat(n, "r3"):
        b.ld("f1", "r1", 0)
        b.fadd("f0", "f0", "f1")
        b.addi("r1", "r1", 8)
    store_checksum_fp(b, csum, "f0")
    b.halt()
    return b.build()
