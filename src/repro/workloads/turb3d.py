"""turb3d-like kernel: FFT butterflies for turbulence simulation.

SPEC95 *turb3d* simulates isotropic turbulence with 3D FFTs.  The
fingerprint: log(N) passes of radix-2 butterflies whose stride doubles
each pass — power-of-two strides that (a) collide in a direct-mapped
cache (exercising the correspondence protocol's false hits/misses, which
the paper observed were worst on turb3d) and (b) hop across owners.
"""

from __future__ import annotations

from ..isa.builder import ProgramBuilder
from .common import checksum_slot, init_double_array, store_checksum_fp


def build(scale: int = 1):
    """An in-place radix-2 transform over 2^m complex points
    (m = 9 + scale)."""
    m = 9 + scale
    points = 1 << m
    b = ProgramBuilder("turb3d")
    # Interleaved complex data: re at 16*i, im at 16*i + 8.
    data = b.alloc_global("data", points * 16)
    consts = b.alloc_global("consts", 32)
    csum = checksum_slot(b)
    init_double_array(b, data, points * 2,
                      lambda i: 1.0 if i % 2 == 0 else 0.5 + (i % 9) * 0.125)
    b.init_double(consts, 0.92387953)   # fixed rotation (cos)
    b.init_double(consts + 8, 0.38268343)  # fixed rotation (sin)

    b.li("r1", consts)
    b.ld("f20", "r1", 0)
    b.ld("f21", "r1", 8)

    for stage in range(m):
        stride = 16 << stage          # bytes between butterfly partners
        group = stride * 2
        groups = points * 16 // group
        b.li("r10", 0)                # group counter
        b.li("r9", groups)
        with b.while_cond("lt", "r10", "r9"):
            b.li("r20", group)
            b.mul("r12", "r10", "r20")
            b.addi("r12", "r12", data)   # top of group
            b.addi("r13", "r12", stride)  # partner
            with b.repeat(stride // 16, "r14"):
                b.ld("f1", "r12", 0)   # a.re
                b.ld("f2", "r12", 8)   # a.im
                b.ld("f3", "r13", 0)   # b.re
                b.ld("f4", "r13", 8)   # b.im
                # b' = rotated b (fixed twiddle keeps the code short;
                # the memory behaviour is the point).
                b.fmul("f5", "f3", "f20")
                b.fmul("f6", "f4", "f21")
                b.fsub("f5", "f5", "f6")
                b.fmul("f7", "f3", "f21")
                b.fmul("f8", "f4", "f20")
                b.fadd("f7", "f7", "f8")
                b.fadd("f9", "f1", "f5")
                b.fadd("f10", "f2", "f7")
                b.fsub("f11", "f1", "f5")
                b.fsub("f12", "f2", "f7")
                b.sd("f9", "r12", 0)
                b.sd("f10", "r12", 8)
                b.sd("f11", "r13", 0)
                b.sd("f12", "r13", 8)
                b.addi("r12", "r12", 16)
                b.addi("r13", "r13", 16)
            b.addi("r10", "r10", 1)

    b.li("r1", data)
    b.cvtif("f0", "r0")
    with b.repeat(64, "r3"):
        b.ld("f1", "r1", 0)
        b.fadd("f0", "f0", "f1")
        b.addi("r1", "r1", 16)
    store_checksum_fp(b, csum, "f0")
    b.halt()
    return b.build()
