"""Parallel sweep engine with content-addressed result caching.

Experiments are expressed as lists of :class:`SweepPoint` and executed
by a :class:`SweepRunner`, which fans points out over a process pool
(``jobs>1``), dedups identical points, and short-circuits points whose
content digest is already in a :class:`ResultCache`.  Results always
come back in point order and are bit-identical across ``jobs=1``,
``jobs=N``, and cache-hit paths.

The engine is crash-safe: a :class:`SweepJournal` write-ahead log makes
sweeps resumable after any interruption, worker deaths are recovered by
pool rebuild (with quarantine for points that keep killing workers),
and :mod:`repro.faults.chaos` injects those failures deterministically
to prove it.  See ``docs/runner.md`` for the full tour.
"""

from .cache import ResultCache, default_cache_dir
from .digest import (canonicalize, checkpoint_digest, code_version,
                     point_digest, result_fingerprint)
from .engine import (SweepRunner, get_default_runner, set_default_runner,
                     using_runner)
from .executors import EXECUTORS, execute_point
from .journal import JOURNAL_SCHEMA, JournalState, SweepJournal
from .manifest import RunManifest
from .point import SweepPoint
from .sharded import ShardedRun, ShardEnd
from .telemetry import (PointTelemetry, ProgressLine, TelemetryReader,
                        TelemetryWriter, execute_point_task, worker_tracks)

__all__ = [
    "SweepPoint",
    "SweepRunner",
    "ShardedRun",
    "ShardEnd",
    "ResultCache",
    "RunManifest",
    "SweepJournal",
    "JournalState",
    "JOURNAL_SCHEMA",
    "PointTelemetry",
    "ProgressLine",
    "TelemetryReader",
    "TelemetryWriter",
    "default_cache_dir",
    "canonicalize",
    "checkpoint_digest",
    "code_version",
    "point_digest",
    "result_fingerprint",
    "execute_point",
    "execute_point_task",
    "worker_tracks",
    "EXECUTORS",
    "get_default_runner",
    "set_default_runner",
    "using_runner",
]
