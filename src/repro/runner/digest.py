"""Content addressing for sweep points.

A point's digest is a SHA-256 over (a) the canonical JSON form of the
point — every configuration dataclass serialized field by field with
sorted keys, so semantically identical configs always hash identically
regardless of construction order — and (b) a *code-version stamp*, a
hash of every ``repro`` source file.  Any edit to the simulator
invalidates every cached result, which is exactly the conservative
behavior a simulation cache needs: a cache hit asserts "this exact
code, run on this exact configuration, produced this result".

``REPRO_CODE_VERSION`` overrides the computed stamp (useful for
pinning a cache across cosmetic edits, and for tests that exercise
invalidation).

Two further ingredients keep interpreter-run and codegen-run results
from ever aliasing one cache slot:

* the *engine choice* is digest-visible by construction — it rides in
  ``SystemConfig.engine`` (a canonicalized dataclass field) and/or an
  ``engine`` knob on the point;
* the *generated-code template version*
  (:data:`repro.isa.codegen.CODEGEN_VERSION`) is folded into every
  point digest unconditionally.  The computed code-version stamp
  already hashes the emitter's source like any other ``repro`` file,
  but a pinned ``REPRO_CODE_VERSION`` would bypass that — the explicit
  stamp means codegen template changes invalidate cached results even
  under a pinned code version.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
from functools import lru_cache

from .point import SweepPoint


def canonicalize(value: object) -> object:
    """Reduce ``value`` to a JSON-serializable canonical form.

    Dataclasses become ``{"__type__": qualified-name, ...fields}``;
    dict keys are stringified and sorted by :func:`json.dumps`; sets
    are sorted; tuples and lists are equivalent.  Unknown object types
    raise ``TypeError`` — a point that cannot be canonicalized cannot
    be content-addressed, and silently hashing ``repr`` would let two
    different configurations collide.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            field.name: canonicalize(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
        qualname = f"{type(value).__module__}.{type(value).__qualname__}"
        return {"__type__": qualname, "fields": fields}
    if isinstance(value, dict):
        return {str(key): canonicalize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonicalize(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return {"__set__": sorted(canonicalize(item) for item in value)}
    raise TypeError(
        f"cannot canonicalize {type(value).__name__!r} for a sweep digest"
    )


def result_fingerprint(value: object) -> object:
    """Canonical, comparable form of a sweep *result*.

    Like :func:`canonicalize`, but also walks ``__slots__`` stat objects
    (e.g. :class:`repro.cpu.pipeline.PipelineStats`, which defines
    neither ``__eq__`` nor dataclass fields) and plain attribute-bag
    objects, so two results can be compared for bit-identity regardless
    of which process produced them.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__type__": type(value).__qualname__,
            **{field.name: result_fingerprint(getattr(value, field.name))
               for field in dataclasses.fields(value)},
        }
    if isinstance(value, dict):
        return {str(key): result_fingerprint(item)
                for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [result_fingerprint(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return {"__set__": sorted(result_fingerprint(item)
                                  for item in value)}
    slots = [name for klass in type(value).__mro__
             for name in getattr(klass, "__slots__", ())]
    if slots:
        return {
            "__type__": type(value).__qualname__,
            **{name: result_fingerprint(getattr(value, name))
               for name in slots},
        }
    if hasattr(value, "__dict__"):
        return {
            "__type__": type(value).__qualname__,
            **{name: result_fingerprint(item)
               for name, item in sorted(vars(value).items())},
        }
    raise TypeError(
        f"cannot fingerprint {type(value).__name__!r} for comparison"
    )


def point_payload(point: SweepPoint) -> dict:
    """The digest-relevant content of a point (label excluded)."""
    return {
        "kind": point.kind,
        "workload": point.workload,
        "scale": point.scale,
        "limit": point.limit,
        "config": canonicalize(point.config),
        "knobs": [[name, canonicalize(value)]
                  for name, value in point.knobs],
    }


def point_digest(point: SweepPoint, code_version: str = "") -> str:
    """Stable hex digest of a point under one code version (plus the
    generated-code template stamp — see the module docstring)."""
    from ..isa.codegen import CODEGEN_VERSION

    payload = {"code": code_version, "codegen": CODEGEN_VERSION,
               "point": point_payload(point)}
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def checkpoint_digest(point: SweepPoint, boundary: int,
                      code_version: str = "") -> str:
    """Content address of one checkpoint of ``point``'s simulation at
    the committed-instruction ``boundary``.

    Same ingredients as :func:`point_digest` — workload, scale, limit,
    full config, code and codegen stamps — plus the boundary and the
    snapshot-format stamp (:data:`repro.checkpoint.CHECKPOINT_VERSION`),
    so warm starts can never resume a checkpoint from different code, a
    different configuration, or an incompatible snapshot layout."""
    from ..checkpoint import CHECKPOINT_VERSION
    from ..isa.codegen import CODEGEN_VERSION

    payload = {"code": code_version, "codegen": CODEGEN_VERSION,
               "checkpoint": CHECKPOINT_VERSION, "boundary": boundary,
               "point": point_payload(point)}
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@lru_cache(maxsize=1)
def _computed_code_version() -> str:
    import repro

    root = pathlib.Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def code_version() -> str:
    """The cache's code-version stamp: a hash of every ``repro``
    source file, or the ``REPRO_CODE_VERSION`` environment override."""
    override = os.environ.get("REPRO_CODE_VERSION")
    if override:
        return override
    return _computed_code_version()
