"""Worker→parent telemetry for the sweep engine.

Process-pool workers cannot share a :class:`~repro.obs.spans.
SpanRecorder` with the parent, so each worker streams small JSON
records into its own append-only spool file
(``<spool>/worker-<pid>.jsonl``) — a ``start`` record when a point
begins, a ``done``/``error`` record when it finishes.  The parent polls
the spool between scheduler rounds (:class:`TelemetryReader` tracks a
byte offset per file and only ever consumes complete lines), which is
what drives the live progress line while futures are still in flight.

Authoritative per-point data still travels in-band: the worker task
returns ``(result, payload)`` through the future, so the sweep's
:class:`PointTelemetry` list — one entry per sweep position, in sweep
order — is deterministic regardless of scheduling, worker count, or
which spool lines the parent happened to observe.  The spool is only
for *live* display; it is deleted after the sweep.

Per-worker span merging (:func:`worker_tracks`) groups every executed
point's spans by worker pid so
:func:`repro.obs.export.spans_to_chrome_trace` can lay one sweep out as
one timeline with a track per worker.
"""

from __future__ import annotations

import json
import os
import sys
import time

from ..obs.spans import SpanRecorder, records_as_dicts, recording
from .executors import execute_point
from .point import SweepPoint

__all__ = ["PointTelemetry", "ProgressLine", "TelemetryReader",
           "TelemetryWriter", "close_writers", "execute_point_task",
           "worker_tracks"]


class PointTelemetry:
    """What the engine knows about one sweep position after a run.

    One instance per point *position* (deduped positions share the
    executing position's measurements but are flagged ``deduped``);
    cached positions carry zero wall/CPU and no spans.
    """

    __slots__ = ("index", "label", "kind", "workload", "scale", "limit",
                 "digest", "cached", "deduped", "wall", "cpu", "worker",
                 "spans")

    def __init__(self, index: int, label: str, kind: str,
                 workload: "str | None", scale: int, limit: "int | None",
                 digest: str, cached: bool = False, deduped: bool = False,
                 wall: float = 0.0, cpu: float = 0.0,
                 worker: "int | None" = None,
                 spans: "list[dict] | None" = None):
        self.index = index
        self.label = label
        self.kind = kind
        self.workload = workload
        self.scale = scale
        self.limit = limit
        self.digest = digest
        self.cached = cached
        self.deduped = deduped
        self.wall = wall
        self.cpu = cpu
        self.worker = worker
        self.spans = spans if spans is not None else []

    def to_dict(self) -> dict:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    @classmethod
    def from_dict(cls, row: dict) -> "PointTelemetry":
        return cls(**{slot: row[slot] for slot in cls.__slots__})


# ----------------------------------------------------------------------
# Worker side: the picklable task function and its spool writer.
# ----------------------------------------------------------------------
#: spool dir -> open writer, so a reused pool worker appends to one
#: file across all the points it executes.
_WRITERS: "dict[str, TelemetryWriter]" = {}


class TelemetryWriter:
    """Append-only JSONL spool for one worker process."""

    def __init__(self, spool_dir: str):
        self.path = os.path.join(spool_dir, f"worker-{os.getpid()}.jsonl")
        self._handle = open(self.path, "a", encoding="utf-8")

    def write(self, record: dict) -> None:
        """Append one record and flush, so the parent's next poll (a
        plain read past its saved offset) can observe it.

        The spool is display-only, so a write failure (the parent
        already tore the spool down, disk full) degrades this writer
        to a no-op instead of failing the point."""
        if self._handle is None:
            return
        try:
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
            self._handle.flush()
        except (OSError, ValueError):
            self.close()

    def close(self) -> None:
        handle, self._handle = self._handle, None
        if handle is not None:
            try:
                handle.close()
            except OSError:
                pass


def _writer_for(spool_dir: "str | None") -> "TelemetryWriter | None":
    if spool_dir is None:
        return None
    writer = _WRITERS.get(spool_dir)
    if writer is None:
        try:
            writer = TelemetryWriter(spool_dir)
        except OSError:
            return None  # spool vanished: telemetry degrades, points run
        _WRITERS[spool_dir] = writer
    return writer


def close_writers() -> None:
    """Close every cached spool writer (worker teardown, tests)."""
    while _WRITERS:
        _, writer = _WRITERS.popitem()
        writer.close()


def execute_point_task(point: SweepPoint, spool_dir: "str | None" = None,
                       collect_spans: bool = False,
                       chaos=None, digest: str = "", attempt: int = 0):
    """The engine's worker task: run one point, measure it, spool
    progress records, and return ``(result, payload)``.

    ``payload`` is a plain dict (label, wall/CPU seconds, worker pid,
    span dicts) — everything :class:`PointTelemetry` needs, shipped
    in-band through the future so the authoritative record never
    depends on spool polling.  Exceptions propagate unchanged after an
    ``error`` record is spooled.

    ``chaos`` (a :class:`repro.faults.chaos.ChaosConfig`) arms
    process-level fault injection for this attempt: the worker may be
    delayed, raise a transient ``OSError``, or ``os._exit`` mid-point,
    all decided deterministically from ``(chaos.seed, digest,
    attempt)`` so the schedule never depends on which worker runs what
    when.  Injections are spooled as ``chaos`` records before they
    land (best-effort, like all spool traffic).
    """
    label = point.label or point.kind
    writer = _writer_for(spool_dir)
    if writer is not None:
        writer.write({"event": "start", "label": label,
                      "pid": os.getpid(), "t": time.time(),
                      "attempt": attempt})
    if chaos is not None:
        from ..faults.chaos import ChaosPlan

        def spool_chaos(kind: str, decision) -> None:
            if writer is not None:
                writer.write({"event": "chaos", "kind": kind,
                              "label": label, "pid": os.getpid(),
                              "t": time.time(), "attempt": attempt})

        ChaosPlan(chaos).apply_worker_faults(digest, attempt,
                                             notify=spool_chaos)
    recorder = SpanRecorder() if collect_spans else None
    t0 = time.perf_counter()
    c0 = time.process_time()
    try:
        with recording(recorder):
            result = execute_point(point)
    except BaseException as exc:
        if writer is not None:
            writer.write({"event": "error", "label": label,
                          "pid": os.getpid(), "t": time.time(),
                          "wall": time.perf_counter() - t0,
                          "error": f"{type(exc).__name__}: {exc}"})
        raise
    payload = {
        "label": label,
        "wall": time.perf_counter() - t0,
        "cpu": time.process_time() - c0,
        "worker": os.getpid(),
        "spans": records_as_dicts(recorder),
    }
    if writer is not None:
        writer.write({"event": "done", "label": label,
                      "pid": os.getpid(), "t": time.time(),
                      "wall": payload["wall"]})
    return result, payload


# ----------------------------------------------------------------------
# Parent side: incremental spool reader.
# ----------------------------------------------------------------------
class TelemetryReader:
    """Incremental reader over a spool directory.

    Each :meth:`poll` returns the records appended since the previous
    poll, across all ``worker-*.jsonl`` files (sorted by filename so a
    single poll's ordering is deterministic).  Only complete lines are
    consumed — a record mid-write is picked up by the next poll — and
    undecodable lines are skipped, so a torn read can never take the
    parent down.

    One handle per spool file is held open across polls (cheaper than
    reopening at the poll cadence, and immune to a writer recreating
    the path); :meth:`close` releases them all — the engine calls it on
    every exit path, including timeout aborts and cancellation, so a
    dead sweep never leaks descriptors onto ``worker-*.jsonl`` files
    the spool cleanup is about to delete.
    """

    def __init__(self, spool_dir: str):
        self.spool_dir = spool_dir
        self._offsets: "dict[str, int]" = {}
        self._handles: "dict[str, object]" = {}

    def _handle_for(self, path: str):
        handle = self._handles.get(path)
        if handle is None:
            try:
                handle = open(path, "rb")
            except OSError:
                return None
            self._handles[path] = handle
        return handle

    def poll(self) -> "list[dict]":
        records: "list[dict]" = []
        try:
            names = sorted(name for name in os.listdir(self.spool_dir)
                           if name.startswith("worker-")
                           and name.endswith(".jsonl"))
        except OSError:
            return records
        for name in names:
            path = os.path.join(self.spool_dir, name)
            handle = self._handle_for(path)
            if handle is None:
                continue
            offset = self._offsets.get(path, 0)
            try:
                handle.seek(offset)
                data = handle.read()
            except (OSError, ValueError):
                self._drop_handle(path)
                continue
            end = data.rfind(b"\n")
            if end < 0:
                continue
            self._offsets[path] = offset + end + 1
            for line in data[:end].splitlines():
                try:
                    records.append(json.loads(line.decode("utf-8")))
                except (UnicodeDecodeError, ValueError):
                    continue
        return records

    def _drop_handle(self, path: str) -> None:
        handle = self._handles.pop(path, None)
        if handle is not None:
            try:
                handle.close()
            except OSError:
                pass

    def close(self) -> None:
        """Close every per-file handle (idempotent)."""
        for path in list(self._handles):
            self._drop_handle(path)

    def __enter__(self) -> "TelemetryReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Live progress line.
# ----------------------------------------------------------------------
class ProgressLine:
    """One carriage-return-updated status line on stderr.

    ``enabled=None`` auto-detects: on only when the stream is a TTY
    (so redirected logs never fill with ``\\r`` frames).  All output
    goes to stderr by default — stdout stays clean for results.
    """

    def __init__(self, total: int, stream=None, enabled: "bool | None" = None):
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        if enabled is None:
            isatty = getattr(self.stream, "isatty", None)
            enabled = bool(isatty()) if callable(isatty) else False
        self.enabled = enabled
        self._start = time.perf_counter()
        self._last_width = 0

    def render(self, done: int, cached: int, running: int,
               slowest: "tuple[str, float] | None" = None,
               executed: "int | None" = None,
               remaining: "int | None" = None) -> str:
        """The status text (pure; exercised directly by tests).

        ``executed``/``remaining`` are the *actually executed* and
        *still to execute* work-unit counts the ETA rate is built from.
        The engine passes unique-digest counts, so cache hits,
        journal-replayed points, and deduped duplicate positions — all
        of which complete in ~zero time — never contaminate the
        per-point rate estimate.  Without them the line falls back to
        position arithmetic (``done - cached`` / ``total - done``),
        which over-counts when any position was served for free.
        """
        parts = [f"[sweep] {done}/{self.total} done"]
        if running:
            parts.append(f"{running} running")
        if self.total:
            parts.append(f"cache {cached}/{self.total}")
        if executed is None:
            executed = done - cached
        if remaining is None:
            remaining = self.total - done
        if executed > 0 and remaining > 0:
            elapsed = time.perf_counter() - self._start
            eta = elapsed / executed * remaining
            parts.append(f"eta {_format_seconds(eta)}")
        if slowest is not None:
            label, seconds = slowest
            parts.append(f"slowest {label} {seconds:.1f}s")
        return " | ".join(parts)

    def update(self, done: int, cached: int, running: int,
               slowest: "tuple[str, float] | None" = None,
               executed: "int | None" = None,
               remaining: "int | None" = None) -> None:
        if not self.enabled:
            return
        text = self.render(done, cached, running, slowest,
                           executed=executed, remaining=remaining)
        pad = max(0, self._last_width - len(text))
        self._last_width = len(text)
        self.stream.write("\r" + text + " " * pad)
        self.stream.flush()

    def finish(self) -> None:
        """End the line (newline) if anything was ever drawn."""
        if self.enabled and self._last_width:
            self.stream.write("\n")
            self.stream.flush()
            self._last_width = 0


def _format_seconds(seconds: float) -> str:
    seconds = int(round(seconds))
    if seconds >= 3600:
        return f"{seconds // 3600}:{seconds % 3600 // 60:02d}:{seconds % 60:02d}"
    return f"{seconds // 60}:{seconds % 60:02d}"


# ----------------------------------------------------------------------
# Per-worker span merging.
# ----------------------------------------------------------------------
def worker_tracks(telemetry: "list[PointTelemetry]"):
    """Group executed points' spans by worker for the Chrome trace.

    Returns ``[(track_name, span_dicts)]`` sorted by worker pid (the
    serial path's in-process spans land on a ``"serial"`` track), each
    track's records ordered by start time — deterministic given the
    same telemetry, independent of the order records were observed.
    """
    by_worker: "dict[object, list[dict]]" = {}
    for point in telemetry:
        if point.deduped or not point.spans:
            continue
        key = point.worker if point.worker is not None else "serial"
        by_worker.setdefault(key, []).extend(point.spans)
    tracks = []
    for key in sorted(by_worker, key=str):
        records = sorted(by_worker[key],
                         key=lambda row: (row["start"], row["path"]))
        name = key if key == "serial" else f"worker-{key}"
        tracks.append((name, records))
    return tracks
