"""Sweep points: the unit of work the sweep engine schedules and caches.

A :class:`SweepPoint` is a *description* of one simulation — which
executor to invoke (``kind``), which workload kernel at which scale,
the dynamic-instruction limit, the full machine configuration, and any
executor-specific knobs.  Points are plain frozen dataclasses built
from configuration dataclasses, so they pickle across process
boundaries and canonicalize into a stable content digest
(:func:`repro.runner.digest.point_digest`) — the key of the on-disk
result cache.

Fault and seed knobs ride inside ``config`` (a
:class:`repro.params.SystemConfig` embeds its
:class:`repro.params.FaultConfig`), so two points that differ only in
fault seed hash to different cache entries, as they must.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SweepPoint:
    """One schedulable simulation of a sweep.

    ``label`` is display-only (progress lines, error messages) and is
    excluded from the content digest: two points differing only in
    label are the same simulation and share one cache entry.
    """

    #: Registered executor name (see :mod:`repro.runner.executors`).
    kind: str
    #: Workload kernel name (``None`` for synthetic programs an
    #: executor builds itself, e.g. Figure 3's pointer chase).
    workload: "str | None" = None
    #: Workload scale factor.
    scale: int = 1
    #: Dynamic-instruction cap (``None`` = run to completion).
    limit: "int | None" = None
    #: The machine configuration the executor consumes — a
    #: :class:`~repro.params.SystemConfig`,
    #: :class:`~repro.params.TraditionalConfig`,
    #: :class:`~repro.params.CPUConfig`, or
    #: :class:`~repro.params.CacheConfig` depending on ``kind``.
    config: object = None
    #: Executor-specific extras as name-sorted ``(name, value)`` pairs
    #: (kept as a tuple so the point stays frozen and picklable).
    knobs: "tuple[tuple[str, object], ...]" = ()
    #: Human-readable tag, excluded from the digest.
    label: str = ""

    @classmethod
    def make(cls, kind: str, workload: "str | None" = None, *,
             scale: int = 1, limit: "int | None" = None,
             config: object = None, label: str = "",
             **knobs: object) -> "SweepPoint":
        """Build a point with keyword knobs (order-insensitive)."""
        return cls(
            kind=kind,
            workload=workload,
            scale=scale,
            limit=limit,
            config=config,
            knobs=tuple(sorted(knobs.items())),
            label=label or (f"{kind}/{workload}" if workload else kind),
        )

    def knob(self, name: str, default: object = None) -> object:
        """Look up one knob by name."""
        for key, value in self.knobs:
            if key == name:
                return value
        return default
