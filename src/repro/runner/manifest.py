"""Run manifests: the structured per-sweep report behind ``--report-out``.

A :class:`RunManifest` captures everything needed to compare two runs
of the same sweep — the environment and code-version stamp it ran
under, one row per sweep position (digest, cache state, wall/CPU
seconds, worker, per-point phase breakdown from
:mod:`repro.obs.spans`), and the runner's full
:class:`~repro.obs.metrics.MetricsRegistry` snapshot.  It serializes
to a single JSON document stamped ``repro-run-manifest/1``, which is
exactly what the perf-regression gate (:mod:`repro.obs.baseline`)
consumes::

    python -m repro.experiments figure7 --jobs 4 --report-out run.json
    python -m repro.obs.baseline run.json --against BENCH_sweep.json
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time

from ..obs.spans import breakdown
from .digest import code_version
from .telemetry import PointTelemetry

__all__ = ["MANIFEST_SCHEMA", "RunManifest", "environment_info"]

#: Schema stamp of the manifest document format.
MANIFEST_SCHEMA = "repro-run-manifest/1"


def environment_info() -> "dict[str, object]":
    """Where this run happened (the manifest's ``environment`` block)."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


class RunManifest:
    """One sweep's structured report.

    Built from a live :class:`~repro.runner.engine.SweepRunner` via
    :meth:`from_runner` (requires ``telemetry=True`` so per-point
    measurements exist), or rehydrated from JSON via :meth:`load` /
    :meth:`from_dict`.
    """

    def __init__(self, points: "list[dict]", metrics: "dict | None" = None,
                 jobs: int = 1, wall_seconds: float = 0.0,
                 environment: "dict | None" = None,
                 code: "str | None" = None,
                 created: "float | None" = None,
                 status: str = "complete"):
        self.schema = MANIFEST_SCHEMA
        self.created = time.time() if created is None else created
        self.environment = (environment_info() if environment is None
                            else environment)
        self.code_version = code_version() if code is None else code
        self.jobs = jobs
        self.wall_seconds = wall_seconds
        #: ``"complete"`` for a sweep that ran to the end,
        #: ``"interrupted"`` for a partial manifest written after a
        #: graceful cancellation (the rows present are still final —
        #: every one was cached and journaled before the stop).
        self.status = status
        #: One row per sweep position, in sweep order.
        self.points = points
        self.metrics = metrics if metrics is not None else {}

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------
    @classmethod
    def from_runner(cls, runner, status: str = "complete") -> "RunManifest":
        """Snapshot everything ``runner`` has executed so far.

        ``status="interrupted"`` marks the partial manifest a cancelled
        sweep writes on its way out — the rows are whatever completed
        (all of it durable in cache and journal) before the stop.
        """
        rows = [cls._point_row(point) for point in runner.point_telemetry]
        wall = float(runner.registry.gauge("runner.wall_seconds").value)
        return cls(points=rows, metrics=runner.registry.as_dict(),
                   jobs=runner.jobs, wall_seconds=wall, status=status)

    @staticmethod
    def _point_row(point: PointTelemetry) -> "dict[str, object]":
        row = point.to_dict()
        row["wall_seconds"] = row.pop("wall")
        row["cpu_seconds"] = row.pop("cpu")
        spans = row.pop("spans")
        phases = {
            name: entry["wall"]
            for name, entry in breakdown(spans).items()
        }
        if phases:
            # breakdown() sums exactly to the root span's wall; the
            # task wall additionally includes worker-side time outside
            # the span (scheduler preemption between clock reads, task
            # dispatch).  Charge it explicitly so the phases always sum
            # to ``wall_seconds``.
            untracked = row["wall_seconds"] - sum(phases.values())
            if untracked > 0:
                phases["<untracked>"] = untracked
        row["phases"] = phases
        # Second-level breakdown of the timing loop itself (frontend /
        # commit / memory / issue / fault-recovery accumulators plus
        # the untimed remainder as <self>).  Additive: consumers that
        # predate it simply ignore the key.
        timing = {
            name: entry["wall"]
            for name, entry in breakdown(
                spans, root="point/timing-loop").items()
        }
        if timing:
            row["timing_phases"] = timing
        return row

    # ------------------------------------------------------------------
    # Serialization.
    # ------------------------------------------------------------------
    def to_dict(self) -> "dict[str, object]":
        return {
            "schema": self.schema,
            "created": self.created,
            "environment": self.environment,
            "code_version": self.code_version,
            "jobs": self.jobs,
            "status": self.status,
            "wall_seconds": self.wall_seconds,
            "points": self.points,
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, data: "dict") -> "RunManifest":
        schema = data.get("schema")
        if schema != MANIFEST_SCHEMA:
            from ..errors import ReproError

            raise ReproError(
                f"not a run manifest: schema={schema!r} "
                f"(expected {MANIFEST_SCHEMA!r})")
        manifest = cls(
            points=list(data.get("points", ())),
            metrics=dict(data.get("metrics", {})),
            jobs=int(data.get("jobs", 1)),
            wall_seconds=float(data.get("wall_seconds", 0.0)),
            environment=dict(data.get("environment", {})),
            code=str(data.get("code_version", "")),
            created=float(data.get("created", 0.0)),
            status=str(data.get("status", "complete")),
        )
        return manifest

    def write(self, path: str) -> None:
        """Write the manifest as pretty-printed JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "RunManifest":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    # ------------------------------------------------------------------
    # Convenience accessors (reports, tests, the baseline gate).
    # ------------------------------------------------------------------
    def executed_points(self) -> "list[dict]":
        """Rows that actually ran a simulation in this sweep (not
        cache hits, not dedup aliases)."""
        return [row for row in self.points
                if not row.get("cached") and not row.get("deduped")
                and float(row.get("wall_seconds", 0.0)) > 0.0]

    def cache_hit_rate(self) -> float:
        if not self.points:
            return 0.0
        hits = sum(1 for row in self.points if row.get("cached"))
        return hits / len(self.points)

    def summary(self) -> str:
        executed = len(self.executed_points())
        line = (f"[manifest] points={len(self.points)} executed={executed} "
                f"cache_hit_rate={self.cache_hit_rate():.0%} "
                f"wall={self.wall_seconds:.1f}s jobs={self.jobs} "
                f"code={self.code_version[:12]}")
        if self.status != "complete":
            line += f" status={self.status}"
        return line
