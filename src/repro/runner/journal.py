"""The sweep write-ahead journal: a durable record of sweep progress.

A :class:`SweepJournal` is an append-only JSONL log, one line per
state transition, fsync'd on every append — the record survives an
``os._exit``, an OOM kill, or a power cut mid-sweep.  Records are
schema-versioned (``repro-sweep-journal/1``) and keyed by **point
digest** (:func:`repro.runner.digest.point_digest`), the same key the
on-disk :class:`~repro.runner.cache.ResultCache` uses, which is what
makes resume cheap: a digest the journal marks ``done`` was stored to
the cache *before* the ``done`` record was written, so replaying the
journal against the cache re-executes nothing that already finished.

Record vocabulary (unknown events are skipped on replay, so the format
is forward-extensible):

* ``journal-open`` — first line of every journal file: schema stamp,
  code-version stamp, creation time;
* ``run-start`` — one per :meth:`SweepRunner.run`: point count, jobs;
* ``submit`` — a digest entered execution (first submission only);
* ``done`` — a digest completed; ``cached`` records whether the result
  reached the result cache (a store that degraded on ``OSError`` is
  journaled ``cached: false`` so resume knows to re-execute);
* ``failed`` — a digest exhausted its retry budget;
* ``quarantined`` — a digest exhausted its worker-death budget;
* ``interrupted`` — the sweep was cancelled with work outstanding.

Lifecycle: :meth:`SweepJournal.create` starts a fresh journal and
**rotates** any existing file aside atomically (``os.replace`` to the
first free ``<path>.N``) — an old journal is never silently
overwritten.  :meth:`SweepJournal.resume` re-opens an existing journal
for appending and exposes its replayed :class:`JournalState`.  Replay
tolerates a torn final line (the crash may have happened mid-append);
anything before it is trusted because every complete line was fsync'd.
"""

from __future__ import annotations

import json
import os
import time

from ..errors import JournalError
from .digest import code_version as current_code_version

__all__ = ["JOURNAL_SCHEMA", "JournalState", "SweepJournal"]

#: Schema stamp written in every journal's ``journal-open`` record.
JOURNAL_SCHEMA = "repro-sweep-journal/1"


class JournalState:
    """What a replayed journal says about each digest."""

    def __init__(self) -> None:
        #: digest -> its ``done`` record (``cached`` flag included).
        self.done: "dict[str, dict]" = {}
        #: digest -> its terminal ``failed`` record.
        self.failed: "dict[str, dict]" = {}
        #: digest -> its ``quarantined`` record.
        self.quarantined: "dict[str, dict]" = {}
        #: digests that were submitted but never reached a terminal
        #: record — the in-flight work an interruption abandoned.
        self.submitted: "set[str]" = set()
        #: ``interrupted`` records observed, oldest first.
        self.interruptions: "list[dict]" = []
        #: Total records replayed (complete lines only).
        self.records = 0
        #: The journal's recorded code-version stamp (empty if the
        #: header predates it or was torn away).
        self.code_version = ""

    def completed(self, digest: str) -> bool:
        """``True`` when ``digest`` finished *and* its result was
        stored to the result cache — the replay-from-cache fast path."""
        record = self.done.get(digest)
        return bool(record) and bool(record.get("cached", True))

    def outstanding(self) -> "set[str]":
        """Digests that started but never finished."""
        return self.submitted - set(self.done) - set(self.failed) \
            - set(self.quarantined)

    def apply(self, record: dict) -> None:
        event = record.get("event")
        self.records += 1
        if event == "journal-open":
            self.code_version = str(record.get("code", ""))
        elif event == "submit":
            digest = record.get("digest")
            if digest:
                self.submitted.add(digest)
        elif event == "done":
            digest = record.get("digest")
            if digest:
                self.done[digest] = record
                # A resubmitted digest that eventually succeeded is no
                # longer failed/quarantined.
                self.failed.pop(digest, None)
                self.quarantined.pop(digest, None)
        elif event == "failed":
            digest = record.get("digest")
            if digest:
                self.failed[digest] = record
        elif event == "quarantined":
            digest = record.get("digest")
            if digest:
                self.quarantined[digest] = record
        elif event == "interrupted":
            self.interruptions.append(record)
        # Unknown events: skipped (forward compatibility).


class SweepJournal:
    """Append-only, fsync'd JSONL write-ahead log for one sweep path.

    Construct through :meth:`create` (fresh file, rotates any existing
    journal aside) or :meth:`resume` (re-open and replay).  Appends are
    durable before they return: the line is written, flushed, and
    ``os.fsync``'d (``fsync=False`` trades durability for speed in
    tests).
    """

    def __init__(self, path: "str | os.PathLike", state: JournalState,
                 fsync: bool = True, _fresh: bool = False):
        self.path = os.fspath(path)
        self.state = state
        self.fsync = fsync
        #: Records appended through *this* handle (not replayed ones).
        self.appended = 0
        #: How many prior journal files :meth:`create` rotated aside.
        self.rotated = 0
        self._handle = open(self.path, "a", encoding="utf-8")
        if _fresh:
            self.append("journal-open", schema=JOURNAL_SCHEMA,
                        code=current_code_version())

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, path: "str | os.PathLike",
               fsync: bool = True) -> "SweepJournal":
        """Start a fresh journal at ``path``.

        An existing non-empty file is first rotated aside atomically to
        the lowest free ``<path>.N`` — old progress records are never
        destroyed by starting a new sweep at the same path.
        """
        path = os.fspath(path)
        rotated = 0
        try:
            if os.path.getsize(path) > 0:
                n = 1
                while os.path.exists(f"{path}.{n}"):
                    n += 1
                os.replace(path, f"{path}.{n}")
                rotated = 1
        except FileNotFoundError:
            pass
        except OSError as exc:
            raise JournalError(
                f"cannot rotate existing journal {path!r}: {exc}") from exc
        journal = cls(path, JournalState(), fsync=fsync, _fresh=True)
        journal.rotated = rotated
        return journal

    @classmethod
    def resume(cls, path: "str | os.PathLike",
               fsync: bool = True) -> "SweepJournal":
        """Re-open an existing journal for appending, with its replayed
        :class:`JournalState` attached (``journal.state``)."""
        state = cls.replay(path)
        return cls(path, state, fsync=fsync)

    # ------------------------------------------------------------------
    # Appending.
    # ------------------------------------------------------------------
    def append(self, event: str, **fields: object) -> dict:
        """Durably append one record; returns the record written."""
        record: "dict[str, object]" = {"event": event, "t": time.time()}
        record.update(fields)
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        try:
            self._handle.write(line + "\n")
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())
        except (OSError, ValueError) as exc:
            raise JournalError(
                f"cannot append to journal {self.path!r}: {exc}") from exc
        self.appended += 1
        self.state.apply(record)
        return record

    def close(self) -> None:
        try:
            self._handle.close()
        except OSError:
            pass

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Replay.
    # ------------------------------------------------------------------
    @staticmethod
    def replay(path: "str | os.PathLike") -> JournalState:
        """Rebuild the :class:`JournalState` a journal file records.

        The final line may be torn (the process died mid-append); it is
        ignored, as is any line that does not decode — every *complete*
        line was fsync'd before the engine acted on it, so the prefix is
        trustworthy.  A file whose first decodable record is not a
        ``repro-sweep-journal`` header raises :class:`JournalError`
        rather than silently replaying garbage.
        """
        path = os.fspath(path)
        state = JournalState()
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError as exc:
            raise JournalError(
                f"cannot read journal {path!r}: {exc}") from exc
        end = data.rfind(b"\n")
        if end < 0:
            if data.strip():
                raise JournalError(
                    f"not a sweep journal: {path!r} has no complete "
                    f"records")
            return state
        first = True
        for line in data[:end].splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                continue  # torn or foreign line: skip
            if not isinstance(record, dict):
                continue
            if first:
                first = False
                schema = record.get("schema", "")
                if record.get("event") != "journal-open" \
                        or not str(schema).startswith("repro-sweep-journal/"):
                    raise JournalError(
                        f"not a sweep journal: {path!r} (first record: "
                        f"{record.get('event')!r}, schema {schema!r})")
            state.apply(record)
        return state
