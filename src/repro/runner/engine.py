"""The sweep engine: deterministic fan-out of sweep points.

:class:`SweepRunner` executes a list of :class:`~repro.runner.point.
SweepPoint` and returns results **in point order**, regardless of
completion order, worker count, or cache state — the invariant every
experiment driver leans on.  Three paths produce the same bits:

* ``jobs=1`` — today's in-process path, exactly: each point's executor
  is called directly, in order, and exceptions propagate unchanged;
* ``jobs>1`` — points fan out over a ``ProcessPoolExecutor``; a failed
  point is retried up to ``retries`` times, and if it still fails the
  *first failing point by sweep order* is re-raised after the rest of
  the sweep completes (deterministic, not completion-order-dependent);
* cache hits — points whose digest is already in the
  :class:`~repro.runner.cache.ResultCache` skip execution entirely.

Identical points inside one sweep (same digest) execute once and fan
the result out to every position.  Counters land in an
:class:`~repro.obs.metrics.MetricsRegistry` under ``runner.*``.
"""

from __future__ import annotations

import contextlib
import os
import shutil
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

from ..errors import PointTimeoutError, RunnerError
from ..obs import spans
from ..obs.metrics import MetricsRegistry
from .cache import ResultCache
from .digest import point_digest
from .executors import execute_point
from .point import SweepPoint
from .telemetry import (PointTelemetry, ProgressLine, TelemetryReader,
                        execute_point_task)

__all__ = ["SweepRunner", "get_default_runner", "set_default_runner",
           "using_runner"]

#: Seconds between spool polls while the live progress line is on.
PROGRESS_POLL_SECONDS = 0.2


def _prebuild_programs(points: "list[SweepPoint]") -> None:
    """Warm the shared program cache for every (workload, scale) in the
    sweep, so forked workers inherit one build instead of re-assembling
    per process (spawn-based platforms rebuild once per worker)."""
    from ..workloads import build_program

    for point in points:
        if point.workload is not None:
            build_program(point.workload, point.scale)


class SweepRunner:
    """Executes sweep points with optional parallelism and caching.

    ``jobs=1`` (with ``retries=0``, the default) is byte-for-byte
    today's serial driver path.  ``timeout`` bounds one point's
    execution in seconds: in workers it also bounds how long the engine
    waits for *any* progress, so a hung simulation surfaces as a
    :class:`~repro.errors.RunnerError` instead of a silent stall.
    """

    def __init__(self, jobs: "int | None" = None,
                 cache: "ResultCache | None" = None,
                 registry: "MetricsRegistry | None" = None,
                 timeout: "float | None" = None,
                 retries: int = 0,
                 progress: "bool | None" = False,
                 telemetry: bool = False):
        self.jobs = int(jobs) if jobs else (os.cpu_count() or 1)
        if self.jobs < 1:
            raise RunnerError(f"jobs must be >= 1, got {jobs}")
        self.cache = cache
        self.registry = registry if registry is not None else MetricsRegistry()
        self.timeout = timeout
        self.retries = retries
        #: ``True``/``False`` force the live progress line on/off;
        #: ``None`` auto-detects (on only when stderr is a TTY).
        self.progress = progress
        #: Collect per-point spans and :class:`PointTelemetry` (the raw
        #: material for run manifests and merged Chrome traces).
        self.telemetry = telemetry
        self._wall_seconds = 0.0
        #: Per-position telemetry across every ``run()`` this runner has
        #: served, in sweep order (``index`` is the global position).
        self.point_telemetry: "list[PointTelemetry]" = []

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------
    def run(self, points) -> "list[object]":
        """Execute every point; results come back in point order."""
        points = list(points)
        registry = self.registry
        registry.counter("runner.points.total").inc(len(points))
        start = time.perf_counter()
        base = len(self.point_telemetry)
        results: "list[object]" = [None] * len(points)
        code = self.cache.code_version if self.cache is not None else ""
        digests = [point_digest(point, code) for point in points]

        # Resolve cache hits and dedup the remainder by digest.
        pending: "dict[str, list[int]]" = {}
        cached_indices: "list[int]" = []
        for index, (point, digest) in enumerate(zip(points, digests)):
            if self.cache is not None:
                hit, value = self.cache.load(point, digest=digest)
                if hit:
                    registry.counter("runner.cache.hit").inc()
                    registry.counter("runner.points.cached").inc()
                    results[index] = value
                    cached_indices.append(index)
                    continue
                registry.counter("runner.cache.miss").inc()
            pending.setdefault(digest, []).append(index)
        duplicates = sum(len(slots) - 1 for slots in pending.values())
        if duplicates:
            registry.counter("runner.points.deduped").inc(duplicates)

        progress = ProgressLine(len(points), enabled=self.progress)
        payloads: "dict[str, dict]" = {}
        try:
            if pending:
                _prebuild_programs([points[slots[0]]
                                    for slots in pending.values()])
                if self.jobs == 1:
                    executed = self._run_serial(points, pending, start,
                                                payloads, progress,
                                                len(cached_indices))
                else:
                    executed = self._run_parallel(points, pending, start,
                                                  payloads, progress,
                                                  len(cached_indices))
                for digest, value in executed.items():
                    for index in pending[digest]:
                        results[index] = value
            elif points:
                progress.update(len(points), len(cached_indices), 0)
        finally:
            progress.finish()

        self._collect_telemetry(points, digests, pending, cached_indices,
                                payloads, base)
        self._wall_seconds += time.perf_counter() - start
        registry.gauge("runner.wall_seconds").set(self._wall_seconds)
        return results

    def _collect_telemetry(self, points, digests, pending, cached_indices,
                           payloads, base) -> None:
        """Append one :class:`PointTelemetry` per sweep position, in
        sweep order — cached positions with zero cost, deduped
        positions sharing the executing position's measurements."""
        rows: "dict[int, PointTelemetry]" = {}
        for index in cached_indices:
            rows[index] = self._telemetry_entry(base, index, points[index],
                                                digests[index], cached=True)
        for digest, slots in pending.items():
            payload = payloads.get(digest)
            if payload is None:
                continue  # failed (the sweep raises) or timed out
            for position, index in enumerate(slots):
                rows[index] = self._telemetry_entry(
                    base, index, points[index], digest,
                    deduped=position > 0,
                    wall=float(payload["wall"]), cpu=float(payload["cpu"]),
                    worker=payload.get("worker"),
                    spans=list(payload.get("spans", ())),
                )
        self.point_telemetry.extend(rows[index] for index in sorted(rows))

    @staticmethod
    def _telemetry_entry(base, index, point, digest, **kwargs):
        return PointTelemetry(
            index=base + index,
            label=point.label or point.kind,
            kind=point.kind,
            workload=point.workload,
            scale=point.scale,
            limit=point.limit,
            digest=digest,
            **kwargs,
        )

    def summary(self) -> str:
        """One-line accounting of everything this runner has done."""
        registry = self.registry
        total = registry.counter("runner.points.total").value
        hits = registry.counter("runner.cache.hit").value
        misses = registry.counter("runner.cache.miss").value
        executed = registry.counter("runner.points.executed").value
        deduped = registry.counter("runner.points.deduped").value
        rate = f"{hits / total:.0%}" if total else "n/a"
        wall = registry.gauge("runner.wall_seconds").value
        return (f"[runner] jobs={self.jobs} points={total} "
                f"executed={executed} deduped={deduped} "
                f"cache_hits={hits} cache_misses={misses} "
                f"cache_hit_rate={rate} wall={wall:.1f}s")

    # ------------------------------------------------------------------
    # Execution paths.
    # ------------------------------------------------------------------
    def _record_done(self, point: SweepPoint, digest: str, value: object,
                     seconds: float, start: float) -> None:
        registry = self.registry
        registry.counter("runner.points.executed").inc()
        registry.histogram("runner.point_seconds").record(seconds)
        registry.series("runner.completed_at").append(
            time.perf_counter() - start)
        if self.cache is not None:
            self.cache.store(point, value, digest=digest)

    def _run_serial(self, points, pending, start, payloads,
                    progress, cached) -> "dict[str, object]":
        """In-process execution, in sweep order, failing fast — exactly
        the pre-engine driver behavior at ``retries=0`` with telemetry
        off (``recording(None)`` is a no-op scope)."""
        executed: "dict[str, object]" = {}
        done_positions = cached
        slowest: "tuple[str, float] | None" = None
        for digest, slots in pending.items():
            point = points[slots[0]]
            attempts = 0
            while True:
                try:
                    recorder = spans.SpanRecorder() if self.telemetry else None
                    tick = time.perf_counter()
                    ctick = time.process_time()
                    with spans.recording(recorder):
                        value = execute_point(point)
                    seconds = time.perf_counter() - tick
                    break
                except Exception:
                    attempts += 1
                    if attempts > self.retries:
                        self.registry.counter("runner.points.failed").inc()
                        raise
                    self.registry.counter("runner.points.retried").inc()
            executed[digest] = value
            payloads[digest] = {
                "label": point.label or point.kind,
                "wall": seconds,
                "cpu": time.process_time() - ctick,
                "worker": None,
                "spans": spans.records_as_dicts(recorder),
            }
            self._record_done(point, digest, value, seconds, start)
            done_positions += len(slots)
            if slowest is None or seconds > slowest[1]:
                slowest = (point.label or point.kind, seconds)
            progress.update(done_positions, cached, 0, slowest)
        return executed

    def _run_parallel(self, points, pending, start, payloads,
                      progress, cached) -> "dict[str, object]":
        """Process-pool execution with per-point retry and a progress
        timeout; the sweep always drains, then the earliest failure by
        point order (if any) is re-raised.

        Workers spool start/done/error records into a per-worker JSONL
        file (when telemetry or the progress line is on); the parent
        polls it between scheduler rounds to keep the progress line
        live while futures are still in flight.  Authoritative results
        and span payloads travel in-band through the futures, so spool
        polling can never change what the sweep returns.
        """
        registry = self.registry
        order = {digest: slots[0] for digest, slots in pending.items()}
        executed: "dict[str, object]" = {}
        failures: "dict[str, BaseException]" = {}
        failed_after: "dict[str, float]" = {}
        attempts: "dict[str, int]" = {digest: 0 for digest in pending}
        workers = min(self.jobs, len(pending))
        use_spool = self.telemetry or progress.enabled
        spool_dir = (tempfile.mkdtemp(prefix="repro-sweep-spool-")
                     if use_spool else None)
        reader = TelemetryReader(spool_dir) if spool_dir else None
        # With live progress on, wake up at a sub-timeout cadence to
        # poll the spool; a point timeout is then declared on elapsed
        # time since the last completion, preserving the plain-wait
        # semantics exactly.
        wait_timeout = self.timeout
        if progress.enabled:
            wait_timeout = (PROGRESS_POLL_SECONDS if self.timeout is None
                            else min(PROGRESS_POLL_SECONDS, self.timeout))
        slowest: "tuple[str, float] | None" = None
        submitted: "dict[str, float]" = {}
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {}
                for digest, slots in pending.items():
                    submitted[digest] = time.perf_counter()
                    futures[pool.submit(execute_point_task, points[slots[0]],
                                        spool_dir, self.telemetry)] = digest
                last_completion = time.perf_counter()

                def show_progress() -> None:
                    if reader is not None:
                        reader.poll()  # advance offsets; display only
                    done_positions = cached + sum(
                        len(pending[digest]) for digest in executed)
                    progress.update(done_positions, cached, len(futures),
                                    slowest)

                show_progress()
                while futures:
                    done, _ = wait(futures, timeout=wait_timeout,
                                   return_when=FIRST_COMPLETED)
                    now = time.perf_counter()
                    if not done:
                        if (self.timeout is not None
                                and now - last_completion >= self.timeout):
                            for future in futures:
                                future.cancel()
                            self._abort_pool(pool)
                            raise PointTimeoutError(
                                f"no sweep point completed within "
                                f"{self.timeout}s ({len(futures)} "
                                f"outstanding; first by sweep order: "
                                f"{self._describe(points, pending, futures, submitted)})"
                            )
                        show_progress()
                        continue
                    last_completion = now
                    for future in done:
                        digest = futures.pop(future)
                        point = points[pending[digest][0]]
                        try:
                            value, payload = future.result()
                        except Exception as exc:
                            attempts[digest] += 1
                            if attempts[digest] <= self.retries:
                                registry.counter("runner.points.retried").inc()
                                submitted[digest] = time.perf_counter()
                                retry = pool.submit(execute_point_task, point,
                                                    spool_dir, self.telemetry)
                                futures[retry] = digest
                                continue
                            registry.counter("runner.points.failed").inc()
                            failures[digest] = exc
                            failed_after[digest] = now - submitted[digest]
                            continue
                        executed[digest] = value
                        payloads[digest] = payload
                        seconds = float(payload["wall"])
                        if slowest is None or seconds > slowest[1]:
                            slowest = (point.label or point.kind, seconds)
                        self._record_done(point, digest, value, seconds,
                                          start)
                    show_progress()
        finally:
            if spool_dir is not None:
                shutil.rmtree(spool_dir, ignore_errors=True)
        if failures:
            digest = min(failures, key=order.__getitem__)
            point = points[order[digest]]
            raise RunnerError(
                f"{len(failures)} sweep point(s) failed; first by sweep "
                f"order: {point.label or point.kind} (kind={point.kind}, "
                f"failed after {failed_after[digest]:.1f}s, "
                f"{attempts[digest]} attempt(s))"
            ) from failures[digest]
        return executed

    @staticmethod
    def _abort_pool(pool) -> None:
        """Tear a pool down around a hung point.  ``cancel()`` cannot
        stop a *running* task, and the pool's ``__exit__`` would join
        it — a hung simulation would block the timeout error itself —
        so the stuck workers are terminated outright."""
        processes = list((getattr(pool, "_processes", None) or {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            process.terminate()

    @staticmethod
    def _describe(points, pending, futures, submitted) -> str:
        """Outstanding points at timeout, earliest sweep position
        first: ``label (kind, 12.3s since submit)``, up to three."""
        now = time.perf_counter()
        outstanding = sorted(futures.values(),
                             key=lambda digest: pending[digest][0])
        parts = []
        for digest in outstanding[:3]:
            point = points[pending[digest][0]]
            elapsed = now - submitted.get(digest, now)
            parts.append(f"{point.label or point.kind} "
                         f"({point.kind}, {elapsed:.1f}s since submit)")
        if len(outstanding) > 3:
            parts.append("...")
        return ", ".join(parts)


# ----------------------------------------------------------------------
# The process-wide default runner experiment drivers fall back to.
# ----------------------------------------------------------------------
_default_runner: "SweepRunner | None" = None


def get_default_runner() -> SweepRunner:
    """The runner drivers use when none is passed explicitly: serial,
    uncached, in-process — today's behavior — unless the CLI (or a
    caller) installed something richer via :func:`set_default_runner`."""
    global _default_runner
    if _default_runner is None:
        _default_runner = SweepRunner(jobs=1)
    return _default_runner


def set_default_runner(runner: "SweepRunner | None") -> "SweepRunner | None":
    """Install (or, with ``None``, reset) the process default; returns
    the previous default so callers can restore it."""
    global _default_runner
    previous = _default_runner
    _default_runner = runner
    return previous


@contextlib.contextmanager
def using_runner(runner: SweepRunner):
    """Scope a default runner to a ``with`` block."""
    previous = set_default_runner(runner)
    try:
        yield runner
    finally:
        set_default_runner(previous)
