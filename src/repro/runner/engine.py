"""The sweep engine: deterministic fan-out of sweep points.

:class:`SweepRunner` executes a list of :class:`~repro.runner.point.
SweepPoint` and returns results **in point order**, regardless of
completion order, worker count, or cache state — the invariant every
experiment driver leans on.  Three paths produce the same bits:

* ``jobs=1`` — today's in-process path, exactly: each point's executor
  is called directly, in order, and exceptions propagate unchanged;
* ``jobs>1`` — points fan out over a ``ProcessPoolExecutor``; a failed
  point is retried up to ``retries`` times, and if it still fails the
  *first failing point by sweep order* is re-raised after the rest of
  the sweep completes (deterministic, not completion-order-dependent);
* cache hits — points whose digest is already in the
  :class:`~repro.runner.cache.ResultCache` skip execution entirely.

Identical points inside one sweep (same digest) execute once and fan
the result out to every position.  Counters land in an
:class:`~repro.obs.metrics.MetricsRegistry` under ``runner.*``.
"""

from __future__ import annotations

import contextlib
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

from ..errors import PointTimeoutError, RunnerError
from ..obs.metrics import MetricsRegistry
from .cache import ResultCache
from .digest import point_digest
from .executors import execute_point
from .point import SweepPoint

__all__ = ["SweepRunner", "get_default_runner", "set_default_runner",
           "using_runner"]


def _execute_timed(point: SweepPoint) -> "tuple[object, float]":
    """Worker task: run one point, report its in-worker seconds."""
    start = time.perf_counter()
    result = execute_point(point)
    return result, time.perf_counter() - start


def _prebuild_programs(points: "list[SweepPoint]") -> None:
    """Warm the shared program cache for every (workload, scale) in the
    sweep, so forked workers inherit one build instead of re-assembling
    per process (spawn-based platforms rebuild once per worker)."""
    from ..workloads import build_program

    for point in points:
        if point.workload is not None:
            build_program(point.workload, point.scale)


class SweepRunner:
    """Executes sweep points with optional parallelism and caching.

    ``jobs=1`` (with ``retries=0``, the default) is byte-for-byte
    today's serial driver path.  ``timeout`` bounds one point's
    execution in seconds: in workers it also bounds how long the engine
    waits for *any* progress, so a hung simulation surfaces as a
    :class:`~repro.errors.RunnerError` instead of a silent stall.
    """

    def __init__(self, jobs: "int | None" = None,
                 cache: "ResultCache | None" = None,
                 registry: "MetricsRegistry | None" = None,
                 timeout: "float | None" = None,
                 retries: int = 0):
        self.jobs = int(jobs) if jobs else (os.cpu_count() or 1)
        if self.jobs < 1:
            raise RunnerError(f"jobs must be >= 1, got {jobs}")
        self.cache = cache
        self.registry = registry if registry is not None else MetricsRegistry()
        self.timeout = timeout
        self.retries = retries
        self._wall_seconds = 0.0

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------
    def run(self, points) -> "list[object]":
        """Execute every point; results come back in point order."""
        points = list(points)
        registry = self.registry
        registry.counter("runner.points.total").inc(len(points))
        start = time.perf_counter()
        results: "list[object]" = [None] * len(points)
        code = self.cache.code_version if self.cache is not None else ""
        digests = [point_digest(point, code) for point in points]

        # Resolve cache hits and dedup the remainder by digest.
        pending: "dict[str, list[int]]" = {}
        for index, (point, digest) in enumerate(zip(points, digests)):
            if self.cache is not None:
                hit, value = self.cache.load(point, digest=digest)
                if hit:
                    registry.counter("runner.cache.hit").inc()
                    registry.counter("runner.points.cached").inc()
                    results[index] = value
                    continue
                registry.counter("runner.cache.miss").inc()
            pending.setdefault(digest, []).append(index)
        duplicates = sum(len(slots) - 1 for slots in pending.values())
        if duplicates:
            registry.counter("runner.points.deduped").inc(duplicates)

        if pending:
            _prebuild_programs([points[slots[0]]
                                for slots in pending.values()])
            if self.jobs == 1:
                executed = self._run_serial(points, pending, start)
            else:
                executed = self._run_parallel(points, pending, start)
            for digest, value in executed.items():
                for index in pending[digest]:
                    results[index] = value
        self._wall_seconds += time.perf_counter() - start
        registry.gauge("runner.wall_seconds").set(self._wall_seconds)
        return results

    def summary(self) -> str:
        """One-line accounting of everything this runner has done."""
        registry = self.registry
        total = registry.counter("runner.points.total").value
        hits = registry.counter("runner.cache.hit").value
        misses = registry.counter("runner.cache.miss").value
        executed = registry.counter("runner.points.executed").value
        deduped = registry.counter("runner.points.deduped").value
        rate = f"{hits / total:.0%}" if total else "n/a"
        wall = registry.gauge("runner.wall_seconds").value
        return (f"[runner] jobs={self.jobs} points={total} "
                f"executed={executed} deduped={deduped} "
                f"cache_hits={hits} cache_misses={misses} "
                f"cache_hit_rate={rate} wall={wall:.1f}s")

    # ------------------------------------------------------------------
    # Execution paths.
    # ------------------------------------------------------------------
    def _record_done(self, point: SweepPoint, digest: str, value: object,
                     seconds: float, start: float) -> None:
        registry = self.registry
        registry.counter("runner.points.executed").inc()
        registry.histogram("runner.point_seconds").record(seconds)
        registry.series("runner.completed_at").append(
            time.perf_counter() - start)
        if self.cache is not None:
            self.cache.store(point, value, digest=digest)

    def _run_serial(self, points, pending, start) -> "dict[str, object]":
        """In-process execution, in sweep order, failing fast — exactly
        the pre-engine driver behavior at ``retries=0``."""
        executed: "dict[str, object]" = {}
        for digest, slots in pending.items():
            point = points[slots[0]]
            attempts = 0
            while True:
                try:
                    tick = time.perf_counter()
                    value = execute_point(point)
                    seconds = time.perf_counter() - tick
                    break
                except Exception:
                    attempts += 1
                    if attempts > self.retries:
                        self.registry.counter("runner.points.failed").inc()
                        raise
                    self.registry.counter("runner.points.retried").inc()
            executed[digest] = value
            self._record_done(point, digest, value, seconds, start)
        return executed

    def _run_parallel(self, points, pending, start) -> "dict[str, object]":
        """Process-pool execution with per-point retry and a progress
        timeout; the sweep always drains, then the earliest failure by
        point order (if any) is re-raised."""
        registry = self.registry
        order = {digest: slots[0] for digest, slots in pending.items()}
        executed: "dict[str, object]" = {}
        failures: "dict[str, BaseException]" = {}
        attempts: "dict[str, int]" = {digest: 0 for digest in pending}
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_execute_timed, points[slots[0]]): digest
                for digest, slots in pending.items()
            }
            while futures:
                done, _ = wait(futures, timeout=self.timeout,
                               return_when=FIRST_COMPLETED)
                if not done:
                    for future in futures:
                        future.cancel()
                    raise PointTimeoutError(
                        f"no sweep point completed within {self.timeout}s "
                        f"({len(futures)} outstanding; first: "
                        f"{self._describe(points, pending, futures)})"
                    )
                for future in done:
                    digest = futures.pop(future)
                    point = points[pending[digest][0]]
                    try:
                        value, seconds = future.result()
                    except Exception as exc:
                        attempts[digest] += 1
                        if attempts[digest] <= self.retries:
                            registry.counter("runner.points.retried").inc()
                            retry = pool.submit(_execute_timed, point)
                            futures[retry] = digest
                            continue
                        registry.counter("runner.points.failed").inc()
                        failures[digest] = exc
                        continue
                    executed[digest] = value
                    self._record_done(point, digest, value, seconds, start)
        if failures:
            digest = min(failures, key=order.__getitem__)
            point = points[order[digest]]
            raise RunnerError(
                f"{len(failures)} sweep point(s) failed; first by sweep "
                f"order: {point.label or point.kind}"
            ) from failures[digest]
        return executed

    @staticmethod
    def _describe(points, pending, futures) -> str:
        digest = next(iter(futures.values()))
        point = points[pending[digest][0]]
        return point.label or point.kind


# ----------------------------------------------------------------------
# The process-wide default runner experiment drivers fall back to.
# ----------------------------------------------------------------------
_default_runner: "SweepRunner | None" = None


def get_default_runner() -> SweepRunner:
    """The runner drivers use when none is passed explicitly: serial,
    uncached, in-process — today's behavior — unless the CLI (or a
    caller) installed something richer via :func:`set_default_runner`."""
    global _default_runner
    if _default_runner is None:
        _default_runner = SweepRunner(jobs=1)
    return _default_runner


def set_default_runner(runner: "SweepRunner | None") -> "SweepRunner | None":
    """Install (or, with ``None``, reset) the process default; returns
    the previous default so callers can restore it."""
    global _default_runner
    previous = _default_runner
    _default_runner = runner
    return previous


@contextlib.contextmanager
def using_runner(runner: SweepRunner):
    """Scope a default runner to a ``with`` block."""
    previous = set_default_runner(runner)
    try:
        yield runner
    finally:
        set_default_runner(previous)
