"""The sweep engine: deterministic fan-out of sweep points.

:class:`SweepRunner` executes a list of :class:`~repro.runner.point.
SweepPoint` and returns results **in point order**, regardless of
completion order, worker count, or cache state — the invariant every
experiment driver leans on.  Three paths produce the same bits:

* ``jobs=1`` — today's in-process path, exactly: each point's executor
  is called directly, in order, and exceptions propagate unchanged;
* ``jobs>1`` — points fan out over a ``ProcessPoolExecutor``; a failed
  point is retried up to ``retries`` times, and if it still fails the
  *first failing point by sweep order* is re-raised after the rest of
  the sweep completes (deterministic, not completion-order-dependent);
* cache hits — points whose digest is already in the
  :class:`~repro.runner.cache.ResultCache` skip execution entirely.

Identical points inside one sweep (same digest) execute once and fan
the result out to every position.  Counters land in an
:class:`~repro.obs.metrics.MetricsRegistry` under ``runner.*``.

Crash safety (see ``docs/runner.md``, "Crash safety, resume, and chaos
testing"):

* **worker loss** — a worker that dies mid-point (OOM kill, segfault,
  injected ``os._exit``) breaks the process pool; the engine rebuilds
  the pool (``runner.pool.rebuilds``), pauses with deterministic
  seeded exponential backoff, and re-executes the points that were in
  flight *one at a time* so blame is attributed precisely.  A point
  that keeps killing workers is quarantined after
  ``worker_death_budget`` attributed deaths
  (:class:`~repro.errors.PointQuarantinedError`,
  ``runner.points.quarantined``) while the rest of the sweep drains
  normally;
* **durability** — with a :class:`~repro.runner.journal.SweepJournal`
  attached, every submit/done/failed/quarantined transition is fsync'd
  to an append-only JSONL log *after* the result reaches the cache, so
  a later run over the same journal and cache re-executes only
  unfinished work;
* **cancellation** — :meth:`SweepRunner.request_cancel` (wired to
  SIGINT/SIGTERM by the experiments CLI) stops the sweep at the next
  scheduler round: outstanding futures are cancelled, workers are torn
  down, an ``interrupted`` record is journaled, and
  :class:`~repro.errors.SweepInterruptedError` carries the tally —
  completed points are already durable;
* **chaos** — ``chaos=ChaosConfig(...)`` arms seeded process-level
  fault injection (:mod:`repro.faults.chaos`) in the workers; with
  recovery budgets at least the chaos fault budget, results are
  bit-identical to a chaos-free sweep.
"""

from __future__ import annotations

import contextlib
import os
import random
import shutil
import signal
import tempfile
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool

from ..errors import (PointQuarantinedError, PointTimeoutError, RunnerError,
                      SweepInterruptedError)
from ..obs import spans
from ..obs.metrics import MetricsRegistry
from .cache import ResultCache
from .digest import point_digest
from .executors import execute_point
from .journal import SweepJournal
from .point import SweepPoint
from .telemetry import (PointTelemetry, ProgressLine, TelemetryReader,
                        execute_point_task)

__all__ = ["SweepRunner", "get_default_runner", "set_default_runner",
           "using_runner"]

#: Seconds between spool polls while the live progress line is on.
PROGRESS_POLL_SECONDS = 0.2
#: Upper bound on any scheduler wait, so a cancellation request
#: (signal handlers only set a flag) is noticed promptly even when no
#: point completes and no progress line is drawn.
CANCEL_POLL_SECONDS = 0.5
#: Cap on one crash-backoff pause, whatever the exponential says.
MAX_CRASH_BACKOFF_SECONDS = 2.0


def _init_worker() -> None:
    """Reset signal dispositions in pool workers.  Fork-based workers
    inherit the parent's handlers — including the CLI's graceful-cancel
    SIGINT/SIGTERM handler — which would make them *survive* the
    terminates :meth:`SweepRunner._abort_pool` relies on, and echo the
    parent's cancellation notice from every worker.  SIGINT is ignored
    (a terminal Ctrl-C signals the whole foreground process group; only
    the parent should turn it into a graceful cancellation, not a
    broken pool), SIGTERM restored to its default so aborts kill."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)


def _prebuild_programs(points: "list[SweepPoint]") -> None:
    """Warm the shared program cache for every (workload, scale) in the
    sweep, so forked workers inherit one build instead of re-assembling
    per process (spawn-based platforms rebuild once per worker)."""
    from ..workloads import build_program

    for point in points:
        if point.workload is not None:
            build_program(point.workload, point.scale)


class SweepRunner:
    """Executes sweep points with optional parallelism and caching.

    ``jobs=1`` (with ``retries=0``, the default) is byte-for-byte
    today's serial driver path.  ``timeout`` bounds one point's
    execution in seconds: in workers it also bounds how long the engine
    waits for *any* progress, so a hung simulation surfaces as a
    :class:`~repro.errors.RunnerError` instead of a silent stall.
    """

    def __init__(self, jobs: "int | None" = None,
                 cache: "ResultCache | None" = None,
                 registry: "MetricsRegistry | None" = None,
                 timeout: "float | None" = None,
                 retries: int = 0,
                 progress: "bool | None" = False,
                 telemetry: bool = False,
                 journal: "SweepJournal | str | None" = None,
                 chaos=None,
                 worker_death_budget: int = 3,
                 crash_backoff: float = 0.1,
                 backoff_seed: int = 0):
        self.jobs = int(jobs) if jobs else (os.cpu_count() or 1)
        if self.jobs < 1:
            raise RunnerError(f"jobs must be >= 1, got {jobs}")
        self.cache = cache
        self.registry = registry if registry is not None else MetricsRegistry()
        self.timeout = timeout
        self.retries = retries
        #: ``True``/``False`` force the live progress line on/off;
        #: ``None`` auto-detects (on only when stderr is a TTY).
        self.progress = progress
        #: Collect per-point spans and :class:`PointTelemetry` (the raw
        #: material for run manifests and merged Chrome traces).
        self.telemetry = telemetry
        #: Durable progress log (a :class:`SweepJournal`; a path string
        #: starts a fresh journal there, rotating any old one aside).
        self.journal = (SweepJournal.create(journal)
                        if isinstance(journal, (str, os.PathLike))
                        else journal)
        #: Attributed worker deaths a single point may cause before it
        #: is quarantined instead of resubmitted.
        self.worker_death_budget = int(worker_death_budget)
        if self.worker_death_budget < 1:
            raise RunnerError("worker_death_budget must be >= 1")
        #: Base pause after a pool rebuild, doubled per rebuild with
        #: seeded jitter (0 disables the pause; tests use that).
        self.crash_backoff = float(crash_backoff)
        self._crash_rng = random.Random(backoff_seed)
        #: Process-level fault injection
        #: (:class:`repro.faults.chaos.ChaosConfig`); parallel only —
        #: an injected worker exit must kill a *worker*, never the
        #: driver process.
        self.chaos = chaos
        if chaos is not None and getattr(chaos, "enabled", False):
            if self.jobs == 1:
                raise RunnerError(
                    "chaos injection requires jobs > 1 (injected worker "
                    "exits would kill the in-process driver)")
            if cache is not None and cache.fault_injector is None \
                    and getattr(chaos, "cache_error_prob", 0) > 0:
                from ..faults.chaos import ChaosPlan

                cache.fault_injector = ChaosPlan(chaos).fs_injector()
        self._cancel_requested = False
        self._wall_seconds = 0.0
        #: Per-position telemetry across every ``run()`` this runner has
        #: served, in sweep order (``index`` is the global position).
        self.point_telemetry: "list[PointTelemetry]" = []

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------
    def request_cancel(self) -> None:
        """Ask the running sweep to stop at the next scheduler round.

        Signal-safe (only sets a flag): the experiments CLI wires
        SIGINT/SIGTERM here.  The sweep raises
        :class:`~repro.errors.SweepInterruptedError` after cancelling
        outstanding work and journaling an ``interrupted`` record —
        every already-completed point is in the cache and journal, so a
        ``--resume`` run re-executes only the remainder.
        """
        self._cancel_requested = True

    @property
    def cancel_requested(self) -> bool:
        return self._cancel_requested

    def run(self, points) -> "list[object]":
        """Execute every point; results come back in point order."""
        points = list(points)
        registry = self.registry
        journal = self.journal
        journal_base = journal.appended if journal is not None else 0
        registry.counter("runner.points.total").inc(len(points))
        start = time.perf_counter()
        base = len(self.point_telemetry)
        results: "list[object]" = [None] * len(points)
        code = self.cache.code_version if self.cache is not None else ""
        digests = [point_digest(point, code) for point in points]
        if journal is not None:
            journal.append("run-start", points=len(points), jobs=self.jobs)

        # Resolve cache hits and dedup the remainder by digest.
        pending: "dict[str, list[int]]" = {}
        cached_indices: "list[int]" = []
        for index, (point, digest) in enumerate(zip(points, digests)):
            if self.cache is not None:
                hit, value = self.cache.load(point, digest=digest)
                if hit:
                    registry.counter("runner.cache.hit").inc()
                    registry.counter("runner.points.cached").inc()
                    if journal is not None and journal.state.completed(digest):
                        # A resumed sweep replaying finished work from
                        # journal + cache, exactly as designed.
                        registry.counter("runner.journal.replayed").inc()
                    results[index] = value
                    cached_indices.append(index)
                    continue
                registry.counter("runner.cache.miss").inc()
            pending.setdefault(digest, []).append(index)
        duplicates = sum(len(slots) - 1 for slots in pending.values())
        if duplicates:
            registry.counter("runner.points.deduped").inc(duplicates)

        progress = ProgressLine(len(points), enabled=self.progress)
        payloads: "dict[str, dict]" = {}
        try:
            if pending:
                _prebuild_programs([points[slots[0]]
                                    for slots in pending.values()])
                if self.jobs == 1:
                    executed = self._run_serial(points, pending, start,
                                                payloads, progress,
                                                len(cached_indices))
                else:
                    executed = self._run_parallel(points, pending, start,
                                                  payloads, progress,
                                                  len(cached_indices))
                for digest, value in executed.items():
                    for index in pending[digest]:
                        results[index] = value
            elif points:
                progress.update(len(points), len(cached_indices), 0)
        finally:
            progress.finish()
            # Collected even when the sweep raises (interruption,
            # quarantine, timeout): every payload gathered so far
            # becomes a manifest row, which is what makes a partial
            # ``status: interrupted`` manifest possible.
            self._collect_telemetry(points, digests, pending,
                                    cached_indices, payloads, base)
            self._wall_seconds += time.perf_counter() - start
            registry.gauge("runner.wall_seconds").set(self._wall_seconds)
            if journal is not None:
                registry.counter("runner.journal.records").inc(
                    journal.appended - journal_base)
            if self.cache is not None:
                errors = registry.counter("runner.cache.store_errors")
                if self.cache.store_errors > errors.value:
                    errors.inc(self.cache.store_errors - errors.value)
                evictions = registry.counter("runner.cache.evictions")
                if self.cache.evictions > evictions.value:
                    evictions.inc(self.cache.evictions - evictions.value)
        return results

    def _collect_telemetry(self, points, digests, pending, cached_indices,
                           payloads, base) -> None:
        """Append one :class:`PointTelemetry` per sweep position, in
        sweep order — cached positions with zero cost, deduped
        positions sharing the executing position's measurements."""
        rows: "dict[int, PointTelemetry]" = {}
        for index in cached_indices:
            rows[index] = self._telemetry_entry(base, index, points[index],
                                                digests[index], cached=True)
        for digest, slots in pending.items():
            payload = payloads.get(digest)
            if payload is None:
                continue  # failed (the sweep raises) or timed out
            for position, index in enumerate(slots):
                rows[index] = self._telemetry_entry(
                    base, index, points[index], digest,
                    deduped=position > 0,
                    wall=float(payload["wall"]), cpu=float(payload["cpu"]),
                    worker=payload.get("worker"),
                    spans=list(payload.get("spans", ())),
                )
        self.point_telemetry.extend(rows[index] for index in sorted(rows))

    @staticmethod
    def _telemetry_entry(base, index, point, digest, **kwargs):
        return PointTelemetry(
            index=base + index,
            label=point.label or point.kind,
            kind=point.kind,
            workload=point.workload,
            scale=point.scale,
            limit=point.limit,
            digest=digest,
            **kwargs,
        )

    def summary(self) -> str:
        """One-line accounting of everything this runner has done."""
        registry = self.registry
        total = registry.counter("runner.points.total").value
        hits = registry.counter("runner.cache.hit").value
        misses = registry.counter("runner.cache.miss").value
        executed = registry.counter("runner.points.executed").value
        deduped = registry.counter("runner.points.deduped").value
        rate = f"{hits / total:.0%}" if total else "n/a"
        wall = registry.gauge("runner.wall_seconds").value
        line = (f"[runner] jobs={self.jobs} points={total} "
                f"executed={executed} deduped={deduped} "
                f"cache_hits={hits} cache_misses={misses} "
                f"cache_hit_rate={rate} wall={wall:.1f}s")
        rebuilds = registry.counter("runner.pool.rebuilds").value
        quarantined = registry.counter("runner.points.quarantined").value
        if rebuilds or quarantined:
            line += (f" pool_rebuilds={rebuilds} "
                     f"quarantined={quarantined}")
        return line

    # ------------------------------------------------------------------
    # Execution paths.
    # ------------------------------------------------------------------
    def _journal(self, event: str, **fields) -> None:
        if self.journal is not None:
            self.journal.append(event, **fields)

    def _record_done(self, point: SweepPoint, digest: str, value: object,
                     seconds: float, start: float) -> None:
        registry = self.registry
        registry.counter("runner.points.executed").inc()
        registry.histogram("runner.point_seconds").record(seconds)
        registry.series("runner.completed_at").append(
            time.perf_counter() - start)
        stored = False
        if self.cache is not None:
            # Store *before* the journal's done record: "done" in the
            # journal promises the cache can serve this digest, which
            # is what lets a resume replay it without re-executing.
            stored = bool(self.cache.store(point, value, digest=digest))
        self._journal("done", digest=digest,
                      label=point.label or point.kind,
                      seconds=round(seconds, 6), cached=stored)

    def _record_failed(self, point: SweepPoint, digest: str,
                       exc: BaseException) -> None:
        self.registry.counter("runner.points.failed").inc()
        self._journal("failed", digest=digest,
                      label=point.label or point.kind,
                      error=f"{type(exc).__name__}: {exc}")

    def _raise_interrupted(self, executed_count: int,
                           outstanding: int) -> None:
        self._journal("interrupted", outstanding=outstanding,
                      completed=executed_count)
        raise SweepInterruptedError(
            f"sweep cancelled: {executed_count} point(s) completed and "
            f"journaled this run, {outstanding} outstanding — resume "
            f"re-executes only the remainder")

    def _run_serial(self, points, pending, start, payloads,
                    progress, cached) -> "dict[str, object]":
        """In-process execution, in sweep order, failing fast — exactly
        the pre-engine driver behavior at ``retries=0`` with telemetry
        off (``recording(None)`` is a no-op scope)."""
        executed: "dict[str, object]" = {}
        done_positions = cached
        slowest: "tuple[str, float] | None" = None
        for digest, slots in pending.items():
            if self._cancel_requested:
                self._raise_interrupted(len(executed),
                                        len(pending) - len(executed))
            point = points[slots[0]]
            self._journal("submit", digest=digest,
                          label=point.label or point.kind)
            attempts = 0
            while True:
                try:
                    recorder = spans.SpanRecorder() if self.telemetry else None
                    tick = time.perf_counter()
                    ctick = time.process_time()
                    with spans.recording(recorder):
                        value = execute_point(point)
                    seconds = time.perf_counter() - tick
                    break
                except Exception as exc:
                    attempts += 1
                    if attempts > self.retries:
                        self._record_failed(point, digest, exc)
                        raise
                    self.registry.counter("runner.points.retried").inc()
            executed[digest] = value
            payloads[digest] = {
                "label": point.label or point.kind,
                "wall": seconds,
                "cpu": time.process_time() - ctick,
                "worker": None,
                "spans": spans.records_as_dicts(recorder),
            }
            self._record_done(point, digest, value, seconds, start)
            done_positions += len(slots)
            if slowest is None or seconds > slowest[1]:
                slowest = (point.label or point.kind, seconds)
            progress.update(done_positions, cached, 0, slowest,
                            executed=len(executed),
                            remaining=len(pending) - len(executed))
        return executed

    def _run_parallel(self, points, pending, start, payloads,
                      progress, cached) -> "dict[str, object]":
        """Process-pool execution with per-point retry, worker-loss
        recovery, and a progress timeout; the sweep always drains, then
        the earliest failure by point order (if any) is re-raised.

        Submission is windowed (at most ``jobs`` digests in flight), so
        when a worker death breaks the pool the suspect set is small.
        Suspects are re-executed one at a time on the rebuilt pool —
        a crash with exactly one point in flight attributes the death
        to that point precisely — and a point that exhausts its
        ``worker_death_budget`` is quarantined as a typed failure while
        everything else continues.

        Workers spool start/done/error records into a per-worker JSONL
        file (when telemetry or the progress line is on); the parent
        polls it between scheduler rounds to keep the progress line
        live while futures are still in flight.  Authoritative results
        and span payloads travel in-band through the futures, so spool
        polling can never change what the sweep returns.
        """
        registry = self.registry
        order = {digest: slots[0] for digest, slots in pending.items()}
        executed: "dict[str, object]" = {}
        failures: "dict[str, BaseException]" = {}
        failed_after: "dict[str, float]" = {}
        attempts: "dict[str, int]" = {digest: 0 for digest in pending}
        deaths: "dict[str, int]" = {digest: 0 for digest in pending}
        tries: "dict[str, int]" = {digest: 0 for digest in pending}
        workers = min(self.jobs, len(pending))
        use_spool = self.telemetry or progress.enabled
        spool_dir = (tempfile.mkdtemp(prefix="repro-sweep-spool-")
                     if use_spool else None)
        reader = TelemetryReader(spool_dir) if spool_dir else None
        # Wake at a bounded cadence: the point timeout is declared on
        # elapsed time since the last completion (plain-wait semantics
        # preserved exactly); sub-timeout wakeups only poll the spool
        # and the cancellation flag.
        bounds = [CANCEL_POLL_SECONDS]
        if self.timeout is not None:
            bounds.append(self.timeout)
        if progress.enabled:
            bounds.append(PROGRESS_POLL_SECONDS)
        wait_timeout = min(bounds)
        slowest: "tuple[str, float] | None" = None
        submitted: "dict[str, float]" = {}
        #: Digests awaiting first submission, in sweep order.
        queue = deque(sorted(pending, key=order.__getitem__))
        #: Digests in flight at a pool break; re-executed serially.
        suspects: "deque[str]" = deque()
        futures: "dict[object, str]" = {}
        pool = ProcessPoolExecutor(max_workers=workers,
                                   initializer=_init_worker)
        rebuilds = 0
        harvesting: "str | None" = None
        submitting: "str | None" = None

        def outstanding() -> int:
            return len(futures) + len(queue) + len(suspects)

        def submit(digest: str):
            point = points[order[digest]]
            if tries[digest] == 0:
                self._journal("submit", digest=digest,
                              label=point.label or point.kind)
            submitted[digest] = time.perf_counter()
            future = pool.submit(execute_point_task, point, spool_dir,
                                 self.telemetry, chaos=self.chaos,
                                 digest=digest, attempt=tries[digest])
            tries[digest] += 1
            return future

        def show_progress() -> None:
            if reader is not None:
                reader.poll()  # advance offsets; display only
            done_positions = cached + sum(
                len(pending[digest]) for digest in executed)
            progress.update(done_positions, cached, len(futures), slowest,
                            executed=len(executed),
                            remaining=len(pending) - len(executed))

        def handle_failure(digest: str, exc: BaseException,
                           now: float) -> None:
            attempts[digest] += 1
            if attempts[digest] <= self.retries:
                registry.counter("runner.points.retried").inc()
                futures[submit(digest)] = digest
                return
            self._record_failed(points[order[digest]], digest, exc)
            failures[digest] = exc
            failed_after[digest] = now - submitted.get(digest, now)

        def harvest(future, digest: str, now: float) -> None:
            """Consume one completed future.  Raises BrokenProcessPool
            upward — worker loss is recovery, not point failure."""
            nonlocal slowest
            point = points[order[digest]]
            try:
                value, payload = future.result()
            except BrokenProcessPool:
                raise
            except Exception as exc:
                handle_failure(digest, exc, now)
                return
            executed[digest] = value
            payloads[digest] = payload
            seconds = float(payload["wall"])
            if slowest is None or seconds > slowest[1]:
                slowest = (point.label or point.kind, seconds)
            self._record_done(point, digest, value, seconds, start)

        def quarantine(digest: str, now: float) -> None:
            point = points[order[digest]]
            registry.counter("runner.points.quarantined").inc()
            registry.counter("runner.points.failed").inc()
            exc = PointQuarantinedError(
                f"{point.label or point.kind} (kind={point.kind}) killed "
                f"{deaths[digest]} worker process(es); quarantined after "
                f"exhausting worker_death_budget={self.worker_death_budget}")
            failures[digest] = exc
            failed_after[digest] = now - submitted.get(digest, now)
            self._journal("quarantined", digest=digest,
                          label=point.label or point.kind,
                          deaths=deaths[digest])

        def on_broken_pool() -> None:
            """Rebuild after a worker death and line up the in-flight
            digests for serial re-execution with precise blame."""
            nonlocal pool, rebuilds, harvesting, submitting
            rebuilds += 1
            registry.counter("runner.pool.rebuilds").inc()
            crashed: "list[str]" = []
            if harvesting is not None:
                crashed.append(harvesting)
            if submitting is not None and submitting not in futures.values():
                # The submit call itself hit the broken pool; the
                # digest never entered flight, so it is no suspect.
                queue.appendleft(submitting)
            # Salvage futures that finished *before* the break — their
            # results are intact and must not be re-executed.
            for future, digest in list(futures.items()):
                future.cancel()
                if future.done() and not future.cancelled():
                    try:
                        harvest(future, digest, time.perf_counter())
                        continue
                    except BrokenProcessPool:
                        pass
                crashed.append(digest)
            futures.clear()
            harvesting = submitting = None
            if len(crashed) == 1:
                # Exactly one point was in flight: the death is its.
                deaths[crashed[0]] += 1
            for digest in sorted(set(crashed), key=order.__getitem__):
                if digest not in suspects:
                    suspects.append(digest)
            self._abort_pool(pool)
            self._crash_pause(rebuilds)
            pool = ProcessPoolExecutor(max_workers=workers,
                                       initializer=_init_worker)

        last_completion = time.perf_counter()
        try:
            show_progress()
            while outstanding():
                if self._cancel_requested:
                    for future in futures:
                        future.cancel()
                    self._raise_interrupted(len(executed), outstanding())
                try:
                    # Submission phase: suspects run strictly one at a
                    # time (so a repeat crash is attributable); the
                    # normal queue keeps a bounded window in flight.
                    if suspects:
                        if not futures:
                            digest = suspects.popleft()
                            if deaths[digest] >= self.worker_death_budget:
                                quarantine(digest, time.perf_counter())
                                continue
                            submitting = digest
                            futures[submit(digest)] = digest
                            submitting = None
                    else:
                        while queue and len(futures) < workers:
                            digest = queue[0]
                            submitting = digest
                            futures[submit(digest)] = digest
                            submitting = None
                            queue.popleft()
                    if not futures:
                        continue
                    done, _ = wait(futures, timeout=wait_timeout,
                                   return_when=FIRST_COMPLETED)
                    now = time.perf_counter()
                    if not done:
                        if (self.timeout is not None
                                and now - last_completion >= self.timeout):
                            for future in futures:
                                future.cancel()
                            raise PointTimeoutError(
                                f"no sweep point completed within "
                                f"{self.timeout}s ({outstanding()} "
                                f"outstanding; first by sweep order: "
                                f"{self._describe(points, pending, futures, submitted)})"
                            )
                        show_progress()
                        continue
                    last_completion = now
                    for future in done:
                        digest = futures.pop(future)
                        harvesting = digest
                        harvest(future, digest, now)
                        harvesting = None
                    show_progress()
                except BrokenProcessPool:
                    on_broken_pool()
                    # The rebuild (and its backoff pause) is progress;
                    # don't let it eat into the point timeout.
                    last_completion = time.perf_counter()
        finally:
            self._abort_pool(pool)
            if reader is not None:
                reader.close()
            if spool_dir is not None:
                shutil.rmtree(spool_dir, ignore_errors=True)
        if failures:
            digest = min(failures, key=order.__getitem__)
            point = points[order[digest]]
            raise RunnerError(
                f"{len(failures)} sweep point(s) failed; first by sweep "
                f"order: {point.label or point.kind} (kind={point.kind}, "
                f"failed after {failed_after[digest]:.1f}s, "
                f"{attempts[digest]} attempt(s))"
            ) from failures[digest]
        return executed

    def _crash_pause(self, rebuilds: int) -> None:
        """Deterministic seeded exponential backoff between pool
        rebuilds: base * 2^(n-1), jittered by the seeded RNG, capped.
        Gives transient resource pressure (the usual OOM-kill cause)
        room to clear before work is resubmitted."""
        if self.crash_backoff <= 0:
            return
        delay = min(MAX_CRASH_BACKOFF_SECONDS,
                    self.crash_backoff * (2 ** (rebuilds - 1)))
        time.sleep(delay * (0.5 + self._crash_rng.random()))

    @staticmethod
    def _abort_pool(pool) -> None:
        """Tear a pool down without joining its tasks.  ``cancel()``
        cannot stop a *running* task, and the pool's blocking shutdown
        would join it — a hung simulation would block the timeout error
        itself — so remaining workers are terminated outright (idle
        workers on the normal path just exit a little sooner)."""
        processes = list((getattr(pool, "_processes", None) or {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            process.terminate()

    @staticmethod
    def _describe(points, pending, futures, submitted) -> str:
        """Outstanding points at timeout, earliest sweep position
        first: ``label (kind, 12.3s since submit)``, up to three."""
        now = time.perf_counter()
        outstanding = sorted(futures.values(),
                             key=lambda digest: pending[digest][0])
        parts = []
        for digest in outstanding[:3]:
            point = points[pending[digest][0]]
            elapsed = now - submitted.get(digest, now)
            parts.append(f"{point.label or point.kind} "
                         f"({point.kind}, {elapsed:.1f}s since submit)")
        if len(outstanding) > 3:
            parts.append("...")
        return ", ".join(parts)


# ----------------------------------------------------------------------
# The process-wide default runner experiment drivers fall back to.
# ----------------------------------------------------------------------
_default_runner: "SweepRunner | None" = None


def get_default_runner() -> SweepRunner:
    """The runner drivers use when none is passed explicitly: serial,
    uncached, in-process — today's behavior — unless the CLI (or a
    caller) installed something richer via :func:`set_default_runner`."""
    global _default_runner
    if _default_runner is None:
        _default_runner = SweepRunner(jobs=1)
    return _default_runner


def set_default_runner(runner: "SweepRunner | None") -> "SweepRunner | None":
    """Install (or, with ``None``, reset) the process default; returns
    the previous default so callers can restore it."""
    global _default_runner
    previous = _default_runner
    _default_runner = runner
    return previous


@contextlib.contextmanager
def using_runner(runner: SweepRunner):
    """Scope a default runner to a ``with`` block."""
    previous = set_default_runner(runner)
    try:
        yield runner
    finally:
        set_default_runner(previous)
