"""Executor registry: how each kind of sweep point actually runs.

:func:`execute_point` is the single entry point the engine calls — in
process at ``jobs=1``, and as the picklable task function shipped to
``ProcessPoolExecutor`` workers at ``jobs>1``.  Executors are pure
functions of their point: same point, same result, whichever process
runs it — the property the bit-identity tests pin down and the content
cache relies on.

Experiment modules are imported lazily inside each executor so the
runner package stays importable on its own (``repro.experiments``
imports ``repro.runner``, not the other way around at module scope).
"""

from __future__ import annotations

from ..errors import ReproError
from ..obs.spans import span
from .point import SweepPoint

#: kind -> callable(point) -> result.
EXECUTORS: "dict[str, object]" = {}


def executor(kind: str):
    """Register a point executor under ``kind``."""

    def register(fn):
        EXECUTORS[kind] = fn
        return fn

    return register


def execute_point(point: SweepPoint) -> object:
    """Run one point to completion and return its (picklable) result.

    When a :class:`repro.obs.spans.SpanRecorder` is active (sweep
    telemetry), the whole execution runs under a root ``point`` span so
    the per-point phase breakdown — program build, codegen compile,
    functional front end, timing loop, fault recovery, analysis — hangs
    off one well-known root.  Disabled, the span is a shared no-op.
    """
    fn = EXECUTORS.get(point.kind)
    if fn is None:
        known = ", ".join(sorted(EXECUTORS))
        raise ReproError(
            f"unknown sweep-point kind {point.kind!r}; known: {known}"
        )
    with span("point"):
        return fn(point)


def _program(point: SweepPoint):
    from ..workloads import build_program

    return build_program(point.workload, point.scale)


def _engine_config(point: SweepPoint):
    """The point's :class:`~repro.params.SystemConfig`, with an
    ``engine`` knob (the ``--engine`` CLI flag / sweep A-B switch)
    folded in.  The knob is digest-visible either way — as a knob and,
    once folded, as a config field."""
    engine = point.knob("engine")
    if engine is None:
        return point.config
    import dataclasses

    return dataclasses.replace(point.config, engine=engine)


@executor("datascalar")
def _run_datascalar(point: SweepPoint):
    """A full DataScalar timing run (``config``:
    :class:`~repro.params.SystemConfig` — fault injection included when
    the config carries a :class:`~repro.params.FaultConfig`; knob
    ``engine`` overrides the config's functional front end)."""
    from ..core.system import DataScalarSystem

    return DataScalarSystem(_engine_config(point)).run(_program(point),
                                                       limit=point.limit)


@executor("datascalar-shard")
def _run_datascalar_shard(point: SweepPoint):
    """One checkpoint-delimited segment of a long DataScalar run
    (fanned out by :class:`repro.runner.sharded.ShardedRun`; knobs:
    ``shard``, ``start``, ``stop``, ``start_digest``, ``cache_root``,
    ``cache_code_version``).

    Resumes the cached checkpoint at ``start`` (shard 0 starts fresh)
    and either runs to completion (``stop`` is ``None`` — the final
    shard, whose cumulative result IS the run's result) or stops at the
    ``stop`` boundary and returns a :class:`~repro.runner.sharded.
    ShardEnd` for stitch verification."""
    from ..core.system import DataScalarSystem
    from .cache import ResultCache
    from .sharded import ShardEnd

    cache = ResultCache(point.knob("cache_root"),
                        code_version=point.knob("cache_code_version", ""))
    resume = None
    start_digest = point.knob("start_digest")
    if start_digest is not None:
        hit, resume = cache.load(point, digest=start_digest)
        if not hit:
            raise ReproError(
                f"shard {point.knob('shard')} start checkpoint vanished "
                f"from the cache between probe and execution (evicted or "
                f"deleted concurrently) — rerun to repopulate")
    system = DataScalarSystem(_engine_config(point))
    program = _program(point)
    stop = point.knob("stop")
    if stop is None:
        return system.run(program, limit=point.limit, resume_from=resume)
    captured = []
    system.run(program, limit=point.limit, resume_from=resume,
               stop_after=stop, checkpoint_sink=captured.append)
    end = captured[-1]
    return ShardEnd(boundary=stop, cycle=end.cycle,
                    committed=end.committed, summary=end.summary())


@executor("traditional")
def _run_traditional(point: SweepPoint):
    """The matched traditional baseline (``config``:
    :class:`~repro.params.TraditionalConfig`)."""
    from ..baseline.traditional import TraditionalSystem

    return TraditionalSystem(point.config).run(_program(point),
                                               limit=point.limit)


@executor("perfect")
def _run_perfect(point: SweepPoint):
    """The perfect-data-cache upper bound (``config``:
    :class:`~repro.params.CPUConfig`)."""
    from ..baseline.perfect import PerfectSystem

    return PerfectSystem(point.config).run(_program(point),
                                           limit=point.limit)


@executor("esp-traffic")
def _run_esp_traffic(point: SweepPoint):
    """Table 1's trace-level traffic filter (``config``: the
    measurement :class:`~repro.params.CacheConfig`; knob ``engine``
    selects the functional front end)."""
    from ..analysis.traffic import measure_esp_traffic

    return measure_esp_traffic(_program(point), cache_config=point.config,
                               limit=point.limit,
                               engine=point.knob("engine", "auto"))


@executor("datathread")
def _run_datathread(point: SweepPoint):
    """Table 2's replication-plan + datathread measurement (knobs:
    ``num_nodes``, ``budget_pages``, ``page_size``)."""
    from ..experiments.table2 import measure_datathreads

    return measure_datathreads(
        point.workload,
        scale=point.scale,
        num_nodes=point.knob("num_nodes", 4),
        budget_pages=point.knob("budget_pages", 6),
        page_size=point.knob("page_size", 1024),
        limit=point.limit,
    )


@executor("figure3")
def _run_figure3(point: SweepPoint):
    """Figure 3's pointer-chase microbenchmark on either system —
    dispatched on the config's type (knobs: ``hops``; ``engine`` for
    the DataScalar side)."""
    from ..baseline.traditional import TraditionalSystem
    from ..core.system import DataScalarSystem
    from ..experiments.figure3 import _chain_program
    from ..params import TraditionalConfig

    program = _chain_program(hops=point.knob("hops", 64))
    if isinstance(point.config, TraditionalConfig):
        system = TraditionalSystem(point.config)
    else:
        system = DataScalarSystem(_engine_config(point))
    return system.run(program, limit=point.limit)


@executor("esp-schedule")
def _run_esp_schedule(point: SweepPoint):
    """Figure 1's analytic ESP schedules (knobs:
    ``broadcast_latency``, ``lead_change_penalty``)."""
    from ..experiments.figure1 import compute_figure1

    return compute_figure1(
        broadcast_latency=point.knob("broadcast_latency", 1),
        lead_change_penalty=point.knob("lead_change_penalty", 3),
    )
