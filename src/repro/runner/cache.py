"""Content-addressed on-disk result cache.

Layout: one pickle per completed point at
``<root>/<digest[:2]>/<digest>.pkl``, where the digest is
:func:`repro.runner.digest.point_digest` over the point, the cache's
code-version stamp, and the generated-code template stamp
(:data:`repro.isa.codegen.CODEGEN_VERSION` — so interpreter-run and
codegen-run points, and results from different codegen templates, key
disjoint entries even under a pinned ``REPRO_CODE_VERSION``).  Entries
carry their own digest so a truncated,
corrupted, or misfiled pickle is detected on load, deleted, and
silently recomputed — the cache can only ever cost a recompute, never
serve a wrong result.

Writes are atomic (temp file + ``os.replace``), so concurrent sweep
workers and concurrent sweeps sharing one cache directory never
observe half-written entries.

Stores are best-effort: an ``OSError`` (disk full, permission,
read-only filesystem) disables further stores for the rest of this
cache's lifetime — one warning line on stderr, a ``store_errors``
count the engine surfaces as ``runner.cache.store_errors`` — instead
of failing the sweep point whose *simulation already succeeded*.
Loads keep working; a degraded cache can only miss, never lie.  The
``fault_injector`` hook lets the chaos harness
(:class:`repro.faults.chaos.ChaosPlan`) drive that degrade path with
injected ``ENOSPC`` faults.
"""

from __future__ import annotations

import os
import pathlib
import pickle
import sys

from .digest import code_version as current_code_version
from .digest import point_digest
from .point import SweepPoint


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro-sweeps``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return override
    return str(pathlib.Path.home() / ".cache" / "repro-sweeps")


class ResultCache:
    """Digest-keyed store of completed sweep-point results."""

    def __init__(self, root: "str | os.PathLike",
                 code_version: "str | None" = None,
                 fault_injector=None,
                 max_bytes: "int | None" = None):
        self.root = pathlib.Path(root)
        #: Stamp mixed into every digest; a different stamp (new code)
        #: addresses a disjoint keyspace, so stale entries can never be
        #: served — they are simply never looked up again.
        self.code_version = (code_version if code_version is not None
                             else current_code_version())
        #: Disk budget for the whole cache directory; least-recently-
        #: used entries are evicted after each store to stay under it.
        #: ``None`` (and unset ``REPRO_CACHE_MAX_BYTES``) = unbounded,
        #: the historical behavior.  Checkpoint blobs are orders of
        #: magnitude bigger than result pickles, so warm-start caching
        #: makes a budget worth setting.
        if max_bytes is None:
            env = os.environ.get("REPRO_CACHE_MAX_BYTES", "")
            if env:
                try:
                    max_bytes = int(env)
                except ValueError:
                    max_bytes = None
        self.max_bytes = max_bytes
        self.evictions = 0
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        #: ``OSError``-failed stores; the first one disables the rest.
        self.store_errors = 0
        self.store_disabled = False
        #: Chaos hook: ``callable(op, digest)`` invoked inside
        #: :meth:`store`'s hardened region; raising ``OSError`` from it
        #: exercises the real degrade path (see
        #: :meth:`repro.faults.chaos.ChaosPlan.fs_injector`).
        self.fault_injector = fault_injector

    def digest_for(self, point: SweepPoint) -> str:
        return point_digest(point, self.code_version)

    def _path(self, digest: str) -> pathlib.Path:
        return self.root / digest[:2] / f"{digest}.pkl"

    def load(self, point: SweepPoint,
             digest: "str | None" = None) -> "tuple[bool, object]":
        """``(True, result)`` on a hit; ``(False, None)`` on a miss.

        A corrupted entry (unpicklable, truncated, or digest-mismatched)
        counts as a miss, is deleted, and will be recomputed and
        re-stored by the engine.
        """
        digest = digest or self.digest_for(point)
        path = self._path(digest)
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
            if not isinstance(entry, dict) or entry.get("digest") != digest:
                raise ValueError("cache entry digest mismatch")
            result = entry["result"]
        except FileNotFoundError:
            self.misses += 1
            return False, None
        except Exception:
            self.corrupt += 1
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return False, None
        try:
            # Touch for LRU: eviction orders by mtime, so a hit marks
            # the entry recently used.
            os.utime(path)
        except OSError:
            pass
        self.hits += 1
        return True, result

    def store(self, point: SweepPoint, result: object,
              digest: "str | None" = None) -> bool:
        """Persist one completed point atomically; ``True`` on success.

        An ``OSError`` anywhere in the write path (disk full, quota,
        permissions) degrades the cache to store-off for the rest of
        this run instead of crashing a point whose simulation already
        succeeded: ``store_errors`` counts the failure, one warning
        line lands on stderr, and every later :meth:`store` is a cheap
        no-op returning ``False``.  Loads are unaffected.
        """
        digest = digest or self.digest_for(point)
        if self.store_disabled:
            return False
        path = self._path(digest)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            if self.fault_injector is not None:
                self.fault_injector("store", digest)
            path.parent.mkdir(parents=True, exist_ok=True)
            entry = {
                "digest": digest,
                "kind": point.kind,
                "workload": point.workload,
                "label": point.label,
                "result": result,
            }
            with open(tmp, "wb") as handle:
                pickle.dump(entry, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError as exc:
            self._note_store_error(exc)
            return False
        finally:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
        self.stores += 1
        if self.max_bytes is not None:
            self._prune(path)
        return True

    def _prune(self, keep: pathlib.Path) -> None:
        """Evict least-recently-used entries until the directory fits
        ``max_bytes`` again (the just-stored entry is never evicted).

        Deletion is per-file-atomic: a concurrent loader either reads a
        complete entry or gets ``FileNotFoundError`` (a plain miss) —
        never a partial file.  An entry that vanishes mid-prune
        (another sweep's eviction, manual cleanup) is skipped without
        being counted; any other ``OSError`` likewise only skips that
        entry, so pruning can never fail a sweep."""
        entries = []
        total = 0
        try:
            for path in self.root.glob("*/*.pkl"):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries.append((stat.st_mtime, stat.st_size, path))
                total += stat.st_size
        except OSError:
            return
        if total <= self.max_bytes:
            return
        entries.sort(key=lambda item: item[:2])
        for _, size, path in entries:
            if total <= self.max_bytes:
                break
            if path == keep:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            self.evictions += 1

    def _note_store_error(self, exc: OSError) -> None:
        self.store_errors += 1
        if not self.store_disabled:
            self.store_disabled = True
            print(f"[cache] store failed ({exc}); result caching "
                  f"disabled for the rest of this run — completed "
                  f"points still return normally", file=sys.stderr)
