"""Intra-run sharding: one long simulation across all the cores.

A sweep keeps every core busy only while it has more points than the
pool has workers; a single long-horizon run serializes on one core no
matter how many are idle.  :class:`ShardedRun` splits such a run at
committed-instruction boundaries using :mod:`repro.checkpoint`:

* **Cold** (first run of a point): checkpoints for the shard boundaries
  do not exist yet, and shard ``i+1`` cannot start before shard ``i``
  has produced its end state — so the run executes serially once,
  emitting a checkpoint at every boundary into the content-addressed
  :class:`~repro.runner.cache.ResultCache`
  (:func:`~repro.runner.digest.checkpoint_digest`: program + config +
  boundary + code/codegen/checkpoint-format stamps), and returns its
  result directly.
* **Warm** (every rerun): all interior start checkpoints hit the cache,
  so the shards resume *in parallel* across the existing
  :class:`~repro.runner.SweepRunner` process pool.  The final shard
  runs from the last boundary to completion and its
  result — cumulative state carried through the checkpoint — IS the
  run's result, bit-identical to a straight-through run by
  construction.  Every interior shard re-derives its end state and the
  stitcher verifies it against the cached next checkpoint's
  deterministic :meth:`~repro.checkpoint.Checkpoint.summary`, so a
  stale or foreign cache entry fails loudly instead of producing a
  silently wrong figure.

The same cache serves SimPoint-style warm starts: a rerun that only
wants the detailed region resumes the nearest cached boundary and pays
only the remainder (``DataScalarSystem.run(resume_from=...)``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import RunnerError
from ..obs import spans
from ..obs.metrics import MetricsRegistry
from .cache import ResultCache, default_cache_dir
from .digest import checkpoint_digest
from .point import SweepPoint


@dataclass
class ShardEnd:
    """What an interior shard returns: its end-of-shard position and
    the deterministic summary the stitcher checks against the cached
    checkpoint at the same boundary."""

    boundary: int
    cycle: int
    committed: int
    summary: tuple


class ShardedRun:
    """Run one DataScalar point as ``shards`` checkpoint-delimited
    segments over the sweep process pool (see the module docstring for
    the cold/warm protocol)."""

    def __init__(self, shards: int, cache: "ResultCache | None" = None,
                 jobs: "int | None" = None,
                 registry: "MetricsRegistry | None" = None,
                 progress: bool = False):
        if shards < 1:
            raise RunnerError("ShardedRun needs at least one shard")
        self.shards = shards
        self.cache = cache if cache is not None \
            else ResultCache(default_cache_dir())
        self.jobs = jobs
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.progress = progress
        #: Set by :meth:`run`: whether the last run resumed cached
        #: checkpoints (warm) or populated them (cold).
        self.last_warm = False
        self.last_boundaries: "list[int]" = []

    def run(self, workload: str, *, scale: int = 1, limit: int,
            config, label: str = "") -> object:
        """Execute the point and return its
        :class:`~repro.core.system.DataScalarResult` — bit-identical
        whether this run went cold (serial) or warm (parallel shards).

        ``limit`` is mandatory: shard boundaries are committed-
        instruction counts, so the horizon must be known up front.  A
        ``limit`` longer than the program still works but leaves the
        tail boundaries unreachable — every run stays cold (correct,
        just unsharded)."""
        if limit is None or limit < 1:
            raise RunnerError("sharded runs need an explicit limit >= 1")
        base = SweepPoint.make("datascalar", workload, scale=scale,
                               limit=limit, config=config, label=label)
        every = -(-limit // self.shards)  # ceil: last shard is smallest
        boundaries = [n * every for n in range(1, self.shards)
                      if n * every < limit]
        self.last_boundaries = boundaries
        digests = {
            boundary: checkpoint_digest(base, boundary,
                                        self.cache.code_version)
            for boundary in boundaries
        }
        counters = self.registry
        counters.counter("runner.checkpoint.shards").inc(
            len(boundaries) + 1)

        starts = []
        warm = bool(boundaries)
        for boundary in boundaries:
            hit, ckpt = self.cache.load(base, digest=digests[boundary])
            if not hit:
                warm = False
                counters.counter("runner.checkpoint.misses").inc(
                    len(boundaries) - len(starts))
                break
            starts.append(ckpt)
        if warm:
            counters.counter("runner.checkpoint.hits").inc(len(starts))
            return self._run_warm(base, boundaries, digests, starts)
        return self._run_cold(base, boundaries, digests)

    # ------------------------------------------------------------------
    # Cold: one serial run populates the checkpoint cache.
    # ------------------------------------------------------------------
    def _run_cold(self, base: SweepPoint, boundaries, digests) -> object:
        from ..core.system import DataScalarSystem
        from ..workloads import build_program

        wanted = dict(digests)
        saves = 0

        def sink(ckpt) -> None:
            nonlocal saves
            digest = wanted.get(ckpt.meta["boundary"])
            if digest is not None \
                    and self.cache.store(base, ckpt, digest=digest):
                saves += 1

        system = DataScalarSystem(base.config)
        program = build_program(base.workload, base.scale)
        with spans.span("sharded-cold"):
            if boundaries:
                every = boundaries[0]
                result = system.run(program, limit=base.limit,
                                    checkpoint_every=every,
                                    checkpoint_sink=sink)
            else:
                result = system.run(program, limit=base.limit)
        self.registry.counter("runner.checkpoint.saves").inc(saves)
        self.last_warm = False
        return result

    # ------------------------------------------------------------------
    # Warm: every shard resumes a cached checkpoint, in parallel.
    # ------------------------------------------------------------------
    def _run_warm(self, base: SweepPoint, boundaries, digests,
                  starts) -> object:
        from .engine import SweepRunner

        points = []
        num_shards = len(boundaries) + 1
        for shard in range(num_shards):
            start = boundaries[shard - 1] if shard else 0
            stop = boundaries[shard] if shard < len(boundaries) else None
            points.append(SweepPoint.make(
                "datascalar-shard", base.workload, scale=base.scale,
                limit=base.limit, config=base.config,
                label=f"{base.label or base.workload}#shard{shard}",
                shard=shard, start=start, stop=stop,
                start_digest=digests[start] if shard else None,
                cache_root=str(self.cache.root),
                cache_code_version=self.cache.code_version,
            ))
        jobs = self.jobs if self.jobs is not None else num_shards
        runner = SweepRunner(jobs=min(jobs, num_shards), cache=None,
                             registry=self.registry,
                             progress=self.progress)
        with spans.span("sharded-warm"):
            results = runner.run(points)
        for shard, end in enumerate(results[:-1]):
            expected = starts[shard].summary()
            if not isinstance(end, ShardEnd) \
                    or end.summary != expected:
                raise RunnerError(
                    f"shard {shard} of {base.workload} ended in a state "
                    f"that does not match the cached checkpoint at "
                    f"boundary {boundaries[shard]} — stale or foreign "
                    f"cache entry; clear it and rerun cold")
        self.last_warm = True
        return results[-1]
