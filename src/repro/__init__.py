"""DataScalar Architectures (Burger, Kaxiras & Goodman, ISCA 1997) —
a full-system reproduction in pure Python.

Public API tour:

* :mod:`repro.isa` — the simulated RISC ISA, builder DSL, assembler, and
  functional interpreter.
* :mod:`repro.memory` — caches, MSHRs, banked memory, page tables, and
  the replicated/communicated address-space layout.
* :mod:`repro.interconnect` — the global broadcast bus, a ring, queues.
* :mod:`repro.cpu` — the 8-wide out-of-order core (RUU, LSQ, FUs).
* :mod:`repro.core` — the DataScalar execution model: asynchronous ESP,
  BSHRs, the DCUB, cache correspondence, datathread analysis, the
  synchronous Massive Memory Machine, and the multi-node system.
* :mod:`repro.baseline` — the traditional request/response system and
  the perfect-cache upper bound.
* :mod:`repro.workloads` — fifteen SPEC95-like kernels.
* :mod:`repro.experiments` — drivers regenerating every table and figure.
"""

from .baseline import PerfectSystem, TraditionalSystem
from .core import DataScalarSystem, MassiveMemoryMachine
from .params import (
    BSHRConfig,
    BusConfig,
    CacheConfig,
    CPUConfig,
    MemoryConfig,
    NodeConfig,
    SystemConfig,
    TraditionalConfig,
)
from .workloads import WORKLOADS, build_program, get_workload

__version__ = "1.0.0"

__all__ = [
    "PerfectSystem",
    "TraditionalSystem",
    "DataScalarSystem",
    "MassiveMemoryMachine",
    "BSHRConfig",
    "BusConfig",
    "CacheConfig",
    "CPUConfig",
    "MemoryConfig",
    "NodeConfig",
    "SystemConfig",
    "TraditionalConfig",
    "WORKLOADS",
    "build_program",
    "get_workload",
    "__version__",
]
