"""Seeded fault injection and recovery for the ESP broadcast transport.

The paper's ESP discipline is request-free: a consumer allocates a BSHR
entry and *trusts* the owner's broadcast.  This package lets the
transport break that trust — deterministically, from a recorded seed —
and supplies the recovery protocol (sequence numbers, NACKs, a
recovery-only retransmit-request slow path with bounded backoff) that
turns every injected fault into either an identical architectural result
or a typed error.  See ``docs/protocol.md`` ("Failure model and
recovery") for the full discipline.

Configuration lives in :class:`repro.params.FaultConfig`; set
``SystemConfig.faults`` to arm the layer.

One layer up, :mod:`repro.faults.chaos` applies the same discipline to
the *sweep-runner process layer*: a seeded :class:`ChaosPlan` injects
worker deaths, delays, transient I/O errors, and simulated disk-full
into sweep execution (``SweepRunner(chaos=ChaosConfig(...))``), with
the matching invariant — sufficient recovery budget means bit-identical
results, exceeded budget means a typed error, never a hang.
"""

from ..params import FaultConfig
from .chaos import ChaosConfig, ChaosPlan, PointChaos
from .medium import FaultyMedium
from .plan import BroadcastFault, FaultPlan
from .stats import FaultStats, RecoveryStats

__all__ = [
    "BroadcastFault",
    "ChaosConfig",
    "ChaosPlan",
    "FaultConfig",
    "FaultPlan",
    "FaultStats",
    "FaultyMedium",
    "PointChaos",
    "RecoveryStats",
]
