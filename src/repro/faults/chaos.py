"""Seeded process-level fault injection for the sweep runner.

:class:`ChaosPlan` is to the *sweep-runner process layer* what
:class:`~repro.faults.plan.FaultPlan` is to the broadcast medium: a
deterministic, seeded schedule of faults, with the same recovery
invariant one layer up — chaos on plus a sufficient recovery budget
produces results **bit-identical** to a chaos-free sweep; chaos beyond
the budget produces a typed error, never a hang or a silent partial
sweep (regression-tested in ``tests/test_chaos.py``).

Where :class:`FaultPlan` draws per broadcast in broadcast order,
:class:`ChaosPlan` must stay deterministic across *processes and
schedules*: worker assignment, completion order, and pool rebuilds all
vary run to run.  Decisions are therefore keyed on
``(seed, point digest, attempt)`` — each injection site derives a
private :class:`random.Random` from exactly that triple, so the same
sweep under the same seed always suffers the same faults no matter
which worker executes which point when.

The fault budget makes the invariant crisp instead of probabilistic:
attempts ``0 .. faults_budget-1`` of a point may fault; attempt
``faults_budget`` and later never do.  A worker-exit fault is
recovered by the engine's pool-rebuild path (so it needs
``worker_death_budget > faults_budget``); a transient ``OSError``
fault is recovered by the retry path (``retries >= faults_budget``).

Injection sites:

* **worker exit** — ``os._exit(exit_code)`` mid-point inside the
  worker (:func:`repro.runner.telemetry.execute_point_task`), the
  closest stand-in for an OOM kill or a segfault;
* **delay** — a bounded ``time.sleep`` before the point executes,
  stressing timeout/progress bookkeeping without changing results;
* **transient OSError** — raised from the worker task before the
  point runs (a spool/serialization I/O failure); surfaces as an
  ordinary point failure and is recovered by ``retries``;
* **cache-store faults** — :meth:`ChaosPlan.fs_injector` returns a
  callable for :class:`repro.runner.cache.ResultCache`\\ 's
  ``fault_injector`` hook that raises ``ENOSPC``/``EIO`` inside
  ``store()``, driving the cache's degrade-to-store-off hardening.
"""

from __future__ import annotations

import errno
import os
import random
import time
from dataclasses import dataclass

__all__ = ["ChaosConfig", "ChaosPlan", "PointChaos"]


def _require(cond: bool, message: str) -> None:
    if not cond:
        from ..errors import ConfigError

        raise ConfigError(message)


@dataclass(frozen=True)
class ChaosConfig:
    """Process-level fault rates for one sweep (all per attempt)."""

    #: RNG seed; the whole fault schedule is a pure function of
    #: ``(seed, digest, attempt)``.
    seed: int = 0
    #: Probability the worker ``os._exit``\\ s mid-point.
    exit_prob: float = 0.0
    #: Probability the point is delayed before executing.
    delay_prob: float = 0.0
    #: Maximum injected delay in seconds (uniform in ``0..max_delay``).
    max_delay: float = 0.05
    #: Probability the worker task raises a transient ``OSError``
    #: before the point runs.
    io_error_prob: float = 0.0
    #: Probability one cache ``store()`` fails with ``ENOSPC`` (the
    #: simulated disk-full; drawn once per digest, see
    #: :meth:`ChaosPlan.cache_fault`).
    cache_error_prob: float = 0.0
    #: Attempts ``0..faults_budget-1`` may fault; later attempts are
    #: chaos-free, so recovery budgets >= this bound guarantee the
    #: sweep completes bit-identically.
    faults_budget: int = 2
    #: Exit status for injected worker deaths (distinctive in logs).
    exit_code: int = 113

    def __post_init__(self) -> None:
        for name in ("exit_prob", "delay_prob", "io_error_prob",
                     "cache_error_prob"):
            value = getattr(self, name)
            _require(0.0 <= value <= 1.0, f"{name} must be in [0, 1]")
        _require(self.max_delay >= 0.0, "max_delay must be >= 0")
        _require(self.faults_budget >= 0, "faults_budget must be >= 0")

    @property
    def enabled(self) -> bool:
        return (self.exit_prob > 0 or self.delay_prob > 0
                or self.io_error_prob > 0 or self.cache_error_prob > 0)


@dataclass(frozen=True)
class PointChaos:
    """The plan's decisions for one ``(digest, attempt)``."""

    #: Kill the worker process mid-point.
    exit_mid_point: bool = False
    #: Sleep this long before executing (0 for none).
    delay_seconds: float = 0.0
    #: Raise a transient ``OSError`` from the worker task.
    io_error: bool = False

    @property
    def any(self) -> bool:
        return self.exit_mid_point or self.io_error \
            or self.delay_seconds > 0


#: The shared no-fault decision (attempts past the budget).
NO_CHAOS = PointChaos()


class ChaosPlan:
    """Deterministic per-(digest, attempt) chaos decisions.

    Stateless and cheap to construct, so workers rebuild it from the
    pickled :class:`ChaosConfig` per task — no cross-process RNG state
    to share, by design.
    """

    def __init__(self, config: ChaosConfig):
        self.config = config

    def _rng(self, digest: str, site: object) -> random.Random:
        return random.Random(f"{self.config.seed}:{digest}:{site}")

    def for_attempt(self, digest: str, attempt: int) -> PointChaos:
        """Decisions for try number ``attempt`` (0-based, counting
        every submission of the digest: retries *and* pool-rebuild
        resubmissions).  The draw order per attempt is fixed — delay,
        delay amount, I/O error, exit — so adding a probability knob
        never perturbs the draws before it.
        """
        config = self.config
        if attempt >= config.faults_budget or not config.enabled:
            return NO_CHAOS
        rng = self._rng(digest, attempt)
        delay = 0.0
        if config.delay_prob > 0 and rng.random() < config.delay_prob:
            delay = rng.random() * config.max_delay
        io_error = (config.io_error_prob > 0
                    and rng.random() < config.io_error_prob)
        exit_mid_point = (config.exit_prob > 0
                          and rng.random() < config.exit_prob)
        # One fault per attempt: a killed worker cannot also report an
        # I/O error.  Exit takes precedence (it is the harsher fault).
        if exit_mid_point:
            io_error = False
        return PointChaos(exit_mid_point=exit_mid_point,
                          delay_seconds=delay, io_error=io_error)

    def cache_fault(self, digest: str, store_number: int = 0) -> bool:
        """Should cache ``store()`` number ``store_number`` of this
        digest fail with a simulated disk-full?"""
        config = self.config
        if store_number >= config.faults_budget:
            return False
        if config.cache_error_prob <= 0:
            return False
        rng = self._rng(digest, f"cache:{store_number}")
        return rng.random() < config.cache_error_prob

    def fs_injector(self):
        """A ``fault_injector`` for :class:`repro.runner.cache.
        ResultCache`: raises ``ENOSPC`` on stores the plan marks
        faulty.  Tracks per-digest store counts (parent-side only, so
        determinism needs no cross-process state)."""
        counts: "dict[str, int]" = {}

        def inject(op: str, digest: str) -> None:
            if op != "store":
                return
            number = counts.get(digest, 0)
            counts[digest] = number + 1
            if self.cache_fault(digest, number):
                raise OSError(errno.ENOSPC,
                              "chaos: simulated disk full on cache store")

        return inject

    # ------------------------------------------------------------------
    # Worker-side application.
    # ------------------------------------------------------------------
    def apply_worker_faults(self, digest: str, attempt: int,
                            notify=None) -> None:
        """Inject this attempt's worker-side faults, in order: delay,
        transient I/O error, worker exit.  ``notify(kind, decision)``
        (when given) observes each injection before it lands — the
        telemetry spool uses it so injected faults are visible in the
        live progress stream."""
        decision = self.for_attempt(digest, attempt)
        if not decision.any:
            return
        if decision.delay_seconds > 0:
            if notify is not None:
                notify("delay", decision)
            time.sleep(decision.delay_seconds)
        if decision.io_error:
            if notify is not None:
                notify("io-error", decision)
            raise OSError(errno.EIO,
                          "chaos: injected transient I/O failure")
        if decision.exit_mid_point:
            if notify is not None:
                notify("exit", decision)
            os._exit(self.config.exit_code)
