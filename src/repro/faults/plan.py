"""The deterministic fault schedule.

A :class:`FaultPlan` is a seeded RNG consumed in broadcast order.  The
simulator is fully deterministic, so broadcasts occur in the same order
on every run of a configuration — including with fast-forward on or off,
because skipped cycle ranges are provably free of interconnect activity.
The draw sequence per broadcast is fixed (whole-drop, then per-receiver
drop/corrupt/jitter in node-id order, then the stall pick, then one
drop/corrupt pair per retransmit attempt), so the same
``(FaultConfig, broadcast order)`` always yields the identical fault
schedule — the reproducibility contract behind
``DataScalarResult.extra["faults"]["seed"]``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..params import FaultConfig


@dataclass
class BroadcastFault:
    """The plan's decisions for one broadcast."""

    #: The whole broadcast was lost on the medium.
    drop_all: bool = False
    #: Receivers that individually lost the delivery.
    dropped: "frozenset[int]" = frozenset()
    #: Receivers whose payload arrives ECC-corrupt.
    corrupted: "frozenset[int]" = frozenset()
    #: Extra delivery delay per receiver.
    jitter: dict = field(default_factory=dict)
    #: Receiver whose port transiently stalls (``None`` for none).
    stalled: "int | None" = None

    def needs_recovery(self, node: int) -> bool:
        return self.drop_all or node in self.dropped or node in self.corrupted


class FaultPlan:
    """Seeded per-broadcast fault decisions."""

    def __init__(self, config: FaultConfig, num_nodes: int):
        self.config = config
        self.num_nodes = num_nodes
        self._rng = random.Random(config.seed)

    def for_broadcast(self, src: int) -> BroadcastFault:
        """Draw the fault decisions for the next broadcast from ``src``."""
        config = self.config
        rng = self._rng
        drop_all = config.drop_prob > 0 and rng.random() < config.drop_prob
        dropped = set()
        corrupted = set()
        jitter = {}
        for node in range(self.num_nodes):
            if node == src:
                continue
            if config.receiver_drop_prob > 0 \
                    and rng.random() < config.receiver_drop_prob:
                dropped.add(node)
            if config.corrupt_prob > 0 \
                    and rng.random() < config.corrupt_prob:
                corrupted.add(node)
            if config.jitter_prob > 0 \
                    and rng.random() < config.jitter_prob:
                jitter[node] = rng.randint(1, config.max_jitter)
        stalled = None
        if config.stall_prob > 0 and rng.random() < config.stall_prob:
            stalled = rng.randrange(self.num_nodes)
        # A drop takes precedence over corruption of the same delivery.
        corrupted -= dropped
        return BroadcastFault(
            drop_all=drop_all,
            dropped=frozenset(dropped),
            corrupted=frozenset(corrupted),
            jitter=jitter,
            stalled=stalled,
        )

    def retransmit_outcome(self) -> "tuple[bool, bool]":
        """``(dropped, corrupted)`` for one retransmit attempt.

        Retransmissions cross the same unreliable medium, so they fail
        with the same per-receiver probabilities as primary deliveries.
        """
        config = self.config
        rng = self._rng
        fail_prob = max(config.drop_prob, config.receiver_drop_prob)
        dropped = fail_prob > 0 and rng.random() < fail_prob
        corrupted = (not dropped and config.corrupt_prob > 0
                     and rng.random() < config.corrupt_prob)
        return dropped, corrupted
