"""Counters for injected faults and the recovery protocol's work.

``FaultStats`` counts what the seeded plan injected; ``RecoveryStats``
counts what the protocol detected and repaired, plus the cost of the
repair (recovery-only traffic, latency distribution, retry depth).  The
two are reported side by side so a run makes degradation visible:
``injected == detected == recovered`` on every completed run, and the
recovery columns show what that guarantee cost.
"""

from __future__ import annotations

from ..analysis.stats import Distribution


class FaultStats:
    """What the fault plan injected, by category."""

    __slots__ = ("broadcast_drops", "receiver_drops", "corruptions",
                 "jitter_events", "jitter_cycles", "stalls")

    def __init__(self):
        self.broadcast_drops = 0   # whole broadcasts lost (per receiver)
        self.receiver_drops = 0    # single-receiver losses
        self.corruptions = 0       # ECC-detectable corrupt arrivals
        self.jitter_events = 0
        self.jitter_cycles = 0
        self.stalls = 0            # transient receive-port stalls

    @property
    def injected(self) -> int:
        """Deliveries that required recovery (drops + corruptions).

        Jitter and stalls delay a delivery without losing it, so they
        are injected faults but not recovery events.
        """
        return self.broadcast_drops + self.receiver_drops + self.corruptions

    def snapshot(self) -> dict:
        return {
            "broadcast_drops": self.broadcast_drops,
            "receiver_drops": self.receiver_drops,
            "corruptions": self.corruptions,
            "jitter_events": self.jitter_events,
            "jitter_cycles": self.jitter_cycles,
            "stalls": self.stalls,
            "injected": self.injected,
        }


class RecoveryStats:
    """What the recovery slow path detected, repaired, and cost."""

    __slots__ = ("timeouts", "nacks", "requests", "retransmits",
                 "recovered", "retry_high_water", "payload_bytes",
                 "busy_cycles", "latency")

    def __init__(self):
        self.timeouts = 0        # losses detected by sequence-gap/timeout
        self.nacks = 0           # corruptions detected by ECC
        self.requests = 0        # retransmit requests sent (recovery-only)
        self.retransmits = 0     # retransmissions sent by owners
        self.recovered = 0       # deliveries successfully repaired
        self.retry_high_water = 0
        self.payload_bytes = 0   # recovery-only traffic
        self.busy_cycles = 0     # recovery channel occupancy
        self.latency = Distribution()  # delivery delay vs. fault-free

    @property
    def detected(self) -> int:
        return self.timeouts + self.nacks

    def snapshot(self) -> dict:
        return {
            "timeouts": self.timeouts,
            "nacks": self.nacks,
            "detected": self.detected,
            "requests": self.requests,
            "retransmits": self.retransmits,
            "recovered": self.recovered,
            "retry_high_water": self.retry_high_water,
            "payload_bytes": self.payload_bytes,
            "busy_cycles": self.busy_cycles,
            "latency": self.latency.summary(),
        }
