"""Counters for injected faults and the recovery protocol's work.

``FaultStats`` counts what the seeded plan injected; ``RecoveryStats``
counts what the protocol detected and repaired, plus the cost of the
repair (recovery-only traffic, latency distribution, retry depth).  The
two are reported side by side so a run makes degradation visible:
``injected == detected == recovered`` on every completed run, and the
recovery columns show what that guarantee cost.

Both classes are thin views over a :class:`repro.obs.metrics.
MetricsRegistry` — every counter lives under ``faults.injected.*`` or
``faults.recovery.*`` in the registry, so metric exports and these
legacy attribute-style accessors always read the same numbers.  The
attribute API (``stats.timeouts += 1``) and ``snapshot()`` payloads are
unchanged.
"""

from __future__ import annotations

from ..obs.metrics import Histogram, MetricsRegistry


def _counter_property(suffix: str) -> property:
    """Attribute-style access to the backing registry counter."""

    def _get(self):
        return self._registry.counter(self._prefix + suffix).value

    def _set(self, value):
        self._registry.counter(self._prefix + suffix).value = value

    return property(_get, _set, doc=f"Registry counter ``{suffix}``.")


class FaultStats:
    """What the fault plan injected, by category."""

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: "MetricsRegistry | None" = None):
        self._registry = registry if registry is not None else MetricsRegistry()
        self._prefix = "faults.injected."
        for suffix in ("broadcast_drops", "receiver_drops", "corruptions",
                       "jitter_events", "jitter_cycles", "stalls"):
            self._registry.counter(self._prefix + suffix)

    broadcast_drops = _counter_property("broadcast_drops")
    receiver_drops = _counter_property("receiver_drops")
    corruptions = _counter_property("corruptions")
    jitter_events = _counter_property("jitter_events")
    jitter_cycles = _counter_property("jitter_cycles")
    stalls = _counter_property("stalls")

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry

    @property
    def injected(self) -> int:
        """Deliveries that required recovery (drops + corruptions).

        Jitter and stalls delay a delivery without losing it, so they
        are injected faults but not recovery events.
        """
        return self.broadcast_drops + self.receiver_drops + self.corruptions

    def snapshot(self) -> dict:
        return {
            "broadcast_drops": self.broadcast_drops,
            "receiver_drops": self.receiver_drops,
            "corruptions": self.corruptions,
            "jitter_events": self.jitter_events,
            "jitter_cycles": self.jitter_cycles,
            "stalls": self.stalls,
            "injected": self.injected,
        }


class RecoveryStats:
    """What the recovery slow path detected, repaired, and cost."""

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: "MetricsRegistry | None" = None):
        self._registry = registry if registry is not None else MetricsRegistry()
        self._prefix = "faults.recovery."
        for suffix in ("timeouts", "nacks", "requests", "retransmits",
                       "recovered", "retry_high_water", "payload_bytes",
                       "busy_cycles"):
            self._registry.counter(self._prefix + suffix)
        self._registry.histogram(self._prefix + "latency")

    timeouts = _counter_property("timeouts")
    nacks = _counter_property("nacks")
    requests = _counter_property("requests")
    retransmits = _counter_property("retransmits")
    recovered = _counter_property("recovered")
    retry_high_water = _counter_property("retry_high_water")
    payload_bytes = _counter_property("payload_bytes")
    busy_cycles = _counter_property("busy_cycles")

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry

    @property
    def latency(self) -> Histogram:
        """Delivery delay vs. fault-free (a registry histogram)."""
        return self._registry.histogram(self._prefix + "latency")

    @property
    def detected(self) -> int:
        return self.timeouts + self.nacks

    def snapshot(self) -> dict:
        return {
            "timeouts": self.timeouts,
            "nacks": self.nacks,
            "detected": self.detected,
            "requests": self.requests,
            "retransmits": self.retransmits,
            "recovered": self.recovered,
            "retry_high_water": self.retry_high_water,
            "payload_bytes": self.payload_bytes,
            "busy_cycles": self.busy_cycles,
            "latency": self.latency.summary(),
        }
