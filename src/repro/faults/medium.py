"""An unreliable broadcast transport and the ESP recovery slow path.

:class:`FaultyMedium` wraps any :class:`repro.interconnect.medium.
BroadcastMedium` and injects seeded faults per delivery: whole-broadcast
drops, per-receiver drops, ECC-detectable corruption, delivery jitter,
and transient receive-port stalls.  Plain ESP cannot survive a loss —
the consumer never asks for a communicated word — so the wrapper also
models the recovery protocol that makes loss survivable:

* **Sequence numbers.**  Every owner numbers its broadcasts; receivers
  track the expected sequence per owner, so a gap (a lost broadcast) is
  detectable.  Detection is bounded by ``FaultConfig.bshr_timeout``
  cycles past the due arrival (the gap is noticed at the next broadcast
  from that owner or when a BSHR wait times out, whichever is sooner; we
  charge the bound).
* **NACKs.**  A corrupt payload fails ECC at arrival and is NACKed
  immediately (no timeout is paid).
* **Retransmit requests.**  Detection escalates into an explicit request
  to the owner — the request path plain ESP forbids, used here as a
  *recovery-only* slow path — followed by a unicast retransmission.
  Attempts that themselves fail back off exponentially
  (``retry_backoff * backoff_factor**attempt``); after ``max_retries``
  failures the run dies with :class:`~repro.errors.
  RecoveryExhaustedError` rather than hanging.

Recovery traffic never hides inside the primary counters: requests,
retransmissions, payload bytes, and channel occupancy are accounted in
:class:`~repro.faults.stats.RecoveryStats`, and ``utilization()`` adds
the recovery channel's share on top of the wrapped medium's, so
degradation is visible in every report.

Deliveries — including recovered ones — are materialized as absolute
future arrival cycles at broadcast time, exactly like the fault-free
transports, so the push-based fast-forward invariant holds unchanged.
``next_event`` additionally exposes the earliest outstanding recovery
delivery so :meth:`repro.core.system.DataScalarSystem._advance` can
never skip past a scheduled recovery action even for a subclassed medium
with genuinely deferred events.
"""

from __future__ import annotations

import heapq

from ..errors import CorruptionError, ProtocolError, RecoveryExhaustedError
from ..interconnect.medium import BroadcastMedium
from ..obs.events import EventKind
from ..obs.metrics import MetricsRegistry
from ..params import BusConfig, FaultConfig
from .plan import FaultPlan
from .stats import FaultStats, RecoveryStats


class FaultyMedium(BroadcastMedium):
    """Fault-injecting wrapper around a real broadcast medium."""

    def __init__(self, inner: BroadcastMedium, config: FaultConfig,
                 num_nodes: int, bus: BusConfig):
        self.inner = inner
        self.config = config
        self.num_nodes = num_nodes
        self.bus = bus
        self.plan = FaultPlan(config, num_nodes)
        #: One registry backs both ledgers (``faults.injected.*`` and
        #: ``faults.recovery.*``), so a single metrics export covers
        #: the whole fault story.
        self.metrics = MetricsRegistry()
        self.fault_stats = FaultStats(self.metrics)
        self.recovery_stats = RecoveryStats(self.metrics)
        #: Outstanding recovery delivery cycles (min-heap).
        self._pending = []
        #: Per-owner broadcast sequence numbers.
        self._seq = [0] * num_nodes
        #: Deliveries completed per (owner, receiver) — the integrity
        #: ledger behind :meth:`validate_final_state`.
        self._delivered = [[0] * num_nodes for _ in range(num_nodes)]
        # Recovery message costs on the dedicated recovery channel: a
        # tag-only request and a full-line retransmission, each behind
        # the network-interface queue.
        self._request_cycles = bus.interface_latency + bus.transfer_cycles(0)

    def attach_tracer(self, tracer) -> None:
        """Trace fault/recovery events here and transfers in the wrapped
        medium (node = affected receiver for injected faults)."""
        self.tracer = tracer
        self.inner.attach_tracer(tracer)

    # ------------------------------------------------------------------
    # BroadcastMedium interface.
    # ------------------------------------------------------------------
    def broadcast(self, now, src, line, payload_bytes):
        arrivals = list(self.inner.broadcast(now, src, line, payload_bytes))
        self._seq[src] += 1
        fault = self.plan.for_broadcast(src)
        stats = self.fault_stats
        tracer = self.tracer
        for node in range(self.num_nodes):
            if node == src or arrivals[node] is None:
                continue
            due = arrivals[node]
            if fault.stalled == node:
                stats.stalls += 1
                due += self.config.stall_cycles
                if tracer is not None:
                    tracer.emit(EventKind.FAULT_INJECT, now, node,
                                fault="stall", src=src, line=line)
            extra = fault.jitter.get(node)
            if extra is not None:
                stats.jitter_events += 1
                stats.jitter_cycles += extra
                due += extra
                if tracer is not None:
                    tracer.emit(EventKind.FAULT_INJECT, now, node,
                                fault="jitter", src=src, line=line,
                                cycles=extra)
            if fault.drop_all or node in fault.dropped:
                if fault.drop_all:
                    stats.broadcast_drops += 1
                else:
                    stats.receiver_drops += 1
                if tracer is not None:
                    tracer.emit(EventKind.FAULT_INJECT, now, node,
                                fault="drop", src=src, line=line)
                due = self._recover(due, src, node, line, payload_bytes,
                                    corrupt=False)
            elif node in fault.corrupted:
                stats.corruptions += 1
                if tracer is not None:
                    tracer.emit(EventKind.FAULT_INJECT, now, node,
                                fault="corrupt", src=src, line=line)
                due = self._recover(due, src, node, line, payload_bytes,
                                    corrupt=True)
            arrivals[node] = due
            self._delivered[src][node] += 1
        return arrivals

    @property
    def transactions(self):
        """Primary broadcast transactions (recovery counted separately)."""
        return self.inner.transactions

    @property
    def payload_bytes(self):
        return self.inner.payload_bytes

    def utilization(self, cycles):
        """Primary utilization plus the recovery channel's share."""
        if not cycles:
            return self.inner.utilization(cycles)
        return (self.inner.utilization(cycles)
                + self.recovery_stats.busy_cycles / cycles)

    # ------------------------------------------------------------------
    # The recovery slow path.
    # ------------------------------------------------------------------
    def _recover(self, due: int, src: int, dst: int, line: int,
                 payload_bytes: int, corrupt: bool) -> int:
        """Repair one lost/corrupt delivery; returns the repaired arrival
        cycle, or raises a typed :class:`~repro.errors.FaultError`."""
        config = self.config
        recovery = self.recovery_stats
        if corrupt:
            if not config.nack_enabled:
                raise CorruptionError(
                    f"node {dst}: broadcast of line {line:#x} from node "
                    f"{src} failed ECC and NACK/retransmit is disabled"
                )
            recovery.nacks += 1
            when = due  # ECC detects at arrival; NACK leaves immediately
        else:
            recovery.timeouts += 1
            when = due + config.bshr_timeout  # sequence-gap bound
        data_cycles = (self.bus.interface_latency
                       + self.bus.transfer_cycles(payload_bytes))
        for attempt in range(config.max_retries):
            recovery.requests += 1
            recovery.retransmits += 1
            recovery.payload_bytes += payload_bytes
            recovery.busy_cycles += self._request_cycles + data_cycles
            arrived = when + self._request_cycles + data_cycles
            dropped, corrupted = self.plan.retransmit_outcome()
            if corrupted and not config.nack_enabled:
                raise CorruptionError(
                    f"node {dst}: retransmission of line {line:#x} from "
                    f"node {src} failed ECC and NACK/retransmit is disabled"
                )
            if not dropped and not corrupted:
                depth = attempt + 1
                if depth > recovery.retry_high_water:
                    recovery.retry_high_water = depth
                recovery.recovered += 1
                recovery.latency.add(arrived - due)
                heapq.heappush(self._pending, arrived)
                if self.tracer is not None:
                    self.tracer.emit(EventKind.FAULT_RECOVER, arrived, dst,
                                     src=src, line=line,
                                     latency=arrived - due, attempts=depth)
                return arrived
            # A failed attempt is visible as retransmits - recovered; a
            # corrupted retransmission is NACKed immediately (no new
            # *detection* — the original fault was already counted).
            if corrupted:
                penalty = 0
            else:
                penalty = config.bshr_timeout  # response timed out
            backoff = config.retry_backoff * config.backoff_factor ** attempt
            when = arrived + penalty + backoff
        raise RecoveryExhaustedError(
            f"node {dst}: {config.max_retries} retransmit attempts for "
            f"line {line:#x} from node {src} all failed — giving up "
            f"instead of hanging"
        )

    # ------------------------------------------------------------------
    # Fast-forward and end-of-run hooks.
    # ------------------------------------------------------------------
    def next_event(self, now: int):
        """Earliest outstanding recovery delivery after ``now`` (``None``
        when nothing is pending).  Consulted by the idle-skip scheduler
        so a jump can never cross a scheduled recovery action."""
        pending = self._pending
        while pending and pending[0] <= now:
            heapq.heappop(pending)
        return pending[0] if pending else None

    def pending_recoveries(self, horizon: int = 0) -> int:
        """Recovery deliveries still scheduled at or after ``horizon``.

        The raw heap length is *not* deterministic across runs — already
        -arrived entries are popped lazily by :meth:`next_event`, and how
        many stale entries linger depends on the scheduler's exact call
        pattern — so checkpoint summaries count only the live ones."""
        return sum(1 for when in self._pending if when >= horizon)

    def state_key(self, horizon: int = 0) -> tuple:
        """Transport fingerprint: the wrapped medium's key plus the fault
        layer's sequencing and recovery position."""
        recovery = self.recovery_stats
        return self.inner.state_key(horizon) + (
            "faults", tuple(self._seq),
            tuple(map(tuple, self._delivered)),
            self.fault_stats.injected,
            recovery.recovered, recovery.retransmits,
            self.pending_recoveries(horizon),
        )

    def validate_final_state(self) -> None:
        """Integrity tripwire: every sequenced broadcast must have been
        delivered (possibly via recovery) to every receiver, and every
        detected fault must have been repaired."""
        for src in range(self.num_nodes):
            for node in range(self.num_nodes):
                if node == src:
                    continue
                if self._delivered[src][node] != self._seq[src]:
                    raise ProtocolError(
                        f"fault layer leaked: node {node} saw "
                        f"{self._delivered[src][node]} of node {src}'s "
                        f"{self._seq[src]} sequenced broadcasts"
                    )
        injected = self.fault_stats.injected
        recovery = self.recovery_stats
        if not (injected == recovery.detected == recovery.recovered):
            raise ProtocolError(
                f"fault accounting imbalance: injected={injected} "
                f"detected={recovery.detected} "
                f"recovered={recovery.recovered}"
            )

    def snapshot(self) -> dict:
        """The ``DataScalarResult.extra['faults']`` payload."""
        return {
            "seed": self.config.seed,
            "injected": self.fault_stats.snapshot(),
            "recovery": self.recovery_stats.snapshot(),
        }
