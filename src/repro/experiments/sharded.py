"""The ``sharded-run`` experiment: one long DataScalar run, all the
cores.

Drives :class:`repro.runner.ShardedRun` on a single workload — the CLI
surface for the checkpoint/restore machinery (``--shards``,
``--checkpoint-every``, ``--warmup``; see ``docs/simulator.md``,
"Checkpoint, warm-up, and sharding"):

* ``--shards N`` splits the run into N checkpoint-delimited segments.
  The first (cold) run executes serially while populating the
  checkpoint cache; every rerun resumes the shards in parallel across
  the sweep process pool and stitches a result bit-identical to the
  straight-through run.
* ``--checkpoint-every K`` (without sharding) emits a checkpoint into
  the cache at every K committed instructions — warm-start
  population for later SimPoint-style sampling runs.
* ``--warmup W`` skips the first W instructions in the fast functional
  front end before detailed timing starts.  This is the one mode that
  is deliberately *not* bit-identical to a full run: the caches and
  predictors start cold at instruction W.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..params import SystemConfig
from ..runner import ResultCache, default_cache_dir, get_default_runner
from ..runner.digest import checkpoint_digest
from ..runner.point import SweepPoint
from ..runner.sharded import ShardedRun

DEFAULT_LIMIT = 50_000
DEFAULT_SHARDS = 4


@dataclass
class ShardedRunResult:
    """What one ``sharded-run`` invocation measured."""

    workload: str
    limit: int
    shards: int
    mode: str  # "sharded" | "checkpoint" | "warmup"
    warm: bool
    cycles: int
    instructions: int
    wall_seconds: float
    boundaries: "list[int]" = field(default_factory=list)
    checkpoints_saved: int = 0
    warmup: int = 0


def run_sharded(workload: str = "compress", limit: "int | None" = None,
                shards: "int | None" = None,
                checkpoint_every: "int | None" = None,
                warmup: "int | None" = None,
                engine: "str | None" = None,
                config: "SystemConfig | None" = None,
                cache: "ResultCache | None" = None) -> ShardedRunResult:
    """Run ``workload`` once under the requested checkpoint mode.

    Jobs, metrics registry, and (when available) the result cache come
    from the ambient default :class:`~repro.runner.SweepRunner`, so
    ``runner.checkpoint.*`` counters land in the same registry the CLI
    summarizes and ``--report-out`` snapshots.
    """
    limit = limit or DEFAULT_LIMIT
    if config is None:
        config = SystemConfig()
    if engine:
        import dataclasses

        config = dataclasses.replace(config, engine=engine)
    runner = get_default_runner()
    if cache is None:
        cache = runner.cache if runner.cache is not None \
            else ResultCache(default_cache_dir())

    if warmup:
        return _run_warmup(workload, limit, warmup, config)
    if checkpoint_every and not shards:
        return _run_checkpoint_population(workload, limit, checkpoint_every,
                                          config, cache)

    sharded = ShardedRun(shards or DEFAULT_SHARDS, cache=cache,
                         jobs=runner.jobs, registry=runner.registry)
    tick = time.perf_counter()
    result = sharded.run(workload, limit=limit, config=config)
    wall = time.perf_counter() - tick
    return ShardedRunResult(
        workload=workload, limit=limit, shards=sharded.shards,
        mode="sharded", warm=sharded.last_warm,
        cycles=result.cycles, instructions=result.instructions,
        wall_seconds=wall, boundaries=list(sharded.last_boundaries),
        checkpoints_saved=(0 if sharded.last_warm
                           else len(sharded.last_boundaries)),
    )


def _run_warmup(workload, limit, warmup, config) -> ShardedRunResult:
    from ..core.system import DataScalarSystem
    from ..workloads import build_program

    program = build_program(workload, 1)
    tick = time.perf_counter()
    result = DataScalarSystem(config).run(program, limit=limit,
                                          warmup=warmup)
    wall = time.perf_counter() - tick
    return ShardedRunResult(
        workload=workload, limit=limit, shards=1, mode="warmup",
        warm=False, cycles=result.cycles,
        instructions=result.instructions, wall_seconds=wall,
        warmup=warmup,
    )


def _run_checkpoint_population(workload, limit, every, config,
                               cache) -> ShardedRunResult:
    from ..core.system import DataScalarSystem
    from ..workloads import build_program

    point = SweepPoint.make("datascalar", workload, limit=limit,
                            config=config)
    saved = []

    def sink(ckpt) -> None:
        digest = checkpoint_digest(point, ckpt.meta["boundary"],
                                   cache.code_version)
        if cache.store(point, ckpt, digest=digest):
            saved.append(ckpt.meta["boundary"])

    program = build_program(workload, 1)
    tick = time.perf_counter()
    result = DataScalarSystem(config).run(program, limit=limit,
                                          checkpoint_every=every,
                                          checkpoint_sink=sink)
    wall = time.perf_counter() - tick
    return ShardedRunResult(
        workload=workload, limit=limit, shards=1, mode="checkpoint",
        warm=False, cycles=result.cycles,
        instructions=result.instructions, wall_seconds=wall,
        boundaries=saved, checkpoints_saved=len(saved),
    )


def format_sharded(result: ShardedRunResult) -> str:
    lines = [f"sharded-run: {result.workload} "
             f"(limit={result.limit}, mode={result.mode})"]
    if result.mode == "sharded":
        state = "warm (shards resumed cached checkpoints in parallel)" \
            if result.warm else "cold (serial run populated the cache)"
        lines.append(f"  shards={result.shards} {state}")
        if result.boundaries:
            lines.append(f"  boundaries={result.boundaries}")
    elif result.mode == "checkpoint":
        lines.append(f"  checkpoints saved at {result.boundaries}")
    else:
        lines.append(f"  warmup={result.warmup} functionally-skipped "
                     f"instructions (timing starts cold at that point; "
                     f"not comparable to a full run)")
    ipc = result.instructions / result.cycles if result.cycles else 0.0
    lines.append(f"  cycles={result.cycles} "
                 f"instructions={result.instructions} ipc={ipc:.3f}")
    lines.append(f"  wall={result.wall_seconds:.2f}s")
    return "\n".join(lines)
