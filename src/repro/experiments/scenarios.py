"""Technology scenarios: the paper's three candidate DataScalar platforms.

Section 1 names three increasingly-integrated homes for DataScalar:

* **networks of workstations** — huge memories per node, but a slow
  interconnect (broadcast must be cheap, e.g. a fat tree or optics);
* **IRAM** — processor/memory chips on a board-level bus (the paper's
  simulated implementation and our default); and
* **chip multiprocessors** — many processor+memory banks on one die,
  where "remote" is across the chip: a much faster, wider bus and little
  latency gap between local and remote banks.

Each preset keeps the core identical and moves only the memory/bus
parameters, so runs isolate the technology's effect on the DataScalar
vs. traditional trade-off.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..baseline.traditional import TraditionalSystem
from ..core.system import DataScalarSystem
from ..params import BusConfig, FaultConfig, NodeConfig
from .config import (
    datascalar_config,
    timing_bus_config,
    timing_node_config,
    traditional_config,
)


@dataclass(frozen=True)
class Scenario:
    """One technology point: a node template, a bus, and (optionally) an
    unreliable transport."""

    name: str
    description: str
    node: NodeConfig
    bus: BusConfig
    #: Fault injection for the DataScalar run (``None`` = perfect
    #: transport; the traditional baseline is never faulted — its
    #: request/response protocol is outside the ESP failure model).
    faults: "FaultConfig | None" = None


def iram_scenario() -> Scenario:
    """The paper's evaluated platform (our defaults)."""
    return Scenario(
        name="iram",
        description="IRAM chips on a board-level bus (paper Section 4)",
        node=timing_node_config(),
        bus=timing_bus_config(width_bytes=8, cycles_per_bus_cycle=4),
    )


def cmp_scenario() -> Scenario:
    """A single-die chip multiprocessor: wide, fast on-die interconnect
    and a small local/remote latency gap."""
    return Scenario(
        name="cmp",
        description="single-chip multiprocessor, on-die broadcast bus",
        node=timing_node_config(memory_latency=6),
        bus=timing_bus_config(width_bytes=32, cycles_per_bus_cycle=1),
    )


def now_scenario() -> Scenario:
    """A network of workstations: big memories, slow broadcasts."""
    return Scenario(
        name="now",
        description="network of workstations, LAN-class broadcast",
        node=timing_node_config(memory_latency=12),
        bus=timing_bus_config(width_bytes=4, cycles_per_bus_cycle=32),
    )


def faulty_iram_scenario(seed: int = 11,
                         drop_prob: float = 1e-3) -> Scenario:
    """The IRAM platform on an unreliable broadcast transport.

    Per-receiver drops at ``drop_prob`` with proportional corruption and
    jitter — the named, seeded entry point for reproducible resilience
    sweeps from the command line (``--fault-seed`` / ``--drop-prob``).
    """
    base = iram_scenario()
    return Scenario(
        name="faulty-iram",
        description=("IRAM bus with seeded broadcast loss/corruption "
                     "and ESP recovery"),
        node=base.node,
        bus=base.bus,
        faults=FaultConfig(
            seed=seed,
            receiver_drop_prob=drop_prob,
            corrupt_prob=drop_prob / 2,
            jitter_prob=min(1.0, drop_prob * 2),
        ),
    )


SCENARIOS = {
    scenario().name: scenario()
    for scenario in (iram_scenario, cmp_scenario, now_scenario,
                     faulty_iram_scenario)
}


@dataclass
class ScenarioResult:
    """DataScalar vs. traditional on one technology point."""

    scenario: str
    datascalar_ipc: float
    traditional_ipc: float
    bus_utilization: float

    @property
    def speedup(self) -> float:
        return self.datascalar_ipc / self.traditional_ipc


def run_scenario(scenario: Scenario, program, num_nodes: int = 2,
                 limit=None) -> ScenarioResult:
    """Run one workload on DataScalar and traditional machines built from
    ``scenario``'s technology parameters."""
    ds_config = datascalar_config(num_nodes, node=scenario.node,
                                  bus=scenario.bus)
    if scenario.faults is not None:
        ds_config = dataclasses.replace(ds_config, faults=scenario.faults)
    ds = DataScalarSystem(ds_config).run(program, limit=limit)
    trad = TraditionalSystem(traditional_config(
        num_nodes, node=scenario.node, bus=scenario.bus)).run(program,
                                                              limit=limit)
    return ScenarioResult(
        scenario=scenario.name,
        datascalar_ipc=ds.ipc,
        traditional_ipc=trad.ipc,
        bus_utilization=ds.bus_utilization,
    )


def run_scenarios(program, num_nodes: int = 2, limit=None,
                  scenarios=None):
    """Sweep every technology scenario over one workload."""
    chosen = scenarios or SCENARIOS.values()
    return [run_scenario(scenario, program, num_nodes, limit)
            for scenario in chosen]
