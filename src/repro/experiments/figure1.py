"""Figure 1: operation of the ESP Massive Memory Machine.

Reproduces the paper's word-receive schedule: nine words, w5–w7 owned by
machine 2, the rest by machine 1; two lead changes; three datathreads of
lengths 4, 3, and 2.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.report import format_table
from ..core.esp import ESPResult, MassiveMemoryMachine


@dataclass
class Figure1Result:
    """The ESP schedule plus comparison scenarios."""

    paper_schedule: ESPResult
    single_owner: ESPResult
    worst_case: ESPResult

    @property
    def lead_change_cost(self) -> int:
        """Extra cycles the paper's string pays versus one owner."""
        return (self.paper_schedule.total_cycles
                - self.single_owner.total_cycles)


def compute_figure1(broadcast_latency: int = 1,
                    lead_change_penalty: int = 3) -> Figure1Result:
    """The pure measurement body (the ``esp-schedule`` sweep executor)."""
    mmm = MassiveMemoryMachine(num_processors=2,
                               broadcast_latency=broadcast_latency,
                               lead_change_penalty=lead_change_penalty)
    paper = mmm.figure1_example()
    n = len(paper.receive_times)
    best = mmm.schedule([0] * n)
    worst = mmm.schedule([i % 2 for i in range(n)])
    return Figure1Result(paper_schedule=paper, single_owner=best,
                         worst_case=worst)


def run_figure1(broadcast_latency: int = 1,
                lead_change_penalty: int = 3,
                runner=None) -> Figure1Result:
    """Regenerate Figure 1 plus best/worst-case reference strings of the
    same length."""
    from ..runner import SweepPoint, get_default_runner

    runner = runner or get_default_runner()
    point = SweepPoint.make(
        "esp-schedule",
        broadcast_latency=broadcast_latency,
        lead_change_penalty=lead_change_penalty,
        label="figure1/esp-schedule",
    )
    return runner.run([point])[0]


def format_figure1(result: Figure1Result) -> str:
    rows = []
    for index, time in enumerate(result.paper_schedule.receive_times):
        owner = 2 if 4 <= index <= 6 else 1
        rows.append([f"w{index + 1}", owner, time])
    schedule = format_table(
        ["word", "owner", "received at cycle"], rows,
        title="Figure 1: ESP Massive Memory Machine operation",
    )
    summary = (
        f"\nlead changes: {result.paper_schedule.lead_changes}, "
        f"datathreads: {result.paper_schedule.datathreads}, "
        f"total {result.paper_schedule.total_cycles} cycles "
        f"(single-owner {result.single_owner.total_cycles}, "
        f"alternating {result.worst_case.total_cycles})"
    )
    return schedule + summary
