"""Shared experiment configurations.

The paper's target machine (Section 4.2): an 8-way, 1 GHz out-of-order
processor with a 256-entry RUU; split single-cycle direct-mapped L1s;
8 ns on-chip memory banks; an 8-byte off-chip bus several times slower
than the core; 2-cycle broadcast/network-interface queues.

Per DESIGN.md, runs are scaled: the pure-Python simulator executes
10^4–10^6 instructions, so caches default to 4KB data / 8KB instruction —
keeping the paper's cache-much-smaller-than-working-set regime for the
scaled kernels.  Every knob the Figure 8 sensitivity analysis sweeps is a
parameter here.
"""

from __future__ import annotations

from ..params import (
    BSHRConfig,
    BusConfig,
    CacheConfig,
    CPUConfig,
    MemoryConfig,
    NodeConfig,
    SystemConfig,
    TraditionalConfig,
)

#: Default dynamic-instruction cap for timing experiments (None = run the
#: kernel to completion).
DEFAULT_LIMIT = None


def timing_cpu_config(ruu_entries: int = 256) -> CPUConfig:
    """The 8-wide, 1 GHz core of Section 4.2."""
    return CPUConfig(
        fetch_width=8,
        issue_width=8,
        commit_width=8,
        ruu_entries=ruu_entries,
        lsq_entries=max(1, ruu_entries // 2),
        clock_ghz=1.0,
    )


def timing_node_config(
    dcache_bytes: int = 8 * 1024,
    icache_bytes: int = 8 * 1024,
    line_size: int = 32,
    memory_latency: int = 8,
    ruu_entries: int = 256,
    page_size: int = 4096,
) -> NodeConfig:
    """One IRAM chip with the paper's (scaled) parameters."""
    return NodeConfig(
        cpu=timing_cpu_config(ruu_entries),
        icache=CacheConfig(size_bytes=icache_bytes, assoc=1,
                           line_size=line_size),
        dcache=CacheConfig(size_bytes=dcache_bytes, assoc=1,
                           line_size=line_size,
                           write_policy="writeback", write_allocate=False),
        # Off-chip banks share the on-chip access time: the penalty for
        # off-chip memory is the bus crossing, which is what the paper's
        # sensitivity analysis holds apart from bank time.
        memory=MemoryConfig(onchip_latency=memory_latency,
                            offchip_latency=memory_latency,
                            page_size=page_size),
        bshr=BSHRConfig(entries=128, access_latency=2),
        broadcast_queue_latency=2,
    )


def timing_bus_config(width_bytes: int = 8,
                      cycles_per_bus_cycle: int = 4) -> BusConfig:
    """The global off-chip bus (Figure 8 sweeps width and clock)."""
    return BusConfig(
        width_bytes=width_bytes,
        cycles_per_bus_cycle=cycles_per_bus_cycle,
        interface_latency=2,
        arbitration_bus_cycles=1,
        tag_bytes=8,
    )


def datascalar_config(num_nodes: int, node: NodeConfig = None,
                      bus: BusConfig = None,
                      distribution_block_pages: int = 1,
                      faults=None) -> SystemConfig:
    """A DataScalar machine for the timing experiments.

    Figure 7's runs replicate no data pages and distribute everything
    round-robin, so the default block is one page.  ``faults`` (a
    :class:`repro.params.FaultConfig`) arms the unreliable-broadcast
    layer; ``None`` keeps the transport perfect.
    """
    return SystemConfig(
        num_nodes=num_nodes,
        node=node or timing_node_config(),
        bus=bus or timing_bus_config(),
        distribution_block_pages=distribution_block_pages,
        replicate_text=True,
        faults=faults,
    )


def traditional_config(denom: int, node: NodeConfig = None,
                       bus: BusConfig = None,
                       distribution_block_pages: int = 1
                       ) -> TraditionalConfig:
    """The matched traditional system: same chip, same bus, ``1/denom``
    of memory on-chip."""
    return TraditionalConfig(
        node=node or timing_node_config(),
        bus=bus or timing_bus_config(),
        onchip_fraction_denom=denom,
        distribution_block_pages=distribution_block_pages,
        replicate_text=True,
    )
