"""Experiment drivers: one module per paper table/figure.

Each ``run_*`` returns structured rows and each ``format_*`` renders the
same rows/series the paper reports.  See DESIGN.md's experiment index.
"""

from .config import (
    datascalar_config,
    timing_bus_config,
    timing_cpu_config,
    timing_node_config,
    traditional_config,
)
from .figure1 import Figure1Result, format_figure1, run_figure1
from .figure3 import (
    Figure3Result,
    datascalar_crossings,
    format_figure3,
    run_figure3,
    traditional_crossings,
)
from .figure7 import Figure7Row, format_figure7, run_benchmark, run_figure7
from .figure8 import (
    FIGURE8_BENCHMARKS,
    PARAMETERS,
    Figure8Panel,
    Figure8Point,
    format_figure8,
    run_figure8,
    run_panel,
)
from .resilience import (
    DROP_PROBS,
    ResiliencePoint,
    fault_config_for,
    format_resilience,
    run_resilience,
)
from .scaling import NODE_COUNTS, ScalingPoint, format_scaling, \
    run_scaling
from .scenarios import (
    SCENARIOS,
    Scenario,
    ScenarioResult,
    cmp_scenario,
    faulty_iram_scenario,
    iram_scenario,
    now_scenario,
    run_scenario,
    run_scenarios,
)
from .table1 import Table1Row, format_table1, run_table1
from .table2 import Table2Row, format_table2, run_table2
from .table3 import Table3Row, format_table3, row_from_result, run_table3

__all__ = [
    "datascalar_config",
    "timing_bus_config",
    "timing_cpu_config",
    "timing_node_config",
    "traditional_config",
    "Figure1Result",
    "format_figure1",
    "run_figure1",
    "Figure3Result",
    "datascalar_crossings",
    "format_figure3",
    "run_figure3",
    "traditional_crossings",
    "Figure7Row",
    "format_figure7",
    "run_benchmark",
    "run_figure7",
    "FIGURE8_BENCHMARKS",
    "PARAMETERS",
    "Figure8Panel",
    "Figure8Point",
    "format_figure8",
    "run_figure8",
    "run_panel",
    "DROP_PROBS",
    "ResiliencePoint",
    "fault_config_for",
    "format_resilience",
    "run_resilience",
    "NODE_COUNTS",
    "ScalingPoint",
    "format_scaling",
    "run_scaling",
    "SCENARIOS",
    "Scenario",
    "ScenarioResult",
    "cmp_scenario",
    "faulty_iram_scenario",
    "iram_scenario",
    "now_scenario",
    "run_scenario",
    "run_scenarios",
    "Table1Row",
    "format_table1",
    "run_table1",
    "Table2Row",
    "format_table2",
    "run_table2",
    "Table3Row",
    "format_table3",
    "row_from_result",
    "run_table3",
]
