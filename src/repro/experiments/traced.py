"""Fully-instrumented reference run: events, lockstep check, metrics.

No paper analogue — this scenario exercises the observability layer
(:mod:`repro.obs`) end to end: a multi-node run with an
:class:`~repro.obs.EventTracer` attached, the SPSD lockstep divergence
check over the recorded stream, and the canonical metrics snapshot.
With ``--trace-out`` the events are exported as Chrome ``trace_event``
JSON (open in https://ui.perfetto.dev — per-node tracks, broadcast flow
arrows); with ``--metrics-out`` the metrics report is written as text.

Tracing is purely observational, so this run's cycles/IPC are
bit-identical to the same configuration untraced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.system import DataScalarSystem
from ..obs import (
    EventTracer,
    MetricsRegistry,
    check_lockstep,
    format_metrics,
    registry_from_result,
    write_chrome_trace,
    write_jsonl,
)
from ..workloads import build_program
from .config import datascalar_config


@dataclass
class TracedRun:
    """The traced run's artifacts."""

    workload: str
    num_nodes: int
    result: object
    events: list = field(default_factory=list)
    registry: "MetricsRegistry | None" = None
    divergence: object = None


def run_traced(limit=2500, workload: str = "compress",
               num_nodes: int = 4, trace_out=None,
               metrics_out=None) -> TracedRun:
    """Run ``workload`` with full event tracing and metrics capture."""
    program = build_program(workload)
    config = datascalar_config(num_nodes)
    tracer = EventTracer()
    result = DataScalarSystem(config).run(program, limit=limit,
                                          tracer=tracer)
    registry = registry_from_result(result)
    for kind, count in tracer.counts.items():
        registry.counter(f"trace.events.{kind.value}").inc(count)
    divergence = check_lockstep(tracer.events)
    if trace_out:
        if str(trace_out).endswith(".jsonl"):
            write_jsonl(trace_out, tracer.events)
        else:
            write_chrome_trace(trace_out, tracer.events)
    if metrics_out:
        with open(metrics_out, "w", encoding="utf-8") as handle:
            handle.write(format_metrics(registry))
            handle.write("\n")
    return TracedRun(workload=workload, num_nodes=num_nodes, result=result,
                     events=tracer.events, registry=registry,
                     divergence=divergence)


def format_traced(run: TracedRun) -> str:
    result = run.result
    lines = [
        f"traced-run: {run.workload} on {run.num_nodes} nodes",
        f"  cycles={result.cycles} instructions={result.instructions} "
        f"ipc={result.ipc:.3f}",
        f"  events recorded: {len(run.events)}",
    ]
    registry = run.registry
    if registry is not None:
        kinds = sorted(name for name in registry.names()
                       if name.startswith("trace.events."))
        for name in kinds:
            lines.append(f"    {name.removeprefix('trace.events.'):<18}"
                         f"{registry.counter(name).value}")
    if run.divergence is None:
        lines.append("  SPSD lockstep: OK (commit and cache-decision "
                     "streams identical across nodes)")
    else:
        lines.append(f"  SPSD lockstep: VIOLATED — "
                     f"{run.divergence.describe()}")
    return "\n".join(lines)
