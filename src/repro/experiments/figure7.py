"""Figure 7: timing-simulation IPC comparison.

Per benchmark, five systems: a perfect data cache, DataScalar with two
and four nodes, and traditional systems with one-half and one-quarter of
main memory on-chip — each traditional system matched against the
DataScalar machine with the same per-chip memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.report import format_ipc, format_table
from ..baseline.perfect import PerfectSystem
from ..baseline.traditional import TraditionalSystem
from ..core.system import DataScalarSystem
from ..workloads import TIMING_BENCHMARKS, build_program
from .config import datascalar_config, timing_node_config, traditional_config


@dataclass
class Figure7Row:
    """IPC of the five simulated systems for one benchmark."""

    benchmark: str
    perfect_ipc: float
    datascalar2_ipc: float
    datascalar4_ipc: float
    traditional_half_ipc: float
    traditional_quarter_ipc: float
    #: The full result objects, for Table 3 and deeper inspection.
    datascalar2_result: object = None
    datascalar4_result: object = None

    @property
    def speedup_2(self) -> float:
        """DataScalar-2 over the matched traditional system."""
        return self.datascalar2_ipc / self.traditional_half_ipc

    @property
    def speedup_4(self) -> float:
        return self.datascalar4_ipc / self.traditional_quarter_ipc


def run_benchmark(name: str, scale: int = 1, limit=None,
                  node=None, bus=None, node_counts=(2, 4)):
    """Simulate one benchmark on all five systems; returns a
    :class:`Figure7Row`."""
    program = build_program(name, scale)
    node = node or timing_node_config()
    perfect = PerfectSystem(node.cpu).run(program, limit=limit)
    ds_results = {}
    trad_results = {}
    for count in node_counts:
        ds = DataScalarSystem(datascalar_config(count, node=node, bus=bus))
        ds_results[count] = ds.run(program, limit=limit)
        trad = TraditionalSystem(traditional_config(count, node=node,
                                                    bus=bus))
        trad_results[count] = trad.run(program, limit=limit)
    two, four = node_counts
    return Figure7Row(
        benchmark=name,
        perfect_ipc=perfect.ipc,
        datascalar2_ipc=ds_results[two].ipc,
        datascalar4_ipc=ds_results[four].ipc,
        traditional_half_ipc=trad_results[two].ipc,
        traditional_quarter_ipc=trad_results[four].ipc,
        datascalar2_result=ds_results[two],
        datascalar4_result=ds_results[four],
    )


def run_figure7(benchmarks=None, scale: int = 1, limit=None,
                node=None, bus=None):
    """Regenerate Figure 7's bars for every timing benchmark."""
    return [run_benchmark(name, scale=scale, limit=limit, node=node, bus=bus)
            for name in benchmarks or TIMING_BENCHMARKS]


def format_figure7(rows) -> str:
    return format_table(
        ["benchmark", "perfect", "DS 2n", "DS 4n", "trad 1/2", "trad 1/4",
         "DS2/trad", "DS4/trad"],
        [[r.benchmark, format_ipc(r.perfect_ipc),
          format_ipc(r.datascalar2_ipc), format_ipc(r.datascalar4_ipc),
          format_ipc(r.traditional_half_ipc),
          format_ipc(r.traditional_quarter_ipc),
          f"{r.speedup_2:.2f}x", f"{r.speedup_4:.2f}x"] for r in rows],
        title="Figure 7: instructions per cycle (timing simulation)",
    )


def render_figure7_bars(rows) -> str:
    """The figure's visual form: grouped IPC bars per benchmark."""
    from ..analysis.report import render_bars

    blocks = []
    for row in rows:
        blocks.append(render_bars(
            ["perfect", "DS 2n", "DS 4n", "trad 1/2", "trad 1/4"],
            [row.perfect_ipc, row.datascalar2_ipc, row.datascalar4_ipc,
             row.traditional_half_ipc, row.traditional_quarter_ipc],
            title=f"[{row.benchmark}]",
            unit=" IPC",
        ))
    return "\n\n".join(blocks)
