"""Figure 7: timing-simulation IPC comparison.

Per benchmark, five systems: a perfect data cache, DataScalar with two
and four nodes, and traditional systems with one-half and one-quarter of
main memory on-chip — each traditional system matched against the
DataScalar machine with the same per-chip memory.

The five systems are expressed as :class:`~repro.runner.SweepPoint`
chunks and executed by the sweep runner, so a whole figure's worth of
benchmarks fans out over one batch (and one process pool, at
``--jobs N``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.report import format_ipc, format_table
from ..workloads import TIMING_BENCHMARKS
from .config import datascalar_config, timing_node_config, traditional_config

#: Points per benchmark chunk (perfect + DS/trad per node count).
_CHUNK = 5


@dataclass
class Figure7Row:
    """IPC of the five simulated systems for one benchmark."""

    benchmark: str
    perfect_ipc: float
    datascalar2_ipc: float
    datascalar4_ipc: float
    traditional_half_ipc: float
    traditional_quarter_ipc: float
    #: The full result objects, for Table 3 and deeper inspection.
    datascalar2_result: object = None
    datascalar4_result: object = None

    @property
    def speedup_2(self) -> float:
        """DataScalar-2 over the matched traditional system."""
        return self.datascalar2_ipc / self.traditional_half_ipc

    @property
    def speedup_4(self) -> float:
        return self.datascalar4_ipc / self.traditional_quarter_ipc


def benchmark_points(name: str, scale: int = 1, limit=None,
                     node=None, bus=None, node_counts=(2, 4), engine=None):
    """The five sweep points of one Figure 7 benchmark, in the fixed
    chunk order [perfect, ds(a), trad(a), ds(b), trad(b)].

    ``engine`` (``"interpreter"``/``"codegen"``) rides as a knob on the
    DataScalar points so sweeps can A/B the functional front ends;
    ``None`` leaves the config's own (``"auto"``) selection."""
    from ..runner import SweepPoint

    engine_knobs = {} if engine is None else {"engine": engine}
    node = node or timing_node_config()
    points = [SweepPoint.make("perfect", name, scale=scale, limit=limit,
                              config=node.cpu, label=f"{name}/perfect")]
    for count in node_counts:
        points.append(SweepPoint.make(
            "datascalar", name, scale=scale, limit=limit,
            config=datascalar_config(count, node=node, bus=bus),
            label=f"{name}/ds{count}", **engine_knobs,
        ))
        points.append(SweepPoint.make(
            "traditional", name, scale=scale, limit=limit,
            config=traditional_config(count, node=node, bus=bus),
            label=f"{name}/trad{count}",
        ))
    return points


def row_from_chunk(name: str, chunk) -> Figure7Row:
    """Assemble a :class:`Figure7Row` from one benchmark's five results
    (in :func:`benchmark_points` order)."""
    perfect, ds2, trad2, ds4, trad4 = chunk
    return Figure7Row(
        benchmark=name,
        perfect_ipc=perfect.ipc,
        datascalar2_ipc=ds2.ipc,
        datascalar4_ipc=ds4.ipc,
        traditional_half_ipc=trad2.ipc,
        traditional_quarter_ipc=trad4.ipc,
        datascalar2_result=ds2,
        datascalar4_result=ds4,
    )


def run_benchmark(name: str, scale: int = 1, limit=None,
                  node=None, bus=None, node_counts=(2, 4), runner=None,
                  engine=None):
    """Simulate one benchmark on all five systems; returns a
    :class:`Figure7Row`."""
    from ..runner import get_default_runner

    runner = runner or get_default_runner()
    results = runner.run(benchmark_points(name, scale=scale, limit=limit,
                                          node=node, bus=bus,
                                          node_counts=node_counts,
                                          engine=engine))
    return row_from_chunk(name, results)


def run_figure7(benchmarks=None, scale: int = 1, limit=None,
                node=None, bus=None, runner=None, engine=None):
    """Regenerate Figure 7's bars for every timing benchmark (one
    runner batch across all of them)."""
    from ..runner import get_default_runner

    runner = runner or get_default_runner()
    names = list(benchmarks or TIMING_BENCHMARKS)
    points = []
    for name in names:
        points.extend(benchmark_points(name, scale=scale, limit=limit,
                                       node=node, bus=bus, engine=engine))
    results = runner.run(points)
    return [row_from_chunk(name, results[i * _CHUNK:(i + 1) * _CHUNK])
            for i, name in enumerate(names)]


def format_figure7(rows) -> str:
    return format_table(
        ["benchmark", "perfect", "DS 2n", "DS 4n", "trad 1/2", "trad 1/4",
         "DS2/trad", "DS4/trad"],
        [[r.benchmark, format_ipc(r.perfect_ipc),
          format_ipc(r.datascalar2_ipc), format_ipc(r.datascalar4_ipc),
          format_ipc(r.traditional_half_ipc),
          format_ipc(r.traditional_quarter_ipc),
          f"{r.speedup_2:.2f}x", f"{r.speedup_4:.2f}x"] for r in rows],
        title="Figure 7: instructions per cycle (timing simulation)",
    )


def render_figure7_bars(rows) -> str:
    """The figure's visual form: grouped IPC bars per benchmark."""
    from ..analysis.report import render_bars

    blocks = []
    for row in rows:
        blocks.append(render_bars(
            ["perfect", "DS 2n", "DS 4n", "trad 1/2", "trad 1/4"],
            [row.perfect_ipc, row.datascalar2_ipc, row.datascalar4_ipc,
             row.traditional_half_ipc, row.traditional_quarter_ipc],
            title=f"[{row.benchmark}]",
            unit=" IPC",
        ))
    return "\n\n".join(blocks)
