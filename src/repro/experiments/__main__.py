"""Command-line entry point: regenerate any table or figure.

Usage::

    python -m repro.experiments list
    python -m repro.experiments table1 [--limit N] [--csv out.csv]
    python -m repro.experiments figure7 --limit 12000 --jobs 4
    python -m repro.experiments all --limit 10000

Simulations fan out over ``--jobs`` worker processes and completed
points land in a content-addressed on-disk cache, so a warm re-run of
``all`` skips simulation entirely (see docs/runner.md).  ``--jobs 1
--no-cache`` is exactly the classic serial path.

Long sweeps are crash-safe: ``--journal PATH`` writes a durable
write-ahead log of sweep progress, SIGINT/SIGTERM stop the sweep
gracefully (journal flushed, partial ``status: interrupted`` manifest
written, exit 130; a second signal hard-kills), and ``--resume PATH``
picks the sweep back up, re-executing only what never finished.  See
docs/runner.md, "Crash safety, resume, and chaos testing".
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import traceback

from ..analysis.export import write_csv
from ..errors import SweepInterruptedError
from ..runner import (ResultCache, SweepJournal, SweepRunner,
                      default_cache_dir, set_default_runner)
from .figure1 import format_figure1, run_figure1
from .figure3 import format_figure3, run_figure3
from .figure7 import format_figure7, run_figure7
from .figure8 import format_figure8, run_figure8
from .resilience import DROP_PROBS, format_resilience, run_resilience
from .scaling import format_scaling, run_scaling
from .sharded import format_sharded, run_sharded
from .table1 import format_table1, run_table1
from .table2 import format_table2, run_table2
from .table3 import format_table3, run_table3
from .traced import format_traced, run_traced

#: name -> (runner(limit, engine), formatter, exportable-rows?).
#: ``engine`` is the ``--engine`` functional-front-end override; the
#: analytic/trace experiments that never build a DataScalar system
#: (figure1, table2, resilience, traced-run) simply ignore it.
EXPERIMENTS = {
    "scaling": (lambda limit, engine: run_scaling(limit=limit,
                                                  engine=engine),
                format_scaling, True),
    "figure1": (lambda limit, engine: run_figure1(), format_figure1,
                False),
    "figure3": (lambda limit, engine: run_figure3(limit=limit,
                                                  engine=engine),
                format_figure3, False),
    "table1": (lambda limit, engine: run_table1(limit=limit,
                                                engine=engine),
               format_table1, True),
    "table2": (lambda limit, engine: run_table2(limit=limit),
               format_table2, True),
    "table3": (lambda limit, engine: run_table3(limit=limit,
                                                engine=engine),
               format_table3, True),
    "figure7": (lambda limit, engine: run_figure7(limit=limit,
                                                  engine=engine),
                format_figure7, True),
    "figure8": (lambda limit, engine: run_figure8(limit=limit,
                                                  engine=engine),
                format_figure8, False),
    "resilience": (lambda limit, engine: run_resilience(limit=limit or 2500),
                   format_resilience, True),
    "traced-run": (lambda limit, engine: run_traced(limit=limit or 2500),
                   format_traced, False),
    "sharded-run": (lambda limit, engine: run_sharded(limit=limit,
                                                      engine=engine),
                    format_sharded, False),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all", "list"],
                        help="which experiment to run")
    parser.add_argument("--limit", type=int, default=None,
                        help="dynamic-instruction cap per run "
                             "(default: run kernels to completion)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for the sweep runner "
                             "(default: all CPUs; 1 = classic serial "
                             "in-process execution)")
    parser.add_argument("--engine", default=None,
                        choices=("interpreter", "codegen"),
                        help="functional front end for the simulated "
                             "points (default: each config's own choice, "
                             "normally auto = codegen with interpreter "
                             "fallback); rides on SweepPoint.knobs so "
                             "both engines cache as distinct results")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the content-addressed result cache "
                             "(every point re-simulates)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result-cache directory (default: "
                             "$REPRO_CACHE_DIR or ~/.cache/repro-sweeps)")
    parser.add_argument("--csv", default=None,
                        help="also write result rows to this CSV file "
                             "(row-producing experiments only)")
    parser.add_argument("--profile", default=None, metavar="PATH",
                        help="run under cProfile and dump pstats data "
                             "to PATH (inspect with python -m pstats)")
    parser.add_argument("--fault-seed", type=int, default=11,
                        metavar="SEED",
                        help="fault-injection RNG seed for the resilience "
                             "experiment (same seed => identical fault "
                             "schedule and result)")
    parser.add_argument("--drop-prob", type=float, default=None,
                        metavar="P",
                        help="run the resilience experiment at this single "
                             "per-receiver drop probability instead of the "
                             "default sweep")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="traced-run only: write the event stream to "
                             "PATH — Chrome trace_event JSON (open in "
                             "Perfetto), or JSONL when PATH ends in .jsonl")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="traced-run only: write the metrics report "
                             "to PATH as text")
    parser.add_argument("--report-out", default=None, metavar="PATH",
                        help="write a run manifest (JSON: environment, "
                             "code version, per-point wall/CPU/phase "
                             "breakdown, cache state, metrics snapshot) "
                             "after the sweep; gate it with "
                             "python -m repro.obs.baseline")
    parser.add_argument("--sweep-trace-out", default=None, metavar="PATH",
                        help="write every executed point's phase spans as "
                             "one Chrome trace_event JSON with a track per "
                             "worker (open in Perfetto/chrome://tracing)")
    parser.add_argument("--progress", default=None,
                        action=argparse.BooleanOptionalAction,
                        help="live sweep progress line on stderr "
                             "(default: auto — on only when stderr is "
                             "a TTY)")
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help="re-execute a failed sweep point up to N "
                             "times before the sweep reports it "
                             "(default: 0 — fail on first error)")
    parser.add_argument("--point-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="fail the sweep if no point completes for "
                             "SECONDS (parallel sweeps: guards against "
                             "hung simulations; default: wait forever)")
    parser.add_argument("--workload", default="compress",
                        help="sharded-run only: workload to simulate "
                             "(default: compress)")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="sharded-run only: split the run into N "
                             "checkpoint-delimited segments; the first "
                             "(cold) run populates the checkpoint cache "
                             "serially, reruns resume every shard in "
                             "parallel and stitch a bit-identical result "
                             "(default: 4)")
    parser.add_argument("--checkpoint-every", type=int, default=None,
                        metavar="K",
                        help="sharded-run only: emit a checkpoint into "
                             "the result cache every K committed "
                             "instructions (warm-start population "
                             "without sharding)")
    parser.add_argument("--warmup", type=int, default=None, metavar="W",
                        help="sharded-run only: skip the first W "
                             "instructions in the fast functional front "
                             "end before detailed timing (deliberately "
                             "NOT bit-identical to a full run — caches "
                             "start cold at instruction W)")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="write a durable sweep journal (fsync'd "
                             "JSONL write-ahead log) at PATH; an "
                             "existing journal there is rotated aside "
                             "first — use --resume to continue one")
    parser.add_argument("--resume", default=None, metavar="PATH",
                        help="resume an interrupted sweep from its "
                             "journal at PATH: points the journal marks "
                             "done are replayed from the result cache, "
                             "only the remainder re-executes (requires "
                             "the cache; incompatible with --no-cache "
                             "and --journal)")
    return parser


def run_one(name: str, limit, csv_path=None, fault_seed: int = 11,
            drop_prob=None, trace_out=None, metrics_out=None,
            engine=None, workload="compress", shards=None,
            checkpoint_every=None, warmup=None) -> str:
    runner, formatter, exportable = EXPERIMENTS[name]
    if name == "resilience":
        probs = DROP_PROBS if drop_prob is None else (0.0, drop_prob)
        result = run_resilience(limit=limit or 2500, seeds=(fault_seed,),
                                drop_probs=probs)
    elif name == "traced-run":
        result = run_traced(limit=limit or 2500, trace_out=trace_out,
                            metrics_out=metrics_out)
    elif name == "sharded-run":
        result = run_sharded(workload=workload, limit=limit,
                             shards=shards,
                             checkpoint_every=checkpoint_every,
                             warmup=warmup, engine=engine)
    else:
        result = runner(limit, engine)
    if csv_path:
        if not exportable:
            raise SystemExit(f"{name} does not produce exportable rows")
        write_csv(csv_path, result)
    return formatter(result)


def _build_runner(args) -> SweepRunner:
    if args.resume and args.journal:
        raise SystemExit("--resume already appends to the journal at its "
                         "PATH; drop --journal")
    if args.resume and args.no_cache:
        raise SystemExit("--resume replays finished points from the result "
                         "cache; drop --no-cache")
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    journal = None
    if args.resume:
        journal = SweepJournal.resume(args.resume)
        state = journal.state
        print(f"[journal] resuming {args.resume}: {len(state.done)} done, "
              f"{len(state.outstanding())} in flight at interruption, "
              f"{len(state.failed)} failed, "
              f"{len(state.quarantined)} quarantined",
              file=sys.stderr)
    elif args.journal:
        journal = SweepJournal.create(args.journal)
        if journal.rotated:
            print(f"[journal] rotated existing {args.journal} aside",
                  file=sys.stderr)
    telemetry = bool(args.report_out or args.sweep_trace_out)
    return SweepRunner(jobs=args.jobs, cache=cache,
                       progress=args.progress, telemetry=telemetry,
                       timeout=args.point_timeout, retries=args.retries,
                       journal=journal)


def _install_signal_handlers(runner) -> "dict[int, object]":
    """First SIGINT/SIGTERM cancels the sweep gracefully (journal and
    cache keep everything already finished); a second one hard-kills.
    Returns the handlers that were replaced, for restoration."""
    state = {"signals": 0}

    def handler(signum, frame):
        state["signals"] += 1
        if state["signals"] >= 2:
            os._exit(128 + signum)
        runner.request_cancel()
        print(f"\n[sweep] {signal.Signals(signum).name} received — "
              f"stopping at the next scheduler round; completed points "
              f"are journaled (signal again to hard-kill)",
              file=sys.stderr)

    previous: "dict[int, object]" = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, handler)
        except ValueError:
            pass  # not the main thread (embedded callers): no handlers
    return previous


def _restore_signal_handlers(previous: "dict[int, object]") -> None:
    for signum, old in previous.items():
        try:
            signal.signal(signum, old)
        except ValueError:
            pass


def _write_reports(args, sweep_runner, status: str = "complete") -> None:
    """``--report-out`` / ``--sweep-trace-out`` output, after the sweep."""
    if args.report_out:
        from ..runner.manifest import RunManifest

        manifest = RunManifest.from_runner(sweep_runner, status=status)
        manifest.write(args.report_out)
        print(f"{manifest.summary()} -> {args.report_out}",
              file=sys.stderr)
    if args.sweep_trace_out:
        from ..obs.export import write_spans_chrome_trace
        from ..runner.telemetry import worker_tracks

        tracks = worker_tracks(sweep_runner.point_telemetry)
        write_spans_chrome_trace(args.sweep_trace_out, tracks)
        events = sum(len(records) for _, records in tracks)
        print(f"[sweep-trace] {len(tracks)} worker track(s), "
              f"{events} span(s) -> {args.sweep_trace_out}",
              file=sys.stderr)


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    run_all = args.experiment == "all"
    names = sorted(EXPERIMENTS) if run_all else [args.experiment]
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    sweep_runner = _build_runner(args)
    previous = set_default_runner(sweep_runner)
    saved_signals = _install_signal_handlers(sweep_runner)
    failures: "list[tuple[str, BaseException]]" = []
    interrupted = False
    try:
        for name in names:
            try:
                print(run_one(name, args.limit,
                              args.csv if len(names) == 1 else None,
                              fault_seed=args.fault_seed,
                              drop_prob=args.drop_prob,
                              trace_out=args.trace_out,
                              metrics_out=args.metrics_out,
                              engine=args.engine,
                              workload=args.workload,
                              shards=args.shards,
                              checkpoint_every=args.checkpoint_every,
                              warmup=args.warmup))
                print()
            except SweepInterruptedError as exc:
                # Graceful cancellation: everything completed so far is
                # journaled and cached; report, then exit 130 below.
                interrupted = True
                print(f"[interrupted] {name}: {exc}", file=sys.stderr)
                break
            except Exception as exc:
                # Under `all`, one broken experiment must not take the
                # rest of the batch down with it.
                if not run_all:
                    raise
                failures.append((name, exc))
                traceback.print_exc()
                print(f"[failed] {name}: {exc}", file=sys.stderr)
                print()
    finally:
        _restore_signal_handlers(saved_signals)
        set_default_runner(previous)
        if sweep_runner.journal is not None:
            sweep_runner.journal.close()
        if profiler is not None:
            profiler.disable()
            profiler.dump_stats(args.profile)
            print(f"profile written to {args.profile} "
                  f"(inspect with: python -m pstats {args.profile})",
                  file=sys.stderr)
    print(sweep_runner.summary())
    _write_reports(args, sweep_runner,
                   status="interrupted" if interrupted else "complete")
    if interrupted:
        journal_path = args.resume or args.journal
        if journal_path:
            print(f"[sweep] resume with: python -m repro.experiments "
                  f"{args.experiment} --resume {journal_path}",
                  file=sys.stderr)
        return 130
    if failures:
        failed = ", ".join(name for name, _ in failures)
        print(f"[failed] {len(failures)} of {len(names)} experiments: "
              f"{failed}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped into `head`
        sys.exit(0)
