"""Figure 8: sensitivity analysis of the DataScalar experiments.

For go and compress, sweep one machine parameter per panel — data-cache
size, main-memory access time, global bus clock divisor, global bus
width, and RUU entries — plotting the IPC of the same five systems as
Figure 7.  The paper's headline shapes: DataScalar wins consistently;
the systems converge as memory access time dominates; the DataScalar
advantage grows as the off-chip bus slows or narrows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.report import format_ipc, format_table
from .config import timing_bus_config, timing_node_config
from .figure7 import benchmark_points, row_from_chunk

#: The sweepable parameters and their default value grids.
PARAMETERS = {
    "cache_size": [2 * 1024, 4 * 1024, 8 * 1024, 16 * 1024],
    "memory_latency": [4, 8, 16, 32],
    "bus_clock": [2, 4, 8, 16],
    "bus_width": [2, 4, 8, 16],
    "ruu_entries": [16, 64, 256, 1024],
}

#: The two benchmarks the paper sweeps.
FIGURE8_BENCHMARKS = ("go", "compress")


@dataclass
class Figure8Point:
    """IPC of the five systems at one parameter value."""

    benchmark: str
    parameter: str
    value: int
    perfect_ipc: float
    datascalar2_ipc: float
    datascalar4_ipc: float
    traditional_half_ipc: float
    traditional_quarter_ipc: float


@dataclass
class Figure8Panel:
    """One sweep (one sub-plot of Figure 8)."""

    benchmark: str
    parameter: str
    points: "list[Figure8Point]" = field(default_factory=list)


def _configure(parameter: str, value: int):
    """Build (node, bus) configs with ``parameter`` set to ``value``."""
    node_kwargs = {}
    bus_kwargs = {}
    if parameter == "cache_size":
        node_kwargs["dcache_bytes"] = value
    elif parameter == "memory_latency":
        node_kwargs["memory_latency"] = value
    elif parameter == "bus_clock":
        bus_kwargs["cycles_per_bus_cycle"] = value
    elif parameter == "bus_width":
        bus_kwargs["width_bytes"] = value
    elif parameter == "ruu_entries":
        node_kwargs["ruu_entries"] = value
    else:
        raise ValueError(f"unknown Figure 8 parameter {parameter!r}")
    return timing_node_config(**node_kwargs), timing_bus_config(**bus_kwargs)


def _point_from_row(benchmark, parameter, value, row) -> Figure8Point:
    return Figure8Point(
        benchmark=benchmark,
        parameter=parameter,
        value=value,
        perfect_ipc=row.perfect_ipc,
        datascalar2_ipc=row.datascalar2_ipc,
        datascalar4_ipc=row.datascalar4_ipc,
        traditional_half_ipc=row.traditional_half_ipc,
        traditional_quarter_ipc=row.traditional_quarter_ipc,
    )


def _sweep(cells, scale, limit, runner, engine=None):
    """Execute (benchmark, parameter, value) cells as one runner batch
    and yield one :class:`Figure8Point` per cell."""
    from ..runner import get_default_runner

    runner = runner or get_default_runner()
    points = []
    for benchmark, parameter, value in cells:
        node, bus = _configure(parameter, value)
        points.extend(benchmark_points(benchmark, scale=scale, limit=limit,
                                       node=node, bus=bus, engine=engine))
    chunk = len(points) // len(cells) if cells else 1
    results = runner.run(points)
    for index, (benchmark, parameter, value) in enumerate(cells):
        row = row_from_chunk(benchmark,
                             results[index * chunk:(index + 1) * chunk])
        yield _point_from_row(benchmark, parameter, value, row)


def run_panel(benchmark: str, parameter: str, values=None, scale: int = 1,
              limit=None, runner=None, engine=None) -> Figure8Panel:
    """Sweep one parameter for one benchmark."""
    cells = [(benchmark, parameter, value)
             for value in values or PARAMETERS[parameter]]
    panel = Figure8Panel(benchmark=benchmark, parameter=parameter)
    panel.points.extend(_sweep(cells, scale, limit, runner, engine=engine))
    return panel


def run_figure8(benchmarks=FIGURE8_BENCHMARKS, parameters=None,
                scale: int = 1, limit=None, values_per_parameter=None,
                runner=None, engine=None):
    """Regenerate every panel of Figure 8 (all panels' simulations fan
    out as one runner batch)."""
    cells = []
    for benchmark in benchmarks:
        for parameter in parameters or PARAMETERS:
            values = None
            if values_per_parameter:
                values = values_per_parameter.get(parameter)
            for value in values or PARAMETERS[parameter]:
                cells.append((benchmark, parameter, value))
    panels = {}
    for point in _sweep(cells, scale, limit, runner, engine=engine):
        key = (point.benchmark, point.parameter)
        if key not in panels:
            panels[key] = Figure8Panel(benchmark=point.benchmark,
                                       parameter=point.parameter)
        panels[key].points.append(point)
    return list(panels.values())


def format_figure8(panels) -> str:
    blocks = []
    for panel in panels:
        rows = [[point.value,
                 format_ipc(point.perfect_ipc),
                 format_ipc(point.datascalar2_ipc),
                 format_ipc(point.datascalar4_ipc),
                 format_ipc(point.traditional_half_ipc),
                 format_ipc(point.traditional_quarter_ipc)]
                for point in panel.points]
        blocks.append(format_table(
            [panel.parameter, "perfect", "DS 2n", "DS 4n", "trad 1/2",
             "trad 1/4"],
            rows,
            title=f"Figure 8 [{panel.benchmark}] sweep of {panel.parameter}",
        ))
    return "\n\n".join(blocks)
