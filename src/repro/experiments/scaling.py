"""Node-count scaling: how far do broadcasts carry?

Paper Section 4.4: "In general, broadcast operations are both expensive
and not scalable."  DataScalar's saving grace is that its *traffic* does
not grow with node count (each missed line crosses the interconnect
exactly once), but per-chip memory shrinks as 1/N and every node must
consume every broadcast.  This experiment sweeps the node count and
reports IPC, interconnect utilization, and per-node broadcast load for
both DataScalar and the matched traditional system.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.report import format_ipc, format_percent, format_table
from .config import datascalar_config, timing_node_config, \
    traditional_config

#: Default node counts swept.
NODE_COUNTS = (1, 2, 4, 8)


@dataclass
class ScalingPoint:
    """One (benchmark, node count) measurement."""

    benchmark: str
    num_nodes: int
    datascalar_ipc: float
    traditional_ipc: float
    bus_utilization: float
    broadcasts: int

    @property
    def speedup(self) -> float:
        if self.traditional_ipc == 0:
            return 0.0
        return self.datascalar_ipc / self.traditional_ipc


def run_scaling(benchmark: str = "compress", node_counts=NODE_COUNTS,
                scale: int = 1, limit=None, node=None, bus=None,
                interconnect: str = "bus", runner=None, engine=None):
    """Sweep ``node_counts`` for one benchmark.  ``engine`` rides as a
    knob on the DataScalar points (``--engine`` A/B switch)."""
    import dataclasses

    from ..runner import SweepPoint, get_default_runner

    runner = runner or get_default_runner()
    engine_knobs = {} if engine is None else {"engine": engine}
    node = node or timing_node_config()
    sweep = []
    for count in node_counts:
        ds_config = dataclasses.replace(
            datascalar_config(count, node=node, bus=bus),
            interconnect=interconnect)
        sweep.append(SweepPoint.make(
            "datascalar", benchmark, scale=scale, limit=limit,
            config=ds_config, label=f"scaling/{benchmark}/ds{count}",
            **engine_knobs))
        sweep.append(SweepPoint.make(
            "traditional", benchmark, scale=scale, limit=limit,
            config=traditional_config(count, node=node, bus=bus),
            label=f"scaling/{benchmark}/trad{count}"))
    results = runner.run(sweep)
    points = []
    for index, count in enumerate(node_counts):
        ds, trad = results[2 * index], results[2 * index + 1]
        points.append(ScalingPoint(
            benchmark=benchmark,
            num_nodes=count,
            datascalar_ipc=ds.ipc,
            traditional_ipc=trad.ipc,
            bus_utilization=ds.bus_utilization,
            broadcasts=sum(n.broadcasts_sent for n in ds.nodes),
        ))
    return points


def format_scaling(points) -> str:
    benchmark = points[0].benchmark if points else "?"
    return format_table(
        ["nodes", "DataScalar IPC", "traditional IPC", "DS/trad",
         "bus util", "broadcasts"],
        [[p.num_nodes, format_ipc(p.datascalar_ipc),
          format_ipc(p.traditional_ipc), f"{p.speedup:.2f}x",
          format_percent(min(p.bus_utilization, 9.99)), p.broadcasts]
         for p in points],
        title=f"Scaling with node count ({benchmark})",
    )
