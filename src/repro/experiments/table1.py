"""Table 1: off-chip data traffic reduced by ESP.

For each of the fourteen benchmarks, filter the data-reference stream
through the measurement cache (64KB two-way write-allocate write-back)
and report the fraction of off-chip *bytes* and *transactions* that ESP
eliminates by removing request and write traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.report import format_percent, format_table
from ..analysis.traffic import TABLE1_CACHE, measure_esp_traffic
from ..params import CacheConfig
from ..workloads import TABLE_BENCHMARKS

#: A scaled measurement cache for quick runs (the kernels' working sets
#: are scaled down ~100x from SPEC95's, so Table 1's 64KB cache would
#: swallow them whole; 8KB two-way keeps the paper's cache/working-set
#: ratio).
SCALED_CACHE = CacheConfig(size_bytes=8 * 1024, assoc=2, line_size=32,
                           write_policy="writeback", write_allocate=True)


@dataclass
class Table1Row:
    """One benchmark's traffic outcome."""

    benchmark: str
    bytes_eliminated: float
    transactions_eliminated: float
    misses: int
    writebacks: int


def run_table1(benchmarks=None, scale: int = 1, limit=None,
               cache_config: CacheConfig = SCALED_CACHE, runner=None,
               engine=None):
    """Regenerate Table 1.  Pass ``cache_config=TABLE1_CACHE`` and a
    larger ``scale`` for the paper's exact cache configuration.
    ``engine`` selects the functional front end per point."""
    from ..runner import SweepPoint, get_default_runner

    runner = runner or get_default_runner()
    engine_knobs = {} if engine is None else {"engine": engine}
    names = list(benchmarks or TABLE_BENCHMARKS)
    reports = runner.run([
        SweepPoint.make("esp-traffic", name, scale=scale, limit=limit,
                        config=cache_config, label=f"table1/{name}",
                        **engine_knobs)
        for name in names
    ])
    return [
        Table1Row(
            benchmark=name,
            bytes_eliminated=report.bytes_eliminated,
            transactions_eliminated=report.transactions_eliminated,
            misses=report.misses,
            writebacks=report.writebacks,
        )
        for name, report in zip(names, reports)
    ]


def format_table1(rows) -> str:
    """Render the two Table 1 rows (traffic and transactions) per
    benchmark."""
    return format_table(
        ["benchmark", "traffic eliminated", "transactions eliminated",
         "misses", "writebacks"],
        [[row.benchmark,
          format_percent(row.bytes_eliminated),
          format_percent(row.transactions_eliminated),
          row.misses, row.writebacks] for row in rows],
        title="Table 1: off-chip data traffic reduced by ESP",
    )


# Re-export the paper's cache for callers that want the unscaled setup.
PAPER_CACHE = TABLE1_CACHE
