"""Figure 3: pipelined broadcasts versus request/response round trips.

The paper's example: four dependent operands, x1–x3 on one chip and x4 on
another.  A DataScalar system resolves the chain with **two** serialized
off-chip crossings (pipelined broadcasts of x1–x3, a datathread migration
to x4's owner, and the broadcast of x4); a traditional system pays a
request *and* a response per remote operand — **eight** crossings when no
operand is on the requesting chip's quarter of memory.

We reproduce both the analytic crossing counts and a timing-simulation
demonstration with a pointer-chase microbenchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.report import format_table
from ..isa.builder import ProgramBuilder
from ..workloads.common import checksum_slot, store_checksum
from .config import datascalar_config, timing_node_config, traditional_config

PAGE = 4096


def datascalar_crossings(chain_owners) -> int:
    """Serialized off-chip crossings for a dependent chain under ESP:
    one broadcast per datathread migration plus the final broadcast —
    i.e. one crossing per ownership change, plus one."""
    if not chain_owners:
        return 0
    crossings = 1  # the final operand must still reach the other nodes
    for previous, current in zip(chain_owners, chain_owners[1:]):
        if current != previous:
            crossings += 1
    return crossings


def traditional_crossings(chain_owners, local_node=None) -> int:
    """Request + response per operand not on the requesting chip."""
    remote = sum(1 for owner in chain_owners if owner != local_node)
    return 2 * remote


@dataclass
class Figure3Result:
    """Analytic crossings plus measured cycles for the microbenchmark."""

    datascalar_crossings: int
    traditional_crossings: int
    datascalar_cycles: int
    traditional_cycles: int

    @property
    def crossing_ratio(self) -> float:
        return self.traditional_crossings / self.datascalar_crossings


def _chain_program(hops: int = 64, words_per_page: int = PAGE // 4):
    """A pointer chase whose chain walks within a page before hopping to
    the next page — x1..x3 local, x4 remote, repeated."""
    b = ProgramBuilder("figure3")
    pages = 4
    chain = b.alloc_global("chain", pages * PAGE)
    csum = checksum_slot(b)
    # Chain layout: 3 sequential elements per page, then jump pages.
    # The slot stride is chosen so (page, slot) pairs never repeat within
    # the chain — a collision would short-circuit the chase.
    addresses = []
    for hop in range(hops):
        page = (hop // 3) % pages
        slot = (hop * 148) % (PAGE - 256)
        addresses.append(chain + page * PAGE + (slot & ~3))
    if len(set(addresses)) != hops:
        raise ValueError(f"chain of {hops} hops has address collisions")
    for here, there in zip(addresses, addresses[1:]):
        b.init_word(here, there)
    b.init_word(addresses[-1], 0)
    b.li("r1", chain + (addresses[0] - chain))
    b.li("r2", 0)
    loop = b.fresh_label("chase")
    done = b.fresh_label("done")
    b.label(loop)
    b.beq("r1", "r0", done)
    b.add("r2", "r2", "r1")
    b.lw("r1", "r1", 0)
    b.j(loop)
    b.label(done)
    store_checksum(b, csum, "r2")
    b.halt()
    return b.build()


def run_figure3(num_nodes: int = 4, hops: int = 64,
                limit=None, runner=None, engine=None) -> Figure3Result:
    """Regenerate Figure 3: the analytic 2-vs-8 counts for the paper's
    exact example, plus a timing run of the pointer-chase microbenchmark
    on matched systems.  ``engine`` rides as a knob on the DataScalar
    point only (the traditional config has no front-end choice)."""
    from ..runner import SweepPoint, get_default_runner

    runner = runner or get_default_runner()
    engine_knobs = {} if engine is None else {"engine": engine}
    # The paper's example: x1..x3 on chip 0, x4 on chip 1; the requesting
    # traditional chip holds none of them.
    paper_chain = [0, 0, 0, 1]
    analytic_ds = datascalar_crossings(paper_chain)
    analytic_trad = traditional_crossings(paper_chain, local_node=None)
    node = timing_node_config(dcache_bytes=1024)
    ds_result, trad_result = runner.run([
        SweepPoint.make("figure3", limit=limit, hops=hops,
                        config=datascalar_config(num_nodes, node=node),
                        label=f"figure3/ds{num_nodes}", **engine_knobs),
        SweepPoint.make("figure3", limit=limit, hops=hops,
                        config=traditional_config(num_nodes, node=node),
                        label=f"figure3/trad{num_nodes}"),
    ])
    return Figure3Result(
        datascalar_crossings=analytic_ds,
        traditional_crossings=analytic_trad,
        datascalar_cycles=ds_result.cycles,
        traditional_cycles=trad_result.cycles,
    )


def format_figure3(result: Figure3Result) -> str:
    table = format_table(
        ["system", "serialized off-chip crossings", "chase cycles"],
        [["DataScalar", result.datascalar_crossings,
          result.datascalar_cycles],
         ["traditional", result.traditional_crossings,
          result.traditional_cycles]],
        title="Figure 3: dependent-chain off-chip serialization",
    )
    return (f"{table}\n(the paper's example: 2 vs 8 crossings; ratio "
            f"{result.crossing_ratio:.1f}x)")
