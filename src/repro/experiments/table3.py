"""Table 3: DataScalar broadcast statistics (two-node runs).

Three columns per benchmark: the percentage of broadcasts issued late
(at commit, repairing false hits), the percentage of BSHR accesses that
were squashes, and the percentage of remote accesses that found their
data already waiting in the BSHR (evidence of datathreading).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.report import format_percent, format_table
from ..workloads import TIMING_BENCHMARKS
from .config import datascalar_config, timing_node_config


@dataclass
class Table3Row:
    """One benchmark's broadcast statistics."""

    benchmark: str
    late_broadcasts: float
    bshr_squashes: float
    found_in_bshr: float
    total_broadcasts: int
    false_hits: int
    false_misses: int


def row_from_result(name: str, result) -> Table3Row:
    """Extract the Table 3 columns from a DataScalar run result."""
    return Table3Row(
        benchmark=name,
        late_broadcasts=result.late_broadcast_fraction,
        bshr_squashes=result.bshr_squash_fraction,
        found_in_bshr=result.found_in_bshr_fraction,
        total_broadcasts=sum(n.broadcasts_sent for n in result.nodes),
        false_hits=sum(n.false_hits for n in result.nodes),
        false_misses=sum(n.false_misses for n in result.nodes),
    )


def run_table3(benchmarks=None, scale: int = 1, limit=None,
               num_nodes: int = 2, node=None, runner=None, engine=None):
    """Regenerate Table 3 from fresh two-node runs.  ``engine`` rides as
    a knob on the points (``--engine`` A/B switch)."""
    from ..runner import SweepPoint, get_default_runner

    runner = runner or get_default_runner()
    engine_knobs = {} if engine is None else {"engine": engine}
    node = node or timing_node_config()
    names = list(benchmarks or TIMING_BENCHMARKS)
    results = runner.run([
        SweepPoint.make("datascalar", name, scale=scale, limit=limit,
                        config=datascalar_config(num_nodes, node=node),
                        label=f"table3/{name}", **engine_knobs)
        for name in names
    ])
    return [row_from_result(name, result)
            for name, result in zip(names, results)]


def format_table3(rows) -> str:
    return format_table(
        ["benchmark", "late broadcasts", "BSHR squashes", "found in BSHR",
         "broadcasts", "false hits", "false misses"],
        [[r.benchmark, format_percent(r.late_broadcasts),
          format_percent(r.bshr_squashes), format_percent(r.found_in_bshr),
          r.total_broadcasts, r.false_hits, r.false_misses] for r in rows],
        title="Table 3: DataScalar broadcast statistics",
    )
