"""Table 2: approximate datathread measurements for a four-processor
system.

Per benchmark: profile page accesses, statically replicate the hottest
pages, distribute the rest round-robin in the largest block that still
splits every segment, then measure mean datathread lengths over the
post-cache miss stream — for all references, instruction references,
data references, and contiguous replicated-page references.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.report import format_table
from ..core.datathread import DatathreadAnalyzer
from ..core.replication import plan_replication
from ..isa.interpreter import Interpreter
from ..isa.trace import IFETCH
from ..memory.address import Segment
from ..memory.cache import Cache
from ..memory.layout import LayoutSpec, build_page_table
from ..params import CacheConfig
from ..workloads import TABLE_BENCHMARKS, build_program

#: Post-profile measurement caches (split I/D, scaled like Table 1's).
#: The instruction cache is deliberately small so the scaled kernels'
#: loop bodies still generate an instruction miss stream to measure.
MEASUREMENT_ICACHE = CacheConfig(size_bytes=1024, assoc=2, line_size=32)
MEASUREMENT_DCACHE = CacheConfig(size_bytes=4 * 1024, assoc=2, line_size=32,
                                 write_policy="writeback",
                                 write_allocate=True)


@dataclass
class Table2Row:
    """One benchmark's Table 2 line."""

    benchmark: str
    distribution_kb: float
    replicated_text: int
    replicated_global: int
    replicated_heap: int
    replicated_stack: int
    thread_all: float
    thread_text: float
    thread_data: float
    replicated_run: float


def _thread_length(report) -> float:
    """Mean datathread length, honoring the paper's boundary case: a
    stream whose references are all local to one node (e.g. fully
    replicated) is one unbroken thread whose length is the number of
    references."""
    if report.runs == 0 and report.references > 0:
        return float(report.references)
    return report.mean_length


def measure_datathreads(name: str, scale: int = 1, num_nodes: int = 4,
                        budget_pages: int = 6, page_size: int = 1024,
                        limit=None) -> Table2Row:
    """One benchmark's Table 2 measurement (the ``datathread`` sweep
    executor): plan replication, lay out pages, then walk the post-cache
    miss stream through three datathread analyzers."""
    program = build_program(name, scale)
    plan = plan_replication(program, page_size, num_nodes,
                            budget_pages, limit=limit)
    spec = LayoutSpec(
        num_nodes=num_nodes,
        page_size=page_size,
        distribution_block_pages=plan.distribution_block_pages,
        replicate_text=False,  # Table 2 replicates by profile only
        replicated_pages=plan.replicated_pages,
    )
    table, _summary = build_page_table(program, spec)
    all_refs = DatathreadAnalyzer(table)
    text_refs = DatathreadAnalyzer(table)
    data_refs = DatathreadAnalyzer(table)
    icache = Cache(MEASUREMENT_ICACHE, name="t2i")
    dcache = Cache(MEASUREMENT_DCACHE, name="t2d")
    interp = Interpreter(program)
    for ref in interp.mem_refs(limit=limit, include_ifetch=True):
        if ref.kind == IFETCH:
            result = icache.commit_access(ref.addr, is_write=False)
            if not result.hit:
                all_refs.observe(ref.addr)
                text_refs.observe(ref.addr)
        else:
            result = dcache.commit_access(ref.addr,
                                          is_write=(ref.kind == "W"))
            if not result.hit:
                all_refs.observe(ref.addr)
                data_refs.observe(ref.addr)
    report_all = all_refs.finish()
    report_text = text_refs.finish()
    report_data = data_refs.finish()
    by_segment = plan.replicated_by_segment()
    return Table2Row(
        benchmark=name,
        distribution_kb=plan.distribution_block_pages * page_size / 1024,
        replicated_text=by_segment[Segment.TEXT],
        replicated_global=by_segment[Segment.GLOBAL],
        replicated_heap=by_segment[Segment.HEAP],
        replicated_stack=by_segment[Segment.STACK],
        thread_all=_thread_length(report_all),
        thread_text=_thread_length(report_text),
        thread_data=_thread_length(report_data),
        replicated_run=report_all.mean_replicated_length,
    )


def run_table2(benchmarks=None, scale: int = 1, num_nodes: int = 4,
               budget_pages: int = 6, page_size: int = 1024, limit=None,
               runner=None):
    """Regenerate Table 2 for ``num_nodes`` processors.

    ``page_size`` defaults to 1KB — the scaled stand-in for the paper's
    8KB pages against MB-scale working sets."""
    from ..runner import SweepPoint, get_default_runner

    runner = runner or get_default_runner()
    points = [
        SweepPoint.make(
            "datathread", name, scale=scale, limit=limit,
            num_nodes=num_nodes, budget_pages=budget_pages,
            page_size=page_size, label=f"table2/{name}",
        )
        for name in (benchmarks or TABLE_BENCHMARKS)
    ]
    return runner.run(points)


def format_table2(rows) -> str:
    return format_table(
        ["benchmark", "dist KB", "r.text", "r.glob", "r.heap", "r.stack",
         "thread(all)", "thread(text)", "thread(data)", "repl.run"],
        [[r.benchmark, r.distribution_kb, r.replicated_text,
          r.replicated_global, r.replicated_heap, r.replicated_stack,
          r.thread_all, r.thread_text, r.thread_data, r.replicated_run]
         for r in rows],
        title="Table 2: approximate datathread measurements (4 processors)",
    )
