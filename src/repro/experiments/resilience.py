"""Resilience sweep: slowdown and recovery cost vs. broadcast loss rate.

No paper analogue — this experiment exercises the unreliable-broadcast
layer (:mod:`repro.faults`): the same workload is run fault-free and
then under increasing per-receiver drop probability (with proportional
corruption, jitter, and stall rates), and every faulty run is checked
against the fault-free architectural signature.  The observable is
*graceful degradation*: identical committed work, bounded slowdown, and
recovery traffic that is visible, not hidden.

Reproducibility: each point records its fault seed; the same seed and
configuration always reproduces the identical fault schedule and result.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..analysis.report import format_table, render_bars
from ..params import FaultConfig
from .config import datascalar_config

#: Swept per-receiver drop probabilities (0.0 is the fault-free anchor).
DROP_PROBS = (0.0, 1e-4, 1e-3, 1e-2, 5e-2)


@dataclass
class ResiliencePoint:
    """One (drop probability, seed) cell of the sweep."""

    workload: str
    interconnect: str
    drop_prob: float
    seed: int
    cycles: int
    slowdown: float            # vs. the fault-free run
    injected: int
    recovered: int
    retry_high_water: int
    recovery_latency_p95: float
    bus_utilization: float     # includes the recovery channel's share
    identical_architecture: bool


def _signature(result):
    """The timing-independent outcome a faulty run must reproduce."""
    return (
        result.instructions,
        tuple((node.pipeline.committed, node.pipeline.loads,
               node.pipeline.stores, node.dropped_stores)
              for node in result.nodes),
    )


def fault_config_for(drop_prob: float, seed: int) -> FaultConfig:
    """The sweep's fault mix at one drop probability: per-receiver drops
    at ``drop_prob``, corruption at half that, jitter at double, and
    occasional transient stalls."""
    return FaultConfig(
        seed=seed,
        receiver_drop_prob=drop_prob,
        corrupt_prob=drop_prob / 2,
        jitter_prob=min(1.0, drop_prob * 2),
        stall_prob=drop_prob / 2,
    )


def run_resilience(limit=2500, num_nodes: int = 4,
                   workload: str = "compress", seeds=(11,),
                   drop_probs=DROP_PROBS,
                   interconnect: str = "bus",
                   runner=None) -> "list[ResiliencePoint]":
    """Sweep drop probability (× seeds) on one workload.

    Every cell (the fault-free anchor included) is one sweep point; the
    seed rides inside the config's :class:`~repro.params.FaultConfig`,
    so distinct seeds address distinct cache entries."""
    from ..runner import SweepPoint, get_default_runner

    runner = runner or get_default_runner()
    base_config = dataclasses.replace(
        datascalar_config(num_nodes), interconnect=interconnect)
    cells = [(drop_prob, seed)
             for drop_prob in drop_probs for seed in seeds]
    sweep = [SweepPoint.make("datascalar", workload, limit=limit,
                             config=base_config,
                             label=f"resilience/{workload}/p0")]
    for drop_prob, seed in cells:
        if drop_prob == 0.0:
            continue
        config = dataclasses.replace(
            base_config, faults=fault_config_for(drop_prob, seed))
        sweep.append(SweepPoint.make(
            "datascalar", workload, limit=limit, config=config,
            label=f"resilience/{workload}/p{drop_prob:g}/s{seed}"))
    results = runner.run(sweep)
    baseline = results[0]
    base_signature = _signature(baseline)
    faulty = iter(results[1:])
    points = []
    for drop_prob, seed in cells:
        if drop_prob == 0.0:
            result, faults = baseline, None
        else:
            result = next(faulty)
            faults = result.extra["faults"]
        recovery = faults["recovery"] if faults else {}
        points.append(ResiliencePoint(
            workload=workload,
            interconnect=interconnect,
            drop_prob=drop_prob,
            seed=seed if faults else 0,
            cycles=result.cycles,
            slowdown=result.cycles / baseline.cycles,
            injected=faults["injected"]["injected"] if faults else 0,
            recovered=recovery.get("recovered", 0),
            retry_high_water=recovery.get("retry_high_water", 0),
            recovery_latency_p95=(
                recovery.get("latency", {}).get("p95", 0.0)),
            bus_utilization=result.bus_utilization,
            identical_architecture=_signature(result) == base_signature,
        ))
    return points


def format_resilience(points) -> str:
    headers = ["drop prob", "seed", "cycles", "slowdown", "injected",
               "recovered", "retry max", "p95 lat", "bus util",
               "arch ok"]
    rows = [
        [f"{p.drop_prob:g}", p.seed, p.cycles, p.slowdown, p.injected,
         p.recovered, p.retry_high_water, p.recovery_latency_p95,
         p.bus_utilization, "yes" if p.identical_architecture else "NO"]
        for p in points
    ]
    table = format_table(
        headers, rows,
        title=(f"Resilience: {points[0].workload} / "
               f"{points[0].interconnect} — slowdown vs. drop probability"
               if points else "Resilience sweep"))
    seen = set()
    series = []  # one bar per drop probability (first seed of each)
    for point in points:
        if point.drop_prob not in seen:
            seen.add(point.drop_prob)
            series.append(point)
    bars = render_bars(
        [f"p={p.drop_prob:g}" for p in series],
        [p.slowdown for p in series],
        title="slowdown vs. fault-free (×)", unit="x")
    return f"{table}\n\n{bars}"
