"""Configuration dataclasses for every simulated subsystem.

Defaults follow Section 4.2 of the paper: an 8-wide, 1 GHz out-of-order
processor with a 256-entry RUU and a load/store queue half that size;
split 16KB direct-mapped single-cycle L1 caches (write-back,
write-noallocate data cache); fast on-chip main memory (8 ns banks); and a
narrow off-chip bus clocked several times slower than the processor.

All latencies are expressed in *processor cycles*; helpers convert from
nanoseconds at the configured clock.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from .errors import ConfigError

#: Number of bytes per machine word (integer registers, LW/SW accesses).
WORD_SIZE = 4
#: Number of bytes per floating-point double (LD/SD accesses).
DOUBLE_SIZE = 8


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class CPUConfig:
    """Out-of-order core parameters (paper Section 4.2)."""

    fetch_width: int = 8
    issue_width: int = 8
    commit_width: int = 8
    ruu_entries: int = 256
    #: Load/store queue entries; the paper uses half the RUU size.
    lsq_entries: int = 128
    clock_ghz: float = 1.0
    #: True (default): loads bypass earlier stores to other addresses as
    #: soon as their operands are ready (oracle disambiguation — the
    #: trace supplies exact addresses).  False: a load waits until every
    #: earlier store has issued (conservative disambiguation).
    oracle_disambiguation: bool = True
    #: Branch handling: ``"perfect"`` (the paper's assumption), or a real
    #: predictor — ``"static"``, ``"bimodal"``, ``"gshare"`` — whose
    #: mispredictions stall fetch until the branch resolves plus the
    #: redirect penalty.
    branch_predictor: str = "perfect"
    #: Fetch-redirect penalty after a misprediction resolves.
    misprediction_penalty: int = 6
    #: Functional-unit latencies in cycles, keyed by operation class name.
    fu_latencies: dict = field(
        default_factory=lambda: {
            "IALU": 1,
            "IMULT": 3,
            "IDIV": 12,
            "FADD": 2,
            "FMULT": 4,
            "FDIV": 12,
            "BRANCH": 1,
            "AGEN": 1,
        }
    )
    #: Functional-unit counts per class; ``None`` entries mean unlimited.
    fu_counts: dict = field(
        default_factory=lambda: {
            "IALU": 8,
            "IMULT": 2,
            "IDIV": 2,
            "FADD": 4,
            "FMULT": 2,
            "FDIV": 2,
            "BRANCH": 8,
            "AGEN": 8,
        }
    )

    def __post_init__(self) -> None:
        _require(self.fetch_width > 0, "fetch_width must be positive")
        _require(self.issue_width > 0, "issue_width must be positive")
        _require(self.commit_width > 0, "commit_width must be positive")
        _require(self.ruu_entries > 0, "ruu_entries must be positive")
        _require(self.lsq_entries > 0, "lsq_entries must be positive")
        _require(
            self.lsq_entries <= self.ruu_entries,
            "lsq_entries may not exceed ruu_entries",
        )
        _require(self.clock_ghz > 0, "clock_ghz must be positive")
        _require(
            self.branch_predictor in ("perfect", "static", "bimodal",
                                      "gshare"),
            "branch_predictor must be perfect/static/bimodal/gshare",
        )
        _require(self.misprediction_penalty >= 0,
                 "misprediction_penalty must be >= 0")

    def ns_to_cycles(self, nanoseconds: float) -> int:
        """Convert a latency in nanoseconds to whole processor cycles."""
        cycles = nanoseconds * self.clock_ghz
        return max(1, int(round(cycles)))

    def scaled(self, ruu_entries: int) -> "CPUConfig":
        """Return a copy with a different window size (LSQ stays RUU/2)."""
        return dataclasses.replace(
            self, ruu_entries=ruu_entries, lsq_entries=max(1, ruu_entries // 2)
        )


@dataclass(frozen=True)
class CacheConfig:
    """One level-one cache (paper: 16KB direct-mapped, single cycle)."""

    size_bytes: int = 16 * 1024
    assoc: int = 1
    line_size: int = 32
    hit_latency: int = 1
    #: ``"writeback"`` or ``"writethrough"``.
    write_policy: str = "writeback"
    #: ``"allocate"`` or ``"noallocate"`` on write misses.  The paper argues
    #: write-noallocate is superior under ESP (Section 4.2).
    write_allocate: bool = False

    def __post_init__(self) -> None:
        _require(_is_pow2(self.line_size), "line_size must be a power of two")
        _require(_is_pow2(self.assoc), "assoc must be a power of two")
        _require(
            self.size_bytes % (self.line_size * self.assoc) == 0,
            "size_bytes must be a multiple of line_size * assoc",
        )
        _require(
            _is_pow2(self.size_bytes // (self.line_size * self.assoc)),
            "number of sets must be a power of two",
        )
        _require(self.hit_latency >= 1, "hit_latency must be >= 1")
        _require(
            self.write_policy in ("writeback", "writethrough"),
            "write_policy must be 'writeback' or 'writethrough'",
        )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_size * self.assoc)


@dataclass(frozen=True)
class MemoryConfig:
    """Main-memory timing (paper: 8 ns on-chip banks; slower off-chip)."""

    onchip_latency: int = 8
    offchip_latency: int = 24
    #: Number of independently-addressed on-chip banks.
    num_banks: int = 8
    #: Virtual-memory page size; Table 2 uses 8KB pages.
    page_size: int = 4096

    def __post_init__(self) -> None:
        _require(self.onchip_latency >= 1, "onchip_latency must be >= 1")
        _require(self.offchip_latency >= 1, "offchip_latency must be >= 1")
        _require(self.num_banks >= 1, "num_banks must be >= 1")
        _require(_is_pow2(self.page_size), "page_size must be a power of two")


@dataclass(frozen=True)
class BusConfig:
    """The global off-chip bus shared by all nodes.

    The paper's off-chip bus is 8 bytes wide and clocked several processor
    cycles per bus cycle; the network interface adds a two-cycle penalty in
    both the DataScalar (broadcast queue) and traditional (request queue)
    systems.
    """

    width_bytes: int = 8
    #: Processor cycles per bus cycle (Figure 8 sweeps this).
    cycles_per_bus_cycle: int = 4
    #: Cycles spent in the network-interface queue before any transfer.
    interface_latency: int = 2
    #: Bus cycles consumed by arbitration before each transaction.
    arbitration_bus_cycles: int = 1
    #: Bytes of addressing/tag overhead carried by each broadcast or request
    #: (asynchronous ESP must ship an address/tag with every broadcast).
    tag_bytes: int = 8

    def __post_init__(self) -> None:
        _require(_is_pow2(self.width_bytes), "width_bytes must be a power of two")
        _require(self.cycles_per_bus_cycle >= 1, "cycles_per_bus_cycle must be >= 1")
        _require(self.interface_latency >= 0, "interface_latency must be >= 0")
        _require(self.arbitration_bus_cycles >= 0, "arbitration must be >= 0")
        _require(self.tag_bytes >= 0, "tag_bytes must be >= 0")

    def transfer_cycles(self, payload_bytes: int) -> int:
        """Processor cycles to move ``payload_bytes`` (+tag) across the bus."""
        total = payload_bytes + self.tag_bytes
        bus_cycles = (total + self.width_bytes - 1) // self.width_bytes
        bus_cycles += self.arbitration_bus_cycles
        return bus_cycles * self.cycles_per_bus_cycle


@dataclass(frozen=True)
class BSHRConfig:
    """Broadcast Status Holding Registers (paper Section 4.2, Figure 5)."""

    entries: int = 128
    access_latency: int = 2

    def __post_init__(self) -> None:
        _require(self.entries >= 1, "entries must be >= 1")
        _require(self.access_latency >= 0, "access_latency must be >= 0")


@dataclass(frozen=True)
class FaultConfig:
    """Seeded unreliable-broadcast injection and the recovery protocol.

    ESP is request-free: a consumer *trusts* that the owner's broadcast
    will arrive, so a lost or corrupted broadcast would deadlock every
    non-owner.  This config drives :class:`repro.faults.FaultyMedium`,
    which wraps any broadcast medium, deterministically injects faults
    from a seeded RNG, and models the recovery slow path (sequence-gap
    detection, NACKs, retransmit requests with bounded exponential
    backoff).  All probabilities are evaluated per broadcast (or per
    receiver per broadcast); the same seed and config always produce the
    identical fault schedule.
    """

    #: RNG seed; recorded in ``DataScalarResult.extra["faults"]["seed"]``.
    seed: int = 0
    #: Probability the whole broadcast is lost on the medium (no receiver
    #: gets it).
    drop_prob: float = 0.0
    #: Per-receiver probability of losing an otherwise-delivered
    #: broadcast (e.g. a receive-queue overrun at one node).
    receiver_drop_prob: float = 0.0
    #: Per-receiver probability the payload arrives with an
    #: ECC-detectable corruption (NACKed and retransmitted).
    corrupt_prob: float = 0.0
    #: Per-receiver probability of extra delivery jitter.
    jitter_prob: float = 0.0
    #: Maximum extra cycles of jitter (uniform in ``1..max_jitter``).
    max_jitter: int = 16
    #: Probability one receiver's port transiently stalls this broadcast.
    stall_prob: float = 0.0
    #: Extra cycles a stalled receiver's delivery is delayed.
    stall_cycles: int = 32
    #: Cycles past the due arrival before a receiver escalates a missing
    #: broadcast (sequence-gap / BSHR-timeout detection bound) into an
    #: explicit retransmit request — the recovery-only request path.
    bshr_timeout: int = 64
    #: Base backoff after a failed retransmit attempt, doubled (by
    #: ``backoff_factor``) per attempt.
    retry_backoff: int = 32
    backoff_factor: int = 2
    #: Failed retransmit attempts tolerated before the run dies with
    #: :class:`repro.errors.RecoveryExhaustedError`.
    max_retries: int = 8
    #: Corrupted arrivals are NACKed and retransmitted; with this off an
    #: ECC failure is fatal (:class:`repro.errors.CorruptionError`).
    nack_enabled: bool = True
    #: Cycles a BSHR wait may remain unfilled before the run aborts with
    #: :class:`repro.errors.BroadcastLostError` (a tripwire for silent
    #: delivery-contract violations; generous, so legitimate waits behind
    #: a congested bus never trip it).
    wait_deadline: int = 500_000

    def __post_init__(self) -> None:
        for name in ("drop_prob", "receiver_drop_prob", "corrupt_prob",
                     "jitter_prob", "stall_prob"):
            value = getattr(self, name)
            _require(0.0 <= value <= 1.0, f"{name} must be in [0, 1]")
        _require(self.max_jitter >= 1, "max_jitter must be >= 1")
        _require(self.stall_cycles >= 1, "stall_cycles must be >= 1")
        _require(self.bshr_timeout >= 1, "bshr_timeout must be >= 1")
        _require(self.retry_backoff >= 0, "retry_backoff must be >= 0")
        _require(self.backoff_factor >= 1, "backoff_factor must be >= 1")
        _require(self.max_retries >= 1, "max_retries must be >= 1")
        _require(self.wait_deadline >= 1, "wait_deadline must be >= 1")

    @property
    def injects_anything(self) -> bool:
        """True when any fault category can actually fire."""
        return (self.drop_prob > 0 or self.receiver_drop_prob > 0
                or self.corrupt_prob > 0 or self.jitter_prob > 0
                or self.stall_prob > 0)


@dataclass(frozen=True)
class NodeConfig:
    """Everything on one DataScalar chip (Figure 5 datapath)."""

    cpu: CPUConfig = field(default_factory=CPUConfig)
    icache: CacheConfig = field(default_factory=CacheConfig)
    dcache: CacheConfig = field(default_factory=CacheConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    bshr: BSHRConfig = field(default_factory=BSHRConfig)
    #: Cycles a broadcast waits in the outbound queue (paper: two).
    broadcast_queue_latency: int = 2
    #: Hold every broadcast until the initiating load commits.  This is
    #: the conservative speculative-broadcast discipline the paper
    #: sketches ("buffer speculative broadcasts at the network interface
    #: ... allow them to proceed only when they were determined to be
    #: correct") — required when running with a real branch predictor.
    commit_time_broadcasts: bool = False
    #: Data-TLB entries; 0 disables translation modeling (the default —
    #: the paper's single-level locked page table makes walks one local
    #: memory access, charged on TLB misses when enabled).
    tlb_entries: int = 0

    def __post_init__(self) -> None:
        _require(
            self.broadcast_queue_latency >= 0,
            "broadcast_queue_latency must be >= 0",
        )
        _require(self.tlb_entries >= 0, "tlb_entries must be >= 0")


@dataclass(frozen=True)
class SystemConfig:
    """A complete DataScalar machine: N identical nodes on one bus."""

    num_nodes: int = 2
    node: NodeConfig = field(default_factory=NodeConfig)
    bus: BusConfig = field(default_factory=BusConfig)
    #: Communicated pages are distributed round-robin in blocks of this many
    #: pages (Table 2 varies this per benchmark).
    distribution_block_pages: int = 4
    #: Replicate the program text at every node (the paper's simulated
    #: implementation does, obviating an instruction correspondence protocol).
    replicate_text: bool = True
    #: Maximum dynamically-simulated instructions before giving up.
    max_cycles: int = 200_000_000
    #: Skip provably idle cycle ranges (identical results, less wall
    #: clock).  Dense per-cycle ticking is used regardless whenever an
    #: ``observer`` is installed.  Disable to force dense ticking.
    fast_forward: bool = True
    #: Enable the Section 5.1 result-communication extension.
    result_communication: bool = False
    #: Broadcast transport: ``"bus"`` (the paper's evaluated transport),
    #: ``"ring"`` (SCI-style), or ``"optical"`` (free-space, contention-
    #: free) — Section 4.4's candidates.
    interconnect: str = "bus"
    #: Optional unified L2 per node: dynamic replication moves to the
    #: second level (the paper's footnote 4 alternative).  ``None``
    #: keeps the paper's L1-only scheme.
    l2: "CacheConfig | None" = None
    #: Optional unreliable-broadcast injection (:class:`FaultConfig`).
    #: ``None`` (the default) leaves the transport perfect and the
    #: simulator bit-identical to a build without the fault layer.
    faults: "FaultConfig | None" = None
    #: Functional front end feeding the shared trace fan-out:
    #: ``"interpreter"`` (predecoded closures), ``"codegen"``
    #: (program-specialized generated Python,
    #: :mod:`repro.isa.codegen`), or ``"auto"`` — codegen whenever the
    #: program is supported, interpreter otherwise.  Results are
    #: bit-identical either way; only wall clock changes.
    engine: str = "auto"

    def __post_init__(self) -> None:
        _require(self.num_nodes >= 1, "num_nodes must be >= 1")
        _require(
            self.engine in ("auto", "interpreter", "codegen"),
            "engine must be auto/interpreter/codegen",
        )
        _require(
            self.distribution_block_pages >= 1,
            "distribution_block_pages must be >= 1",
        )
        _require(self.max_cycles > 0, "max_cycles must be positive")
        _require(
            self.interconnect in ("bus", "ring", "optical"),
            "interconnect must be bus/ring/optical",
        )


@dataclass(frozen=True)
class TraditionalConfig:
    """The Figure 6(a) comparison system: one CPU, 1/N of memory on-chip.

    The off-chip portion is reached by request/response transactions over
    the same bus the DataScalar system uses for broadcasts, and cache tags
    are likewise updated at commit for a fair comparison.
    """

    node: NodeConfig = field(default_factory=NodeConfig)
    bus: BusConfig = field(default_factory=BusConfig)
    #: Fraction of main memory that is on-chip, expressed as 1/denominator.
    onchip_fraction_denom: int = 2
    distribution_block_pages: int = 4
    replicate_text: bool = True
    max_cycles: int = 200_000_000

    def __post_init__(self) -> None:
        _require(
            self.onchip_fraction_denom >= 1,
            "onchip_fraction_denom must be >= 1",
        )
        _require(
            self.distribution_block_pages >= 1,
            "distribution_block_pages must be >= 1",
        )
        _require(self.max_cycles > 0, "max_cycles must be positive")
