"""Program container: instructions, labels, and initial memory image."""

from __future__ import annotations

from ..errors import AssemblyError
from ..memory.address import (
    GLOBAL_BASE,
    HEAP_BASE,
    INSTRUCTION_BYTES,
    STACK_BASE,
    TEXT_BASE,
)
from .instruction import Instruction
from .opcodes import Opcode


class Program:
    """A finalized program ready for interpretation.

    A program owns its static instruction list, resolved branch targets,
    an initial data image (address -> value), and bookkeeping about how
    much of each segment it allocated (used by the address-space layout
    logic to size the distributed memory).
    """

    def __init__(
        self,
        instructions: "list[Instruction]",
        labels: "dict[str, int]",
        data_image: "dict[int, object]",
        global_top: int = GLOBAL_BASE,
        heap_top: int = HEAP_BASE,
        name: str = "program",
    ):
        self.instructions = instructions
        self.labels = dict(labels)
        self.data_image = dict(data_image)
        self.global_top = global_top
        self.heap_top = heap_top
        self.name = name
        self._resolve_targets()

    def _resolve_targets(self) -> None:
        """Replace label-name targets with absolute instruction indexes."""
        for index, instr in enumerate(self.instructions):
            if isinstance(instr.target, str):
                if instr.target not in self.labels:
                    raise AssemblyError(
                        f"undefined label {instr.target!r} at instruction "
                        f"{index} of {self.name}"
                    )
                instr.target = self.labels[instr.target]
        for label, where in self.labels.items():
            if not 0 <= where <= len(self.instructions):
                raise AssemblyError(
                    f"label {label!r} resolves outside program {self.name}"
                )

    def __len__(self) -> int:
        return len(self.instructions)

    def pc_of(self, index: int) -> int:
        """Text-segment address of the instruction at ``index``."""
        return TEXT_BASE + index * INSTRUCTION_BYTES

    def index_of_pc(self, pc: int) -> int:
        """Instruction index for a text-segment address."""
        return (pc - TEXT_BASE) // INSTRUCTION_BYTES

    @property
    def text_bytes(self) -> int:
        """Size of the text segment in bytes."""
        return len(self.instructions) * INSTRUCTION_BYTES

    @property
    def global_bytes(self) -> int:
        """Bytes allocated in the global segment."""
        return self.global_top - GLOBAL_BASE

    @property
    def heap_bytes(self) -> int:
        """Bytes allocated in the heap segment."""
        return self.heap_top - HEAP_BASE

    def segment_extents(self, stack_bytes: int = 64 * 1024) -> "dict":
        """Half-open address ranges actually used by this program.

        ``stack_bytes`` bounds the stack region attributed to the program,
        since stack growth is dynamic.
        """
        from ..memory.address import STACK_TOP, Segment

        return {
            Segment.TEXT: (TEXT_BASE, TEXT_BASE + max(self.text_bytes, 1)),
            Segment.GLOBAL: (GLOBAL_BASE, GLOBAL_BASE + max(self.global_bytes, 1)),
            Segment.HEAP: (HEAP_BASE, HEAP_BASE + max(self.heap_bytes, 1)),
            Segment.STACK: (max(STACK_BASE, STACK_TOP - stack_bytes), STACK_TOP),
        }

    def validate(self) -> None:
        """Sanity-check the program; raises :class:`AssemblyError`."""
        if not self.instructions:
            raise AssemblyError(f"program {self.name} has no instructions")
        if not any(i.op is Opcode.HALT for i in self.instructions):
            raise AssemblyError(f"program {self.name} never halts")
        for index, instr in enumerate(self.instructions):
            if isinstance(instr.target, str):
                raise AssemblyError(
                    f"unresolved target at instruction {index} of {self.name}"
                )

    def __repr__(self) -> str:
        return (
            f"<Program {self.name}: {len(self.instructions)} instrs, "
            f"{self.global_bytes}B global, {self.heap_bytes}B heap>"
        )
