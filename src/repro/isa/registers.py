"""Register-file naming and encoding.

Registers are encoded as small integers: integer registers ``r0``–``r31``
map to 0–31 (with ``r0`` hard-wired to zero) and floating-point registers
``f0``–``f31`` map to 32–63.  The timing model treats the encoding as a
flat logical-register namespace for dependence tracking.
"""

from __future__ import annotations

from ..errors import AssemblyError

#: Total number of logical registers (32 integer + 32 floating point).
NUM_REGS = 64
#: Encoding of the hard-wired zero register.
ZERO = 0
#: Conventional stack pointer.
SP = 29
#: Conventional frame/global pointer (free for workload use).
GP = 28
#: Conventional return-address register (written by JAL).
RA = 31
#: Offset added to a floating-point register number.
FP_BASE = 32


def encode(name: str) -> int:
    """Translate a register name (``"r7"`` or ``"f3"``) to its encoding."""
    if not name or name[0] not in ("r", "f") or not name[1:].isdigit():
        raise AssemblyError(f"bad register name {name!r}")
    number = int(name[1:])
    if not 0 <= number < 32:
        raise AssemblyError(f"register number out of range in {name!r}")
    return number if name[0] == "r" else FP_BASE + number


def decode(reg: int) -> str:
    """Translate a register encoding back to its name."""
    if not 0 <= reg < NUM_REGS:
        raise AssemblyError(f"register encoding {reg} out of range")
    if reg < FP_BASE:
        return f"r{reg}"
    return f"f{reg - FP_BASE}"


def is_fp(reg: int) -> bool:
    """True when ``reg`` encodes a floating-point register."""
    return reg >= FP_BASE
