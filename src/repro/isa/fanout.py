"""Shared dynamic-trace fan-out for SPSD simulation.

Every DataScalar node executes the *identical* dynamic instruction
stream (the paper's serial-program, single-dataset model), so running
one functional interpreter per node interprets the same program N times.
:class:`TraceFanout` runs the interpreter **once** and tees its
:class:`~repro.isa.trace.DynInstr` records to N consumer views, cutting
interpretation cost from O(N·I) to O(I).

The views are plain iterators, so they drop into ``Pipeline`` unchanged.
Records are shared by reference: the timing models treat ``DynInstr`` as
immutable (systems that rewrite per-node streams — result communication
— keep their own interpreters via the ``_make_trace`` hook instead).

Each view owns a private pending queue (the ``itertools.tee`` shape):
the view that runs ahead pulls a record from the source and appends it
to every *other* view's queue, so both the buffered-read path and the
produce path are O(1) — no shared ring indexing, no trim scans.
Consumers advance at different paces, but never further apart than one
instruction window: a pipeline pulls a record only when it has RUU space
to dispatch it, so a queue's natural high-water mark is about
``ruu_entries + fetch_width``.  The capacity bound exists to turn a
protocol bug (one node wedged while others stream ahead) into a loud
error instead of unbounded memory growth.
"""

from __future__ import annotations

from collections import deque

from ..errors import SimulationError

#: Default per-view queue capacity — far above any legal window-bounded
#: lag.
DEFAULT_CAPACITY = 65_536


class TraceFanout:
    """Tee one dynamic-instruction stream to ``num_views`` consumers."""

    def __init__(self, source, num_views: int,
                 capacity: int = DEFAULT_CAPACITY):
        if num_views < 1:
            raise SimulationError("TraceFanout needs at least one view")
        if capacity < 1:
            raise SimulationError("TraceFanout capacity must be >= 1")
        self._source = iter(source)
        self._queues = [deque() for _ in range(num_views)]
        #: Per view, the queues of every *other* view (the append
        #: targets when this view produces) — precomputed so the
        #: per-record produce loop carries no index comparisons.
        self._others = [
            [q for j, q in enumerate(self._queues) if j != i]
            for i in range(num_views)
        ]
        self._produced = 0  # records pulled from the source so far
        self._exhausted = False
        self.capacity = capacity
        self.high_water = 0

    # ------------------------------------------------------------------
    # Consumer protocol (a view whose queue ran dry calls this).
    # ------------------------------------------------------------------
    def _produce_for(self, view_id: int):
        """Pull one source record for ``view_id`` (whose queue is empty)
        and buffer it for every other view."""
        if self._exhausted:
            raise StopIteration
        try:
            record = next(self._source)
        except StopIteration:
            self._exhausted = True
            raise
        self._produced += 1
        depth = 0
        for queue in self._others[view_id]:
            queue.append(record)
            if len(queue) > depth:
                depth = len(queue)
        if depth > self.high_water:
            self.high_water = depth
            if depth > self.capacity:
                raise SimulationError(
                    f"TraceFanout queue exceeded {self.capacity} records "
                    f"— one consumer is wedged (lags={self.lags()})"
                )
        return record

    def lags(self) -> "list[int]":
        """Records each view still has buffered (0 = fully caught up)."""
        return [len(queue) for queue in self._queues]

    def views(self) -> "list":
        """One iterator per consumer, in view-id order."""
        return [_TraceView(self, i) for i in range(len(self._queues))]


class _TraceView:
    """One consumer's iterator over the shared stream."""

    __slots__ = ("_fanout", "_view_id", "_queue")

    def __init__(self, fanout: TraceFanout, view_id: int):
        self._fanout = fanout
        self._view_id = view_id
        self._queue = fanout._queues[view_id]

    def __iter__(self):
        return self

    def __next__(self):
        queue = self._queue
        if queue:
            return queue.popleft()
        return self._fanout._produce_for(self._view_id)


class CountingTrace:
    """Iterator wrapper that counts delivered records.

    Checkpoint-enabled runs wrap every front-end view in one of these so
    a snapshot can record the exact functional position of each node —
    the count is all that is needed to rebuild any view (fan-out or
    single-iterator) by replay on restore.  The wrapper hides the
    fan-out view's ``_queue``, so ``Pipeline`` falls back from its
    queue fast path to the plain iterator protocol; that cost is
    confined to runs that asked for checkpointing.
    """

    __slots__ = ("_next", "consumed")

    def __init__(self, trace):
        self._next = iter(trace).__next__
        self.consumed = 0

    def __iter__(self):
        return self

    def __next__(self):
        record = self._next()
        # Not reached when the source raises StopIteration, so the
        # count never includes the exhausted probe.
        self.consumed += 1
        return record


def fan_out(source, num_views: int, capacity: int = DEFAULT_CAPACITY):
    """Convenience: return ``num_views`` iterators over ``source``.

    A single view bypasses the tee entirely — the source iterator is
    returned as-is.
    """
    if num_views == 1:
        return [iter(source)]
    return TraceFanout(source, num_views, capacity=capacity).views()
