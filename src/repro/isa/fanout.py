"""Shared dynamic-trace fan-out for SPSD simulation.

Every DataScalar node executes the *identical* dynamic instruction
stream (the paper's serial-program, single-dataset model), so running
one functional interpreter per node interprets the same program N times.
:class:`TraceFanout` runs the interpreter **once** and tees its
:class:`~repro.isa.trace.DynInstr` records to N consumer views through a
bounded ring buffer, cutting interpretation cost from O(N·I) to O(I).

The views are plain iterators, so they drop into ``Pipeline`` unchanged.
Records are shared by reference: the timing models treat ``DynInstr`` as
immutable (systems that rewrite per-node streams — result communication
— keep their own interpreters via the ``_make_trace`` hook instead).

Consumers advance at different paces, but never further apart than one
instruction window: a pipeline pulls a record only when it has RUU space
to dispatch it, so the buffer's natural high-water mark is about
``ruu_entries + fetch_width``.  The capacity bound exists to turn a
protocol bug (one node wedged while others stream ahead) into a loud
error instead of unbounded memory growth.
"""

from __future__ import annotations

from collections import deque

from ..errors import SimulationError

#: Default ring capacity — far above any legal window-bounded lag.
DEFAULT_CAPACITY = 65_536


class TraceFanout:
    """Tee one dynamic-instruction stream to ``num_views`` consumers."""

    def __init__(self, source, num_views: int,
                 capacity: int = DEFAULT_CAPACITY):
        if num_views < 1:
            raise SimulationError("TraceFanout needs at least one view")
        if capacity < 1:
            raise SimulationError("TraceFanout capacity must be >= 1")
        self._source = iter(source)
        self._buffer = deque()
        self._base = 0  # stream position of _buffer[0]
        self._produced = 0  # records pulled from the source so far
        self._positions = [0] * num_views
        self._exhausted = False
        self.capacity = capacity
        self.high_water = 0

    # ------------------------------------------------------------------
    # Consumer protocol (one view calls this per record).
    # ------------------------------------------------------------------
    def _next_for(self, view_id: int):
        position = self._positions[view_id]
        if position == self._produced:
            if self._exhausted:
                raise StopIteration
            try:
                record = next(self._source)
            except StopIteration:
                self._exhausted = True
                raise
            if len(self._buffer) >= self.capacity:
                raise SimulationError(
                    f"TraceFanout ring exceeded {self.capacity} records — "
                    f"one consumer is wedged (positions={self._positions})"
                )
            self._buffer.append(record)
            self._produced += 1
            if len(self._buffer) > self.high_water:
                self.high_water = len(self._buffer)
        else:
            record = self._buffer[position - self._base]
        self._positions[view_id] = position + 1
        if position == self._base:
            self._trim()
        return record

    def _trim(self) -> None:
        """Drop records every view has consumed (laggard advanced)."""
        oldest = min(self._positions)
        buffer = self._buffer
        while self._base < oldest and buffer:
            buffer.popleft()
            self._base += 1

    def views(self) -> "list":
        """One iterator per consumer, in view-id order."""
        return [_TraceView(self, i) for i in range(len(self._positions))]


class _TraceView:
    """One consumer's iterator over the shared stream."""

    __slots__ = ("_fanout", "_view_id")

    def __init__(self, fanout: TraceFanout, view_id: int):
        self._fanout = fanout
        self._view_id = view_id

    def __iter__(self):
        return self

    def __next__(self):
        return self._fanout._next_for(self._view_id)


def fan_out(source, num_views: int, capacity: int = DEFAULT_CAPACITY):
    """Convenience: return ``num_views`` iterators over ``source``.

    A single view bypasses the ring entirely — the source iterator is
    returned as-is.
    """
    if num_views == 1:
        return [iter(source)]
    return TraceFanout(source, num_views, capacity=capacity).views()
