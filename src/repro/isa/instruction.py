"""The static instruction representation shared by builder and assembler."""

from __future__ import annotations

from .opcodes import OP_CLASS, Opcode
from . import registers


class Instruction:
    """One static instruction.

    Fields use register encodings (see :mod:`repro.isa.registers`).  For
    branches, ``target`` holds a label name until the program is finalized,
    after which it holds the absolute instruction index.
    """

    __slots__ = ("op", "rd", "rs1", "rs2", "imm", "target")

    def __init__(self, op, rd=None, rs1=None, rs2=None, imm=None, target=None):
        self.op = op
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = imm
        self.target = target

    @property
    def op_class(self):
        """Scheduling class of this instruction."""
        return OP_CLASS[self.op]

    def sources(self) -> "tuple[int, ...]":
        """Logical source registers (zero register excluded)."""
        srcs = []
        if self.rs1 is not None and self.rs1 != registers.ZERO:
            srcs.append(self.rs1)
        if self.rs2 is not None and self.rs2 != registers.ZERO:
            srcs.append(self.rs2)
        return tuple(srcs)

    def destination(self):
        """Logical destination register, or ``None``."""
        if self.rd is None or self.rd == registers.ZERO:
            return None
        return self.rd

    def __repr__(self) -> str:
        parts = [self.op.name.lower()]
        if self.rd is not None:
            parts.append(registers.decode(self.rd))
        if self.rs1 is not None:
            parts.append(registers.decode(self.rs1))
        if self.rs2 is not None:
            parts.append(registers.decode(self.rs2))
        if self.imm is not None:
            parts.append(str(self.imm))
        if self.target is not None:
            parts.append(f"->{self.target}")
        return f"<{' '.join(parts)}>"


def make_nop() -> Instruction:
    """Return a fresh NOP instruction."""
    return Instruction(Opcode.NOP)
