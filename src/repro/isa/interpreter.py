"""Functional interpreter for the simulated ISA.

This is the execution-driven front end: it runs programs to completion,
optionally emitting a dynamic-instruction trace (for the timing models) or
a bare memory-reference stream (for the cache-filter studies of paper
Sections 3.1 and 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ExecutionError
from ..memory.address import INSTRUCTION_BYTES, STACK_TOP, TEXT_BASE
from .opcodes import OP_CLASS, Opcode
from .program import Program
from .registers import NUM_REGS, SP, ZERO
from .trace import IFETCH, READ, WRITE, DynInstr, MemRef

_U64 = (1 << 64) - 1
_S63 = 1 << 63


def _to_signed(value: int) -> int:
    """Wrap an integer into signed 64-bit range."""
    value &= _U64
    return value - (1 << 64) if value >= _S63 else value


def _trunc_div(a: int, b: int) -> int:
    """C-style division truncating toward zero."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _trunc_rem(a: int, b: int) -> int:
    """C-style remainder (sign of the dividend)."""
    return a - b * _trunc_div(a, b)


@dataclass
class ExecResult:
    """Outcome of a functional run."""

    instructions: int
    halted: bool
    registers: list
    loads: int
    stores: int


class Interpreter:
    """Executes one :class:`Program` functionally.

    The interpreter is restartable: construct a fresh one per run.  Memory
    is a sparse dictionary keyed by byte address; every (address, size)
    slot is accessed consistently by well-formed programs.
    """

    def __init__(self, program: Program, max_instructions: int = 100_000_000):
        program.validate()
        self.program = program
        self.max_instructions = max_instructions
        self.registers = [0] * NUM_REGS
        for fp in range(32, NUM_REGS):
            self.registers[fp] = 0.0
        self.registers[SP] = STACK_TOP - 16
        self.memory = dict(program.data_image)
        self._code = self._compile(program)
        self.instructions_executed = 0
        self.loads = 0
        self.stores = 0
        self.halted = False

    @staticmethod
    def _compile(program: Program):
        """Flatten instructions into tuples for a fast dispatch loop."""
        code = []
        for instr in program.instructions:
            code.append(
                (int(instr.op), instr.rd, instr.rs1, instr.rs2, instr.imm,
                 instr.target)
            )
        return code

    # ------------------------------------------------------------------
    # Core step.  Returns (next_index, mem_kind, address, size) where
    # mem_kind is None for non-memory instructions.
    # ------------------------------------------------------------------
    def _exec_one(self, index: int):
        op, rd, rs1, rs2, imm, target = self._code[index]
        regs = self.registers
        nxt = index + 1
        kind = None
        addr = 0
        size = 0

        if op <= int(Opcode.SLT):  # register-register integer ALU
            a = regs[rs1]
            b = regs[rs2]
            if op == Opcode.ADD:
                value = a + b
            elif op == Opcode.SUB:
                value = a - b
            elif op == Opcode.MUL:
                value = _to_signed(a * b)
            elif op == Opcode.DIV:
                if b == 0:
                    raise ExecutionError(f"divide by zero at index {index}")
                value = _trunc_div(a, b)
            elif op == Opcode.REM:
                if b == 0:
                    raise ExecutionError(f"remainder by zero at index {index}")
                value = _trunc_rem(a, b)
            elif op == Opcode.AND:
                value = a & b
            elif op == Opcode.OR:
                value = a | b
            elif op == Opcode.XOR:
                value = a ^ b
            elif op == Opcode.SLL:
                value = _to_signed(a << (b & 63))
            elif op == Opcode.SRL:
                value = (a & _U64) >> (b & 63)
            elif op == Opcode.SRA:
                value = a >> (b & 63)
            else:  # SLT
                value = 1 if a < b else 0
            if rd != ZERO:
                regs[rd] = value
        elif op <= int(Opcode.MOV):  # immediate integer ALU
            if op == Opcode.LI:
                value = imm
            elif op == Opcode.MOV:
                value = regs[rs1]
            else:
                a = regs[rs1]
                if op == Opcode.ADDI:
                    value = a + imm
                elif op == Opcode.ANDI:
                    value = a & imm
                elif op == Opcode.ORI:
                    value = a | imm
                elif op == Opcode.XORI:
                    value = a ^ imm
                elif op == Opcode.SLLI:
                    value = _to_signed(a << (imm & 63))
                elif op == Opcode.SRLI:
                    value = (a & _U64) >> (imm & 63)
                else:  # SLTI
                    value = 1 if a < imm else 0
            if rd != ZERO:
                regs[rd] = value
        elif op <= int(Opcode.SD):  # memory
            addr = regs[rs1] + imm
            if op == Opcode.LW or op == Opcode.LB or op == Opcode.LD:
                size = 4 if op == Opcode.LW else (1 if op == Opcode.LB else 8)
                if addr % size:
                    raise ExecutionError(
                        f"unaligned load of {size} at {addr:#x} (index {index})"
                    )
                default = 0.0 if op == Opcode.LD else 0
                if rd != ZERO:
                    regs[rd] = self.memory.get(addr, default)
                kind = READ
                self.loads += 1
            else:
                size = 4 if op == Opcode.SW else (1 if op == Opcode.SB else 8)
                if addr % size:
                    raise ExecutionError(
                        f"unaligned store of {size} at {addr:#x} (index {index})"
                    )
                value = regs[rs2]
                if op == Opcode.SB:
                    value &= 0xFF
                self.memory[addr] = value
                kind = WRITE
                self.stores += 1
        elif op <= int(Opcode.CVTFI):  # floating point
            if op == Opcode.FADD:
                value = regs[rs1] + regs[rs2]
            elif op == Opcode.FSUB:
                value = regs[rs1] - regs[rs2]
            elif op == Opcode.FMUL:
                value = regs[rs1] * regs[rs2]
            elif op == Opcode.FDIV:
                divisor = regs[rs2]
                if divisor == 0.0:
                    raise ExecutionError(f"fp divide by zero at index {index}")
                value = regs[rs1] / divisor
            elif op == Opcode.FNEG:
                value = -regs[rs1]
            elif op == Opcode.FMOV:
                value = regs[rs1]
            elif op == Opcode.FCLT:
                value = 1 if regs[rs1] < regs[rs2] else 0
            elif op == Opcode.CVTIF:
                value = float(regs[rs1])
            else:  # CVTFI
                value = int(regs[rs1])
            if rd != ZERO:
                regs[rd] = value
        else:  # control
            if op == Opcode.BEQ:
                if regs[rs1] == regs[rs2]:
                    nxt = target
            elif op == Opcode.BNE:
                if regs[rs1] != regs[rs2]:
                    nxt = target
            elif op == Opcode.BLT:
                if regs[rs1] < regs[rs2]:
                    nxt = target
            elif op == Opcode.BGE:
                if regs[rs1] >= regs[rs2]:
                    nxt = target
            elif op == Opcode.BLE:
                if regs[rs1] <= regs[rs2]:
                    nxt = target
            elif op == Opcode.BGT:
                if regs[rs1] > regs[rs2]:
                    nxt = target
            elif op == Opcode.J:
                nxt = target
            elif op == Opcode.JAL:
                if rd != ZERO:
                    regs[rd] = TEXT_BASE + (index + 1) * INSTRUCTION_BYTES
                nxt = target
            elif op == Opcode.JR:
                pc = regs[rs1]
                nxt, mis = divmod(pc - TEXT_BASE, INSTRUCTION_BYTES)
                if mis or not 0 <= nxt < len(self._code):
                    raise ExecutionError(f"JR to bad pc {pc:#x} (index {index})")
            elif op == Opcode.HALT:
                self.halted = True
            # NOP falls through.
        return nxt, kind, addr, size

    # ------------------------------------------------------------------
    # Public run modes.
    # ------------------------------------------------------------------
    def run(self, limit=None) -> ExecResult:
        """Execute functionally with no per-instruction records."""
        for _ in self._indices(limit):
            pass
        return self.result()

    def indices(self, limit=None):
        """Drive execution, yielding the static instruction index of each
        retired instruction — the cheapest dynamic-path stream (used by
        the branch-prediction survey)."""
        return self._indices(limit)

    def _indices(self, limit=None):
        """Drive execution, yielding the index of each retired instruction."""
        limit = self.max_instructions if limit is None else limit
        index = 0
        code_len = len(self._code)
        while not self.halted:
            if self.instructions_executed >= limit:
                break
            if not 0 <= index < code_len:
                raise ExecutionError(f"fell off program at index {index}")
            current = index
            index, _, _, _ = self._exec_one(current)
            self.instructions_executed += 1
            yield current

    def trace(self, limit=None):
        """Generate :class:`DynInstr` records for the timing models."""
        limit = self.max_instructions if limit is None else limit
        index = 0
        code_len = len(self._code)
        instructions = self.program.instructions
        seq = 0
        from .opcodes import CONDITIONAL_BRANCHES

        while not self.halted and seq < limit:
            if not 0 <= index < code_len:
                raise ExecutionError(f"fell off program at index {index}")
            instr = instructions[index]
            pc = TEXT_BASE + index * INSTRUCTION_BYTES
            previous = index
            index, kind, addr, size = self._exec_one(index)
            self.instructions_executed += 1
            is_cond = instr.op in CONDITIONAL_BRANCHES
            yield DynInstr(
                seq,
                pc,
                int(OP_CLASS[instr.op]),
                instr.destination(),
                instr.sources(),
                addr if kind else None,
                size,
                taken=is_cond and index != previous + 1,
                is_cond_branch=is_cond,
            )
            seq += 1

    def mem_refs(self, limit=None, include_ifetch=True):
        """Generate bare :class:`MemRef` records (cache-filter studies)."""
        limit = self.max_instructions if limit is None else limit
        index = 0
        code_len = len(self._code)
        while not self.halted and self.instructions_executed < limit:
            if not 0 <= index < code_len:
                raise ExecutionError(f"fell off program at index {index}")
            pc = TEXT_BASE + index * INSTRUCTION_BYTES
            index, kind, addr, size = self._exec_one(index)
            self.instructions_executed += 1
            if include_ifetch:
                yield MemRef(IFETCH, pc, INSTRUCTION_BYTES, pc)
            if kind is not None:
                yield MemRef(kind, addr, size, pc)

    def result(self) -> ExecResult:
        """Snapshot the run outcome."""
        return ExecResult(
            instructions=self.instructions_executed,
            halted=self.halted,
            registers=list(self.registers),
            loads=self.loads,
            stores=self.stores,
        )

    def read_word(self, address: int) -> int:
        """Read a word from simulated memory (post-run inspection)."""
        return self.memory.get(address, 0)

    def read_double(self, address: int) -> float:
        """Read a double from simulated memory (post-run inspection)."""
        return self.memory.get(address, 0.0)


def run_program(program: Program, limit=None) -> ExecResult:
    """Convenience: run ``program`` functionally and return the result."""
    return Interpreter(program).run(limit)
