"""Functional interpreter for the simulated ISA.

This is the execution-driven front end: it runs programs to completion,
optionally emitting a dynamic-instruction trace (for the timing models) or
a bare memory-reference stream (for the cache-filter studies of paper
Sections 3.1 and 3.2).

Dispatch is predecoded: construction compiles every static instruction
into a zero-argument closure with its operand fields, fall-through
successor, and error text bound at compile time, so the hot loop is one
list index and one call per retired instruction instead of a long
opcode ``if``/``elif`` chain.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ExecutionError
from ..memory.address import INSTRUCTION_BYTES, STACK_TOP, TEXT_BASE
from .opcodes import CONDITIONAL_BRANCHES, OP_CLASS, Opcode
from .program import Program
from .registers import NUM_REGS, SP, ZERO
from .trace import IFETCH, READ, WRITE, DynInstr, MemRef

_U64 = (1 << 64) - 1
_S63 = 1 << 63


def _to_signed(value: int) -> int:
    """Wrap an integer into signed 64-bit range."""
    value &= _U64
    return value - (1 << 64) if value >= _S63 else value


def _trunc_div(a: int, b: int) -> int:
    """C-style division truncating toward zero."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _trunc_rem(a: int, b: int) -> int:
    """C-style remainder (sign of the dividend)."""
    return a - b * _trunc_div(a, b)


@dataclass
class ExecResult:
    """Outcome of a functional run."""

    instructions: int
    halted: bool
    registers: list
    loads: int
    stores: int


class Interpreter:
    """Executes one :class:`Program` functionally.

    The interpreter is restartable: construct a fresh one per run.  Memory
    is a sparse dictionary keyed by byte address; every (address, size)
    slot is accessed consistently by well-formed programs.
    """

    def __init__(self, program: Program, max_instructions: int = 100_000_000):
        program.validate()
        self.program = program
        self.max_instructions = max_instructions
        self.registers = [0] * NUM_REGS
        for fp in range(32, NUM_REGS):
            self.registers[fp] = 0.0
        self.registers[SP] = STACK_TOP - 16
        self.memory = dict(program.data_image)
        self._code = self._compile(program)
        #: Per-index static record fields for :meth:`trace`:
        #: ``(pc, op_class, dest, srcs, is_cond_branch)``.
        self._meta = [
            (TEXT_BASE + i * INSTRUCTION_BYTES, int(OP_CLASS[ins.op]),
             ins.destination(), ins.sources(), ins.op in CONDITIONAL_BRANCHES)
            for i, ins in enumerate(program.instructions)
        ]
        self.instructions_executed = 0
        self.loads = 0
        self.stores = 0
        self.halted = False

    def _compile(self, program):
        """Predecode every instruction into an execution closure.

        Each closure performs one retired instruction against the live
        register file and memory image and returns ``(next_index,
        mem_kind, address, size)`` — ``mem_kind`` is ``None`` for
        non-memory instructions.  Non-memory closures return a tuple
        frozen at compile time, so the steady state allocates nothing.
        """
        code_len = len(program.instructions)
        return [self._compile_one(index, instr, code_len)
                for index, instr in enumerate(program.instructions)]

    def _compile_one(self, index: int, instr, code_len: int):
        op = instr.op
        rd, rs1, rs2 = instr.rd, instr.rs1, instr.rs2
        imm, target = instr.imm, instr.target
        regs = self.registers
        memory = self.memory
        fall = (index + 1, None, 0, 0)
        writes = rd is not None and rd != ZERO

        # ---------------- integer register-register ALU ----------------
        if op == Opcode.ADD:
            if writes:
                def step():
                    regs[rd] = regs[rs1] + regs[rs2]
                    return fall
            else:
                def step():
                    return fall
        elif op == Opcode.SUB:
            if writes:
                def step():
                    regs[rd] = regs[rs1] - regs[rs2]
                    return fall
            else:
                def step():
                    return fall
        elif op == Opcode.MUL:
            if writes:
                def step():
                    regs[rd] = _to_signed(regs[rs1] * regs[rs2])
                    return fall
            else:
                def step():
                    return fall
        elif op == Opcode.DIV:
            def step():
                b = regs[rs2]
                if b == 0:
                    raise ExecutionError(f"divide by zero at index {index}")
                value = _trunc_div(regs[rs1], b)
                if writes:
                    regs[rd] = value
                return fall
        elif op == Opcode.REM:
            def step():
                b = regs[rs2]
                if b == 0:
                    raise ExecutionError(
                        f"remainder by zero at index {index}")
                value = _trunc_rem(regs[rs1], b)
                if writes:
                    regs[rd] = value
                return fall
        elif op == Opcode.AND:
            if writes:
                def step():
                    regs[rd] = regs[rs1] & regs[rs2]
                    return fall
            else:
                def step():
                    return fall
        elif op == Opcode.OR:
            if writes:
                def step():
                    regs[rd] = regs[rs1] | regs[rs2]
                    return fall
            else:
                def step():
                    return fall
        elif op == Opcode.XOR:
            if writes:
                def step():
                    regs[rd] = regs[rs1] ^ regs[rs2]
                    return fall
            else:
                def step():
                    return fall
        elif op == Opcode.SLL:
            if writes:
                def step():
                    regs[rd] = _to_signed(regs[rs1] << (regs[rs2] & 63))
                    return fall
            else:
                def step():
                    return fall
        elif op == Opcode.SRL:
            if writes:
                def step():
                    regs[rd] = (regs[rs1] & _U64) >> (regs[rs2] & 63)
                    return fall
            else:
                def step():
                    return fall
        elif op == Opcode.SRA:
            if writes:
                def step():
                    regs[rd] = regs[rs1] >> (regs[rs2] & 63)
                    return fall
            else:
                def step():
                    return fall
        elif op == Opcode.SLT:
            if writes:
                def step():
                    regs[rd] = 1 if regs[rs1] < regs[rs2] else 0
                    return fall
            else:
                def step():
                    return fall
        # ---------------- immediate integer ALU ----------------
        elif op == Opcode.LI:
            if writes:
                def step():
                    regs[rd] = imm
                    return fall
            else:
                def step():
                    return fall
        elif op == Opcode.MOV:
            if writes:
                def step():
                    regs[rd] = regs[rs1]
                    return fall
            else:
                def step():
                    return fall
        elif op == Opcode.ADDI:
            if writes:
                def step():
                    regs[rd] = regs[rs1] + imm
                    return fall
            else:
                def step():
                    return fall
        elif op == Opcode.ANDI:
            if writes:
                def step():
                    regs[rd] = regs[rs1] & imm
                    return fall
            else:
                def step():
                    return fall
        elif op == Opcode.ORI:
            if writes:
                def step():
                    regs[rd] = regs[rs1] | imm
                    return fall
            else:
                def step():
                    return fall
        elif op == Opcode.XORI:
            if writes:
                def step():
                    regs[rd] = regs[rs1] ^ imm
                    return fall
            else:
                def step():
                    return fall
        elif op == Opcode.SLLI:
            shift = imm & 63
            if writes:
                def step():
                    regs[rd] = _to_signed(regs[rs1] << shift)
                    return fall
            else:
                def step():
                    return fall
        elif op == Opcode.SRLI:
            shift = imm & 63
            if writes:
                def step():
                    regs[rd] = (regs[rs1] & _U64) >> shift
                    return fall
            else:
                def step():
                    return fall
        elif op == Opcode.SLTI:
            if writes:
                def step():
                    regs[rd] = 1 if regs[rs1] < imm else 0
                    return fall
            else:
                def step():
                    return fall
        # ---------------- memory ----------------
        elif op in (Opcode.LW, Opcode.LB, Opcode.LD):
            size = 4 if op == Opcode.LW else (1 if op == Opcode.LB else 8)
            default = 0.0 if op == Opcode.LD else 0
            nxt = index + 1

            def step():
                addr = regs[rs1] + imm
                if addr % size:
                    raise ExecutionError(
                        f"unaligned load of {size} at {addr:#x} "
                        f"(index {index})"
                    )
                if writes:
                    regs[rd] = memory.get(addr, default)
                self.loads += 1
                return (nxt, READ, addr, size)
        elif op in (Opcode.SW, Opcode.SB, Opcode.SD):
            size = 4 if op == Opcode.SW else (1 if op == Opcode.SB else 8)
            masked = op == Opcode.SB
            nxt = index + 1

            def step():
                addr = regs[rs1] + imm
                if addr % size:
                    raise ExecutionError(
                        f"unaligned store of {size} at {addr:#x} "
                        f"(index {index})"
                    )
                value = regs[rs2]
                if masked:
                    value &= 0xFF
                memory[addr] = value
                self.stores += 1
                return (nxt, WRITE, addr, size)
        # ---------------- floating point ----------------
        elif op == Opcode.FADD:
            if writes:
                def step():
                    regs[rd] = regs[rs1] + regs[rs2]
                    return fall
            else:
                def step():
                    return fall
        elif op == Opcode.FSUB:
            if writes:
                def step():
                    regs[rd] = regs[rs1] - regs[rs2]
                    return fall
            else:
                def step():
                    return fall
        elif op == Opcode.FMUL:
            if writes:
                def step():
                    regs[rd] = regs[rs1] * regs[rs2]
                    return fall
            else:
                def step():
                    return fall
        elif op == Opcode.FDIV:
            def step():
                divisor = regs[rs2]
                if divisor == 0.0:
                    raise ExecutionError(
                        f"fp divide by zero at index {index}")
                value = regs[rs1] / divisor
                if writes:
                    regs[rd] = value
                return fall
        elif op == Opcode.FNEG:
            if writes:
                def step():
                    regs[rd] = -regs[rs1]
                    return fall
            else:
                def step():
                    return fall
        elif op == Opcode.FMOV:
            if writes:
                def step():
                    regs[rd] = regs[rs1]
                    return fall
            else:
                def step():
                    return fall
        elif op == Opcode.FCLT:
            if writes:
                def step():
                    regs[rd] = 1 if regs[rs1] < regs[rs2] else 0
                    return fall
            else:
                def step():
                    return fall
        elif op == Opcode.CVTIF:
            if writes:
                def step():
                    regs[rd] = float(regs[rs1])
                    return fall
            else:
                def step():
                    return fall
        elif op == Opcode.CVTFI:
            if writes:
                def step():
                    regs[rd] = int(regs[rs1])
                    return fall
            else:
                def step():
                    return fall
        # ---------------- control ----------------
        elif op in CONDITIONAL_BRANCHES:
            taken = (target, None, 0, 0)
            if op == Opcode.BEQ:
                def step():
                    return taken if regs[rs1] == regs[rs2] else fall
            elif op == Opcode.BNE:
                def step():
                    return taken if regs[rs1] != regs[rs2] else fall
            elif op == Opcode.BLT:
                def step():
                    return taken if regs[rs1] < regs[rs2] else fall
            elif op == Opcode.BGE:
                def step():
                    return taken if regs[rs1] >= regs[rs2] else fall
            elif op == Opcode.BLE:
                def step():
                    return taken if regs[rs1] <= regs[rs2] else fall
            else:  # BGT
                def step():
                    return taken if regs[rs1] > regs[rs2] else fall
        elif op == Opcode.J:
            jump = (target, None, 0, 0)

            def step():
                return jump
        elif op == Opcode.JAL:
            jump = (target, None, 0, 0)
            link = TEXT_BASE + (index + 1) * INSTRUCTION_BYTES
            if writes:
                def step():
                    regs[rd] = link
                    return jump
            else:
                def step():
                    return jump
        elif op == Opcode.JR:
            def step():
                pc = regs[rs1]
                nxt, mis = divmod(pc - TEXT_BASE, INSTRUCTION_BYTES)
                if mis or not 0 <= nxt < code_len:
                    raise ExecutionError(
                        f"JR to bad pc {pc:#x} (index {index})")
                return (nxt, None, 0, 0)
        elif op == Opcode.HALT:
            def step():
                self.halted = True
                return fall
        else:  # NOP
            def step():
                return fall
        return step

    # ------------------------------------------------------------------
    # Core step.  Returns (next_index, mem_kind, address, size) where
    # mem_kind is None for non-memory instructions.
    # ------------------------------------------------------------------
    def _exec_one(self, index: int):
        return self._code[index]()

    # ------------------------------------------------------------------
    # Public run modes.
    # ------------------------------------------------------------------
    def run(self, limit=None) -> ExecResult:
        """Execute functionally with no per-instruction records."""
        for _ in self._indices(limit):
            pass
        return self.result()

    def indices(self, limit=None):
        """Drive execution, yielding the static instruction index of each
        retired instruction — the cheapest dynamic-path stream (used by
        the branch-prediction survey)."""
        return self._indices(limit)

    def _indices(self, limit=None):
        """Drive execution, yielding the index of each retired instruction."""
        limit = self.max_instructions if limit is None else limit
        index = 0
        code = self._code
        code_len = len(code)
        while not self.halted:
            if self.instructions_executed >= limit:
                break
            if not 0 <= index < code_len:
                raise ExecutionError(f"fell off program at index {index}")
            current = index
            index = code[current]()[0]
            self.instructions_executed += 1
            yield current

    def trace(self, limit=None):
        """Generate :class:`DynInstr` records for the timing models."""
        limit = self.max_instructions if limit is None else limit
        index = 0
        code = self._code
        code_len = len(code)
        meta = self._meta
        seq = 0

        while not self.halted and seq < limit:
            if not 0 <= index < code_len:
                raise ExecutionError(f"fell off program at index {index}")
            pc, op_class, dest, srcs, is_cond = meta[index]
            previous = index
            index, kind, addr, size = code[index]()
            self.instructions_executed += 1
            yield DynInstr(
                seq,
                pc,
                op_class,
                dest,
                srcs,
                addr if kind else None,
                size,
                taken=is_cond and index != previous + 1,
                is_cond_branch=is_cond,
            )
            seq += 1

    def mem_refs(self, limit=None, include_ifetch=True):
        """Generate bare :class:`MemRef` records (cache-filter studies)."""
        limit = self.max_instructions if limit is None else limit
        index = 0
        code = self._code
        code_len = len(code)
        while not self.halted and self.instructions_executed < limit:
            if not 0 <= index < code_len:
                raise ExecutionError(f"fell off program at index {index}")
            pc = TEXT_BASE + index * INSTRUCTION_BYTES
            index, kind, addr, size = code[index]()
            self.instructions_executed += 1
            if include_ifetch:
                yield MemRef(IFETCH, pc, INSTRUCTION_BYTES, pc)
            if kind is not None:
                yield MemRef(kind, addr, size, pc)

    def result(self) -> ExecResult:
        """Snapshot the run outcome."""
        return ExecResult(
            instructions=self.instructions_executed,
            halted=self.halted,
            registers=list(self.registers),
            loads=self.loads,
            stores=self.stores,
        )

    def read_word(self, address: int) -> int:
        """Read a word from simulated memory (post-run inspection)."""
        return self.memory.get(address, 0)

    def read_double(self, address: int) -> float:
        """Read a double from simulated memory (post-run inspection)."""
        return self.memory.get(address, 0.0)


def run_program(program: Program, limit=None) -> ExecResult:
    """Convenience: run ``program`` functionally and return the result."""
    return Interpreter(program).run(limit)
