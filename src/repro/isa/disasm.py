"""Disassembler: programs back to assembler-compatible text.

Round-trips with :mod:`repro.isa.assembler` for every instruction form,
which the test suite uses as a cross-check of both components.
"""

from __future__ import annotations

from . import registers
from .opcodes import CONDITIONAL_BRANCHES, Opcode
from .program import Program

_RRR = {
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.REM,
    Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SLL, Opcode.SRL, Opcode.SRA,
    Opcode.SLT, Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV,
    Opcode.FCLT,
}
_RRI = {
    Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI, Opcode.SLLI,
    Opcode.SRLI, Opcode.SLTI,
}
_RR = {Opcode.MOV, Opcode.FNEG, Opcode.FMOV, Opcode.CVTIF, Opcode.CVTFI}
_LOADS = {Opcode.LW, Opcode.LB, Opcode.LD}
_STORES = {Opcode.SW, Opcode.SB, Opcode.SD}


def disassemble_instruction(instr, labels_by_index=None) -> str:
    """Render one instruction as assembler text."""
    op = instr.op
    name = op.name.lower()
    reg = registers.decode

    def target() -> str:
        if labels_by_index and instr.target in labels_by_index:
            return labels_by_index[instr.target]
        return f"L{instr.target}"

    if op in _RRR:
        return f"{name} {reg(instr.rd)}, {reg(instr.rs1)}, {reg(instr.rs2)}"
    if op in _RRI:
        return f"{name} {reg(instr.rd)}, {reg(instr.rs1)}, {instr.imm}"
    if op in _RR:
        return f"{name} {reg(instr.rd)}, {reg(instr.rs1)}"
    if op in _LOADS:
        return f"{name} {reg(instr.rd)}, {reg(instr.rs1)}, {instr.imm}"
    if op in _STORES:
        return f"{name} {reg(instr.rs2)}, {reg(instr.rs1)}, {instr.imm}"
    if op in CONDITIONAL_BRANCHES:
        return f"{name} {reg(instr.rs1)}, {reg(instr.rs2)}, {target()}"
    if op is Opcode.LI:
        return f"li {reg(instr.rd)}, {instr.imm}"
    if op is Opcode.J:
        return f"j {target()}"
    if op is Opcode.JAL:
        return f"jal {reg(instr.rd)}, {target()}"
    if op is Opcode.JR:
        return f"jr {reg(instr.rs1)}"
    if op is Opcode.NOP:
        return "nop"
    if op is Opcode.HALT:
        return "halt"
    raise ValueError(f"cannot disassemble {op!r}")


def disassemble(program: Program) -> str:
    """Render a whole program as re-assemblable text.

    Branch targets become ``L<index>`` labels (or the program's original
    label names where those resolve to the index).  Data allocations are
    not reconstructed — the text covers the instruction stream.
    """
    labels_by_index = {}
    for label, index in program.labels.items():
        labels_by_index.setdefault(index, label)
    needed = set()
    for instr in program.instructions:
        if isinstance(instr.target, int):
            needed.add(instr.target)
    lines = []
    for index, instr in enumerate(program.instructions):
        if index in needed or index in labels_by_index:
            lines.append(f"{labels_by_index.get(index, f'L{index}')}:")
        lines.append(f"        {disassemble_instruction(instr, labels_by_index)}")
    # A label may point one past the last instruction (loop exits).
    tail = len(program.instructions)
    if tail in needed or tail in labels_by_index:
        lines.append(f"{labels_by_index.get(tail, f'L{tail}')}:")
        lines.append("        nop")
    return "\n".join(lines) + "\n"
