"""Dynamic-trace persistence.

Traces are expensive to regenerate for large runs; this module saves a
dynamic instruction stream to a compact line-oriented text format and
replays it later — the timing models accept the replayed iterator in
place of a live interpreter trace.

Format: one record per line, tab-separated::

    seq  pc  op_class  dest  srcs(comma)  addr  size  flags

``dest``/``addr`` use ``-`` for None; ``flags`` packs taken (bit 0) and
is_cond_branch (bit 1).
"""

from __future__ import annotations

from ..errors import ReproError
from .trace import DynInstr

_HEADER = "#repro-trace-v1"


def save_trace(path, trace) -> int:
    """Write every record of ``trace`` to ``path``; returns the count."""
    count = 0
    with open(path, "w") as handle:
        handle.write(_HEADER + "\n")
        for dyn in trace:
            dest = "-" if dyn.dest is None else str(dyn.dest)
            srcs = ",".join(str(s) for s in dyn.srcs) if dyn.srcs else "-"
            addr = "-" if dyn.addr is None else str(dyn.addr)
            flags = (1 if dyn.taken else 0) | (2 if dyn.is_cond_branch else 0)
            handle.write(
                f"{dyn.seq}\t{dyn.pc}\t{dyn.op_class}\t{dest}\t{srcs}\t"
                f"{addr}\t{dyn.size}\t{flags}\n"
            )
            count += 1
    return count


def load_trace(path):
    """Yield :class:`DynInstr` records from a saved trace file."""
    with open(path) as handle:
        header = handle.readline().rstrip("\n")
        if header != _HEADER:
            raise ReproError(f"{path}: not a repro trace file")
        for lineno, line in enumerate(handle, start=2):
            line = line.rstrip("\n")
            if not line:
                continue
            fields = line.split("\t")
            if len(fields) != 8:
                raise ReproError(f"{path}:{lineno}: malformed record")
            seq, pc, op_class, dest, srcs, addr, size, flags = fields
            flag_bits = int(flags)
            yield DynInstr(
                int(seq),
                int(pc),
                int(op_class),
                None if dest == "-" else int(dest),
                tuple() if srcs == "-" else tuple(
                    int(s) for s in srcs.split(",")),
                None if addr == "-" else int(addr),
                int(size),
                taken=bool(flag_bits & 1),
                is_cond_branch=bool(flag_bits & 2),
            )
