"""Opcode and operation-class definitions for the simulated RISC ISA.

The ISA is a small MIPS-flavoured load/store architecture, mirroring the
SimpleScalar toolset the paper used: 32 integer registers (``r0`` wired to
zero), 32 floating-point registers, immediate forms of the ALU operations,
word/byte/double memory accesses, and compare-and-branch control flow.
"""

from __future__ import annotations

from enum import IntEnum


class OpClass(IntEnum):
    """Functional-unit class; indexes latency/count tables in CPUConfig."""

    IALU = 0
    IMULT = 1
    IDIV = 2
    FADD = 3
    FMULT = 4
    FDIV = 5
    LOAD = 6
    STORE = 7
    BRANCH = 8

    @property
    def fu_name(self) -> str:
        """Name of the functional unit class executing this operation."""
        if self in (OpClass.LOAD, OpClass.STORE):
            return "AGEN"
        return self.name


class Opcode(IntEnum):
    """Every instruction the assembler and interpreter understand."""

    # Integer register-register ALU.
    ADD = 0
    SUB = 1
    MUL = 2
    DIV = 3
    REM = 4
    AND = 5
    OR = 6
    XOR = 7
    SLL = 8
    SRL = 9
    SRA = 10
    SLT = 11
    # Integer register-immediate ALU.
    ADDI = 12
    ANDI = 13
    ORI = 14
    XORI = 15
    SLLI = 16
    SRLI = 17
    SLTI = 18
    LI = 19
    MOV = 20
    # Memory.
    LW = 21
    SW = 22
    LB = 23
    SB = 24
    LD = 25
    SD = 26
    # Floating point.
    FADD = 27
    FSUB = 28
    FMUL = 29
    FDIV = 30
    FNEG = 31
    FMOV = 32
    FCLT = 33  # rd(int) <- (fs1 < fs2)
    CVTIF = 34  # fd <- float(rs1)
    CVTFI = 35  # rd <- int(fs1)
    # Control.
    BEQ = 36
    BNE = 37
    BLT = 38
    BGE = 39
    BLE = 40
    BGT = 41
    J = 42
    JAL = 43
    JR = 44
    NOP = 45
    HALT = 46


#: Map from opcode to its functional-unit / scheduling class.
OP_CLASS = {
    Opcode.ADD: OpClass.IALU,
    Opcode.SUB: OpClass.IALU,
    Opcode.MUL: OpClass.IMULT,
    Opcode.DIV: OpClass.IDIV,
    Opcode.REM: OpClass.IDIV,
    Opcode.AND: OpClass.IALU,
    Opcode.OR: OpClass.IALU,
    Opcode.XOR: OpClass.IALU,
    Opcode.SLL: OpClass.IALU,
    Opcode.SRL: OpClass.IALU,
    Opcode.SRA: OpClass.IALU,
    Opcode.SLT: OpClass.IALU,
    Opcode.ADDI: OpClass.IALU,
    Opcode.ANDI: OpClass.IALU,
    Opcode.ORI: OpClass.IALU,
    Opcode.XORI: OpClass.IALU,
    Opcode.SLLI: OpClass.IALU,
    Opcode.SRLI: OpClass.IALU,
    Opcode.SLTI: OpClass.IALU,
    Opcode.LI: OpClass.IALU,
    Opcode.MOV: OpClass.IALU,
    Opcode.LW: OpClass.LOAD,
    Opcode.LB: OpClass.LOAD,
    Opcode.LD: OpClass.LOAD,
    Opcode.SW: OpClass.STORE,
    Opcode.SB: OpClass.STORE,
    Opcode.SD: OpClass.STORE,
    Opcode.FADD: OpClass.FADD,
    Opcode.FSUB: OpClass.FADD,
    Opcode.FMUL: OpClass.FMULT,
    Opcode.FDIV: OpClass.FDIV,
    Opcode.FNEG: OpClass.FADD,
    Opcode.FMOV: OpClass.FADD,
    Opcode.FCLT: OpClass.FADD,
    Opcode.CVTIF: OpClass.FADD,
    Opcode.CVTFI: OpClass.FADD,
    Opcode.BEQ: OpClass.BRANCH,
    Opcode.BNE: OpClass.BRANCH,
    Opcode.BLT: OpClass.BRANCH,
    Opcode.BGE: OpClass.BRANCH,
    Opcode.BLE: OpClass.BRANCH,
    Opcode.BGT: OpClass.BRANCH,
    Opcode.J: OpClass.BRANCH,
    Opcode.JAL: OpClass.BRANCH,
    Opcode.JR: OpClass.BRANCH,
    Opcode.NOP: OpClass.IALU,
    Opcode.HALT: OpClass.BRANCH,
}

#: Memory access size in bytes for each memory opcode.
ACCESS_SIZE = {
    Opcode.LW: 4,
    Opcode.SW: 4,
    Opcode.LB: 1,
    Opcode.SB: 1,
    Opcode.LD: 8,
    Opcode.SD: 8,
}

#: Opcodes whose destination register is floating point.
FP_DEST = frozenset(
    {Opcode.LD, Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV,
     Opcode.FNEG, Opcode.FMOV, Opcode.CVTIF}
)

#: Conditional branch opcodes (two register sources and a target).
CONDITIONAL_BRANCHES = frozenset(
    {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BLE, Opcode.BGT}
)
