"""A small embedded DSL for authoring programs in the simulated ISA.

Workloads are written against :class:`ProgramBuilder`, which exposes one
method per opcode plus structured-control helpers (counted loops, generic
condition loops, if-blocks) and static data allocation in the global and
heap segments.  ``build()`` finalizes everything into a
:class:`~repro.isa.program.Program`.

Example::

    b = ProgramBuilder("sum")
    arr = b.alloc_global_words("arr", 64, init=range(64))
    b.li("r1", arr)
    b.li("r2", 0)                 # sum
    with b.repeat(64, "r3"):
        b.lw("r4", "r1", 0)
        b.add("r2", "r2", "r4")
        b.addi("r1", "r1", 4)
    b.halt()
    program = b.build()
"""

from __future__ import annotations

from contextlib import contextmanager

from ..errors import AssemblyError
from ..memory.address import GLOBAL_BASE, HEAP_BASE
from .instruction import Instruction
from .opcodes import Opcode
from .program import Program
from .registers import encode

_COND_INVERSE = {
    "eq": Opcode.BNE,
    "ne": Opcode.BEQ,
    "lt": Opcode.BGE,
    "ge": Opcode.BLT,
    "le": Opcode.BGT,
    "gt": Opcode.BLE,
}


def _reg(name) -> int:
    """Accept either a register name or an already-encoded register."""
    if isinstance(name, int):
        return name
    return encode(name)


class ProgramBuilder:
    """Accumulates instructions, labels, and data for one program."""

    def __init__(self, name: str = "program"):
        self.name = name
        self._instructions: "list[Instruction]" = []
        self._labels: "dict[str, int]" = {}
        self._data: "dict[int, object]" = {}
        self._global_top = GLOBAL_BASE
        self._heap_top = HEAP_BASE
        self._globals: "dict[str, int]" = {}
        self._unique = 0

    # ------------------------------------------------------------------
    # Data allocation.
    # ------------------------------------------------------------------
    def alloc_global(self, name: str, nbytes: int, align: int = 8) -> int:
        """Reserve ``nbytes`` in the global segment; returns base address."""
        return self._alloc("global", name, nbytes, align)

    def alloc_heap(self, name: str, nbytes: int, align: int = 8) -> int:
        """Reserve ``nbytes`` in the heap segment; returns base address."""
        return self._alloc("heap", name, nbytes, align)

    def _alloc(self, segment: str, name: str, nbytes: int, align: int) -> int:
        if nbytes <= 0:
            raise AssemblyError(f"allocation {name!r} must be positive-sized")
        if name in self._globals:
            raise AssemblyError(f"duplicate allocation name {name!r}")
        if segment == "global":
            top = self._global_top
        else:
            top = self._heap_top
        base = (top + align - 1) & ~(align - 1)
        new_top = base + nbytes
        if segment == "global":
            self._global_top = new_top
        else:
            self._heap_top = new_top
        self._globals[name] = base
        return base

    def address_of(self, name: str) -> int:
        """Base address of a named allocation."""
        if name not in self._globals:
            raise AssemblyError(f"unknown allocation {name!r}")
        return self._globals[name]

    def init_word(self, address: int, value: int) -> None:
        """Place a 4-byte integer in the initial memory image."""
        self._data[address] = int(value)

    def init_byte(self, address: int, value: int) -> None:
        """Place a single byte in the initial memory image."""
        self._data[address] = int(value) & 0xFF

    def init_double(self, address: int, value: float) -> None:
        """Place an 8-byte float in the initial memory image."""
        self._data[address] = float(value)

    def alloc_global_words(self, name: str, count: int, init=None) -> int:
        """Allocate ``count`` words in the global segment, optionally
        initializing them from the iterable ``init``."""
        base = self.alloc_global(name, count * 4, align=8)
        if init is not None:
            for offset, value in enumerate(init):
                if offset >= count:
                    raise AssemblyError(f"initializer for {name!r} too long")
                self.init_word(base + 4 * offset, value)
        return base

    def alloc_global_doubles(self, name: str, count: int, init=None) -> int:
        """Allocate ``count`` doubles in the global segment."""
        base = self.alloc_global(name, count * 8, align=8)
        if init is not None:
            for offset, value in enumerate(init):
                if offset >= count:
                    raise AssemblyError(f"initializer for {name!r} too long")
                self.init_double(base + 8 * offset, value)
        return base

    def alloc_heap_words(self, name: str, count: int, init=None) -> int:
        """Allocate ``count`` words in the heap segment."""
        base = self.alloc_heap(name, count * 4, align=8)
        if init is not None:
            for offset, value in enumerate(init):
                if offset >= count:
                    raise AssemblyError(f"initializer for {name!r} too long")
                self.init_word(base + 4 * offset, value)
        return base

    # ------------------------------------------------------------------
    # Labels and raw emission.
    # ------------------------------------------------------------------
    def label(self, name: str) -> str:
        """Bind ``name`` to the next instruction index."""
        if name in self._labels:
            raise AssemblyError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions)
        return name

    def fresh_label(self, stem: str = "L") -> str:
        """Return a unique, not-yet-bound label name."""
        self._unique += 1
        return f"__{stem}_{self._unique}"

    def emit(self, instr: Instruction) -> None:
        """Append a raw instruction."""
        self._instructions.append(instr)

    @property
    def here(self) -> int:
        """Index the next emitted instruction will occupy."""
        return len(self._instructions)

    # ------------------------------------------------------------------
    # Integer ALU.
    # ------------------------------------------------------------------
    def _rrr(self, op, rd, rs1, rs2) -> None:
        self.emit(Instruction(op, rd=_reg(rd), rs1=_reg(rs1), rs2=_reg(rs2)))

    def _rri(self, op, rd, rs1, imm) -> None:
        self.emit(Instruction(op, rd=_reg(rd), rs1=_reg(rs1), imm=int(imm)))

    def add(self, rd, rs1, rs2):
        self._rrr(Opcode.ADD, rd, rs1, rs2)

    def sub(self, rd, rs1, rs2):
        self._rrr(Opcode.SUB, rd, rs1, rs2)

    def mul(self, rd, rs1, rs2):
        self._rrr(Opcode.MUL, rd, rs1, rs2)

    def div(self, rd, rs1, rs2):
        self._rrr(Opcode.DIV, rd, rs1, rs2)

    def rem(self, rd, rs1, rs2):
        self._rrr(Opcode.REM, rd, rs1, rs2)

    def and_(self, rd, rs1, rs2):
        self._rrr(Opcode.AND, rd, rs1, rs2)

    def or_(self, rd, rs1, rs2):
        self._rrr(Opcode.OR, rd, rs1, rs2)

    def xor(self, rd, rs1, rs2):
        self._rrr(Opcode.XOR, rd, rs1, rs2)

    def sll(self, rd, rs1, rs2):
        self._rrr(Opcode.SLL, rd, rs1, rs2)

    def srl(self, rd, rs1, rs2):
        self._rrr(Opcode.SRL, rd, rs1, rs2)

    def sra(self, rd, rs1, rs2):
        self._rrr(Opcode.SRA, rd, rs1, rs2)

    def slt(self, rd, rs1, rs2):
        self._rrr(Opcode.SLT, rd, rs1, rs2)

    def addi(self, rd, rs1, imm):
        self._rri(Opcode.ADDI, rd, rs1, imm)

    def andi(self, rd, rs1, imm):
        self._rri(Opcode.ANDI, rd, rs1, imm)

    def ori(self, rd, rs1, imm):
        self._rri(Opcode.ORI, rd, rs1, imm)

    def xori(self, rd, rs1, imm):
        self._rri(Opcode.XORI, rd, rs1, imm)

    def slli(self, rd, rs1, imm):
        self._rri(Opcode.SLLI, rd, rs1, imm)

    def srli(self, rd, rs1, imm):
        self._rri(Opcode.SRLI, rd, rs1, imm)

    def slti(self, rd, rs1, imm):
        self._rri(Opcode.SLTI, rd, rs1, imm)

    def li(self, rd, imm):
        self.emit(Instruction(Opcode.LI, rd=_reg(rd), imm=int(imm)))

    def mov(self, rd, rs1):
        self.emit(Instruction(Opcode.MOV, rd=_reg(rd), rs1=_reg(rs1)))

    # ------------------------------------------------------------------
    # Memory.
    # ------------------------------------------------------------------
    def lw(self, rd, base, offset=0):
        self.emit(Instruction(Opcode.LW, rd=_reg(rd), rs1=_reg(base),
                              imm=int(offset)))

    def lb(self, rd, base, offset=0):
        self.emit(Instruction(Opcode.LB, rd=_reg(rd), rs1=_reg(base),
                              imm=int(offset)))

    def ld(self, fd, base, offset=0):
        self.emit(Instruction(Opcode.LD, rd=_reg(fd), rs1=_reg(base),
                              imm=int(offset)))

    def sw(self, rs, base, offset=0):
        self.emit(Instruction(Opcode.SW, rs2=_reg(rs), rs1=_reg(base),
                              imm=int(offset)))

    def sb(self, rs, base, offset=0):
        self.emit(Instruction(Opcode.SB, rs2=_reg(rs), rs1=_reg(base),
                              imm=int(offset)))

    def sd(self, fs, base, offset=0):
        self.emit(Instruction(Opcode.SD, rs2=_reg(fs), rs1=_reg(base),
                              imm=int(offset)))

    # ------------------------------------------------------------------
    # Floating point.
    # ------------------------------------------------------------------
    def fadd(self, fd, fs1, fs2):
        self._rrr(Opcode.FADD, fd, fs1, fs2)

    def fsub(self, fd, fs1, fs2):
        self._rrr(Opcode.FSUB, fd, fs1, fs2)

    def fmul(self, fd, fs1, fs2):
        self._rrr(Opcode.FMUL, fd, fs1, fs2)

    def fdiv(self, fd, fs1, fs2):
        self._rrr(Opcode.FDIV, fd, fs1, fs2)

    def fneg(self, fd, fs1):
        self.emit(Instruction(Opcode.FNEG, rd=_reg(fd), rs1=_reg(fs1)))

    def fmov(self, fd, fs1):
        self.emit(Instruction(Opcode.FMOV, rd=_reg(fd), rs1=_reg(fs1)))

    def fclt(self, rd, fs1, fs2):
        self._rrr(Opcode.FCLT, rd, fs1, fs2)

    def cvtif(self, fd, rs1):
        self.emit(Instruction(Opcode.CVTIF, rd=_reg(fd), rs1=_reg(rs1)))

    def cvtfi(self, rd, fs1):
        self.emit(Instruction(Opcode.CVTFI, rd=_reg(rd), rs1=_reg(fs1)))

    # ------------------------------------------------------------------
    # Control flow.
    # ------------------------------------------------------------------
    def _branch(self, op, rs1, rs2, target: str) -> None:
        self.emit(Instruction(op, rs1=_reg(rs1), rs2=_reg(rs2), target=target))

    def beq(self, rs1, rs2, target):
        self._branch(Opcode.BEQ, rs1, rs2, target)

    def bne(self, rs1, rs2, target):
        self._branch(Opcode.BNE, rs1, rs2, target)

    def blt(self, rs1, rs2, target):
        self._branch(Opcode.BLT, rs1, rs2, target)

    def bge(self, rs1, rs2, target):
        self._branch(Opcode.BGE, rs1, rs2, target)

    def ble(self, rs1, rs2, target):
        self._branch(Opcode.BLE, rs1, rs2, target)

    def bgt(self, rs1, rs2, target):
        self._branch(Opcode.BGT, rs1, rs2, target)

    def j(self, target):
        self.emit(Instruction(Opcode.J, target=target))

    def jal(self, target, link="r31"):
        self.emit(Instruction(Opcode.JAL, rd=_reg(link), target=target))

    def jr(self, rs1):
        self.emit(Instruction(Opcode.JR, rs1=_reg(rs1)))

    def call(self, target):
        """Call a subroutine (JAL through ``r31``)."""
        self.jal(target)

    def ret(self):
        """Return from a subroutine (JR through ``r31``)."""
        self.jr("r31")

    def nop(self):
        self.emit(Instruction(Opcode.NOP))

    def halt(self):
        self.emit(Instruction(Opcode.HALT))

    # ------------------------------------------------------------------
    # Structured control helpers.
    # ------------------------------------------------------------------
    @contextmanager
    def repeat(self, count: int, counter):
        """Emit a counted loop that runs ``count`` times.

        ``counter`` is clobbered: initialized to ``count`` and decremented
        each iteration.
        """
        top = self.fresh_label("repeat")
        self.li(counter, count)
        self.label(top)
        yield top
        self.addi(counter, counter, -1)
        self.bgt(counter, "r0", top)

    @contextmanager
    def while_cond(self, cond: str, rs1, rs2):
        """Emit ``while rs1 <cond> rs2`` around the body.

        ``cond`` is one of ``eq ne lt ge le gt``; the condition is tested
        before every iteration.
        """
        if cond not in _COND_INVERSE:
            raise AssemblyError(f"unknown loop condition {cond!r}")
        top = self.fresh_label("while")
        exit_ = self.fresh_label("endwhile")
        self.label(top)
        self._branch(_COND_INVERSE[cond], rs1, rs2, exit_)
        yield top
        self.j(top)
        self.label(exit_)

    @contextmanager
    def if_cond(self, cond: str, rs1, rs2):
        """Emit an if-block guarded by ``rs1 <cond> rs2``."""
        if cond not in _COND_INVERSE:
            raise AssemblyError(f"unknown if condition {cond!r}")
        skip = self.fresh_label("endif")
        self._branch(_COND_INVERSE[cond], rs1, rs2, skip)
        yield
        self.label(skip)

    # ------------------------------------------------------------------
    # Finalization.
    # ------------------------------------------------------------------
    def build(self) -> Program:
        """Finalize into a :class:`Program` and validate it."""
        program = Program(
            instructions=list(self._instructions),
            labels=dict(self._labels),
            data_image=dict(self._data),
            global_top=self._global_top,
            heap_top=self._heap_top,
            name=self.name,
        )
        program.validate()
        return program
