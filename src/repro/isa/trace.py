"""Dynamic-trace records produced by the functional interpreter.

The paper's evaluation assumes perfect branch prediction, so the committed
dynamic path equals the functional path.  The timing models therefore
consume the functional interpreter's instruction stream directly — each
record carries the true register dependencies and the effective memory
address, which is exactly the information SimpleScalar's out-of-order
simulator would have had under perfect prediction.
"""

from __future__ import annotations

from collections import namedtuple

from .opcodes import OpClass


class DynInstr:
    """One dynamically-executed instruction.

    ``taken`` is meaningful for conditional branches only: whether the
    branch left the fall-through path (used by the optional realistic
    branch-prediction mode; the default perfect-prediction mode never
    reads it).  ``private`` marks loads inside a result-communication
    region (paper Section 5.1): they bypass the shared-cache discipline
    entirely — no broadcast, no canonical cache update.
    """

    __slots__ = ("seq", "pc", "op_class", "dest", "srcs", "addr", "size",
                 "taken", "is_cond_branch", "private")

    def __init__(self, seq, pc, op_class, dest, srcs, addr=None, size=0,
                 taken=False, is_cond_branch=False, private=False):
        self.seq = seq
        self.pc = pc
        self.op_class = op_class
        self.dest = dest
        self.srcs = srcs
        self.addr = addr
        self.size = size
        self.taken = taken
        self.is_cond_branch = is_cond_branch
        self.private = private

    @property
    def is_load(self) -> bool:
        return self.op_class == OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.op_class == OpClass.STORE

    @property
    def is_mem(self) -> bool:
        return self.op_class in (OpClass.LOAD, OpClass.STORE)

    def __repr__(self) -> str:
        core = f"#{self.seq} pc={self.pc:#x} {OpClass(self.op_class).name}"
        if self.is_mem:
            core += f" addr={self.addr:#x}/{self.size}"
        return f"<DynInstr {core}>"


#: A bare memory reference: ``kind`` is ``'I'`` (instruction fetch),
#: ``'R'`` (data read), or ``'W'`` (data write).
MemRef = namedtuple("MemRef", ["kind", "addr", "size", "pc"])

#: Reference kinds, exported for callers that filter streams.
IFETCH = "I"
READ = "R"
WRITE = "W"
