"""Emit a flat Python stepper specialized to one (program, spec) pair.

The interpreter (:mod:`repro.isa.interpreter`) predecodes each static
instruction into a closure, but the hot loop still pays a list index, a
call, a tuple unpack, and a metadata lookup per retired instruction.
This emitter goes one step further — the same move SimpleScalar makes
with its generated ``ss.def`` dispatch, applied at the source level:

* basic blocks are unrolled into straight-line statements, with the
  fall-through successor encoded by textual adjacency (no dispatch at
  all between the instructions of a block);
* operand fields, immediates, shift amounts, access sizes, alignment
  masks, load defaults, link addresses, and every static
  :class:`~repro.isa.trace.DynInstr` field (pc, op class, dest, srcs
  tuple, branch kind) are constant-folded into the source text;
* the register file lives in local variables of the generated stepper
  (reads of ``r0`` fold to the literal ``0``; dead writes disappear);
* control transfers assign a block id and ``continue`` into a flat
  non-``elif`` guard chain — blocks are emitted in program order, so a
  fall-through into the next block costs one compare.

The generated module defines one function::

    def step(state, limit): ...

where ``state`` carries the architectural state (an object with the
interpreter's ``registers``/``memory``/counter attributes) and ``limit``
is the resolved dynamic-instruction cap.  Depending on
``spec.grain`` the function is a generator of ``DynInstr`` records
(``"trace"``), a generator of ``MemRef`` records (``"memrefs"``), or a
plain function (``"run"``).  Architectural effects, error messages, and
record fields replicate the interpreter exactly, bit for bit; state is
written back in a ``finally`` block, so counters and registers are
consistent once the stepper returns or its generator is closed.  (While
a generator is *suspended* the write-back has not happened yet — the
one observable difference from the interpreter's live shared state.)

Programs containing ``JR`` (indirect jumps) are not specialized:
:func:`repro.isa.codegen.supports` reports them unsupported and
``engine="auto"`` keeps them on the interpreter.
"""

from __future__ import annotations

from ...memory.address import TEXT_BASE
from ..opcodes import CONDITIONAL_BRANCHES, OP_CLASS, Opcode
from ..registers import ZERO
from .spec import CodegenSpec, UnsupportedProgramError

_U64 = (1 << 64) - 1

#: Ops whose effect is ``rd = a <op> b`` on register sources (integer
#: and floating point share Python's operators).
_BINOPS = {
    Opcode.ADD: "+", Opcode.SUB: "-", Opcode.AND: "&", Opcode.OR: "|",
    Opcode.XOR: "^", Opcode.FADD: "+", Opcode.FSUB: "-", Opcode.FMUL: "*",
}

#: Ops whose effect is ``rd = a <op> imm``.
_IMM_BINOPS = {
    Opcode.ADDI: "+", Opcode.ANDI: "&", Opcode.ORI: "|", Opcode.XORI: "^",
}

#: Conditional branches and their Python comparison operator.
_COND_OPS = {
    Opcode.BEQ: "==", Opcode.BNE: "!=", Opcode.BLT: "<",
    Opcode.BGE: ">=", Opcode.BLE: "<=", Opcode.BGT: ">",
}

# Indentation levels of the generated function.
_I1 = "    "            # function body
_I2 = _I1 * 2           # try body
_I3 = _I1 * 3           # while body (block guards)
_I4 = _I1 * 4           # block body (one instruction's statements)
_I5 = _I1 * 5           # nested suite (taken branch path, align check)


def _lit(value) -> str:
    """A literal safe to embed in a binary expression."""
    text = repr(value)
    return f"({text})" if text.startswith("-") else text


def emit_source(program, spec: CodegenSpec = CodegenSpec()) -> str:
    """Return the generated module source for ``(program, spec)``.

    Deterministic: equal (program content, spec) emit equal text.
    """
    return _Emitter(program, spec).emit()


class _Emitter:
    def __init__(self, program, spec: CodegenSpec):
        program.validate()
        self.program = program
        self.spec = spec
        self.instrs = program.instructions
        self.n = len(self.instrs)
        self.counter = "seq" if spec.grain == "trace" else "n"
        #: srcs tuple -> module-constant name (deduplicated).
        self.srcs_pool: "dict[tuple, str]" = {}
        #: helper names the emitted body actually uses.
        self.uses: "set[str]" = set()

    # ------------------------------------------------------------------
    # Layout: block leaders.
    # ------------------------------------------------------------------
    def _leaders(self) -> "list[int]":
        leaders = {0}
        for index, ins in enumerate(self.instrs):
            op = ins.op
            if op == Opcode.JR:
                raise UnsupportedProgramError(
                    f"cannot specialize {self.program.name!r}: "
                    f"indirect jump (JR) at index {index}")
            if op in _COND_OPS or op in (Opcode.J, Opcode.JAL):
                if 0 <= ins.target < self.n:
                    leaders.add(ins.target)
            if op == Opcode.JAL and index + 1 < self.n:
                leaders.add(index + 1)
        for position in self.program.labels.values():
            if 0 <= position < self.n:
                leaders.add(position)
        return sorted(leaders)

    # ------------------------------------------------------------------
    # Small helpers.
    # ------------------------------------------------------------------
    def _read(self, reg) -> str:
        return "0" if reg is None or reg == ZERO else f"r{reg}"

    def _srcs(self, ins) -> str:
        key = ins.sources()
        name = self.srcs_pool.get(key)
        if name is None:
            name = f"_S{len(self.srcs_pool)}"
            self.srcs_pool[key] = name
        return name

    def _pc(self, index: int) -> int:
        return TEXT_BASE + index * self.spec.instruction_bytes

    def _record(self, index, ins, addr="None", size=0, taken=None) -> str:
        """The DynInstr constructor call for one static instruction
        (trailing default arguments omitted)."""
        self.uses.add("D")
        head = (f"D({self.counter}, {self._pc(index)}, "
                f"{int(OP_CLASS[ins.op])}, {ins.destination()}, "
                f"{self._srcs(ins)}")
        if taken is not None:
            return f"{head}, None, 0, {taken}, True)"
        if addr != "None" or size:
            return f"{head}, {addr}, {size})"
        return f"{head})"

    def _ifetch(self, index: int) -> "list[str]":
        if not self.spec.include_ifetch:
            return []
        self.uses.add("M")
        pc = self._pc(index)
        return [f"yield M(IF_, {pc}, {self.spec.instruction_bytes}, {pc})"]

    def _dataref(self, index, kind, addr, size) -> "list[str]":
        self.uses.add("M")
        return [f"yield M({kind}, {addr}, {size}, {self._pc(index)})"]

    # ------------------------------------------------------------------
    # Architectural effect of one non-control instruction.
    # Returns (lines, addr_expr, mem_kind, size): addr_expr is the
    # address expression (a variable name or literal) for loads/stores,
    # mem_kind is "RD_"/"WR_" or None.
    # ------------------------------------------------------------------
    def _exec_lines(self, index, ins):
        op, rd = ins.op, ins.rd
        writes = rd is not None and rd != ZERO
        a, b = self._read(ins.rs1), self._read(ins.rs2)
        imm = ins.imm
        out: "list[str]" = []

        if op in _BINOPS:
            if writes:
                out.append(f"r{rd} = {a} {_BINOPS[op]} {b}")
        elif op == Opcode.MUL:
            if writes:
                self.uses.add("sgn")
                out.append(f"r{rd} = sgn({a} * {b})")
        elif op in (Opcode.DIV, Opcode.REM):
            what = "divide" if op == Opcode.DIV else "remainder"
            if b == "0":
                out.append(f'raise ExecutionError('
                           f'"{what} by zero at index {index}")')
            else:
                out.append(f"b_ = {b}")
                out.append("if b_ == 0:")
                out.append(f'    raise ExecutionError('
                           f'"{what} by zero at index {index}")')
                if writes:
                    helper = "tdiv" if op == Opcode.DIV else "trem"
                    self.uses.add(helper)
                    out.append(f"r{rd} = {helper}({a}, b_)")
        elif op == Opcode.FDIV:
            if b == "0":
                out.append(f'raise ExecutionError('
                           f'"fp divide by zero at index {index}")')
            else:
                out.append(f"b_ = {b}")
                out.append("if b_ == 0.0:")
                out.append(f'    raise ExecutionError('
                           f'"fp divide by zero at index {index}")')
                if writes:
                    out.append(f"r{rd} = {a} / b_")
        elif op == Opcode.SLL:
            if writes:
                self.uses.add("sgn")
                out.append(f"r{rd} = sgn({a} << ({b} & 63))")
        elif op == Opcode.SRL:
            if writes:
                out.append(f"r{rd} = ({a} & {_U64}) >> ({b} & 63)")
        elif op == Opcode.SRA:
            if writes:
                out.append(f"r{rd} = {a} >> ({b} & 63)")
        elif op in (Opcode.SLT, Opcode.FCLT):
            if writes:
                out.append(f"r{rd} = 1 if {a} < {b} else 0")
        elif op == Opcode.LI:
            if writes:
                out.append(f"r{rd} = {_lit(imm)}")
        elif op in (Opcode.MOV, Opcode.FMOV):
            if writes:
                out.append(f"r{rd} = {a}")
        elif op in _IMM_BINOPS:
            if writes:
                out.append(f"r{rd} = {a} {_IMM_BINOPS[op]} {_lit(imm)}")
        elif op in (Opcode.SLLI, Opcode.SRLI):
            shift = imm & 63
            if writes:
                if op == Opcode.SLLI:
                    self.uses.add("sgn")
                    out.append(f"r{rd} = sgn({a} << {shift})")
                else:
                    out.append(f"r{rd} = ({a} & {_U64}) >> {shift}")
        elif op == Opcode.SLTI:
            if writes:
                out.append(f"r{rd} = 1 if {a} < {_lit(imm)} else 0")
        elif op == Opcode.FNEG:
            if writes:
                out.append(f"r{rd} = -{a}")
        elif op == Opcode.CVTIF:
            if writes:
                out.append(f"r{rd} = float({a})")
        elif op == Opcode.CVTFI:
            if writes:
                out.append(f"r{rd} = int({a})")
        elif op in (Opcode.LW, Opcode.LB, Opcode.LD):
            return self._emit_load(index, ins, writes)
        elif op in (Opcode.SW, Opcode.SB, Opcode.SD):
            return self._emit_store(index, ins)
        elif op == Opcode.NOP:
            pass
        else:  # pragma: no cover - control ops handled by _emit_instr
            raise UnsupportedProgramError(
                f"cannot specialize opcode {op.name} at index {index}")
        return out, "None", None, 0

    def _access_size(self, op) -> int:
        if op in (Opcode.LW, Opcode.SW):
            return self.spec.word_size
        if op in (Opcode.LD, Opcode.SD):
            return self.spec.double_size
        return 1

    def _emit_load(self, index, ins, writes):
        op = ins.op
        size = self._access_size(op)
        default = "0.0" if op == Opcode.LD else "0"
        out: "list[str]" = []
        base = self._read(ins.rs1)
        imm = ins.imm or 0
        if base == "0":
            # Absolute address: fold the cache-index/alignment math away.
            addr = str(imm)
            if size > 1 and imm & (size - 1):
                out.append(f'raise ExecutionError("unaligned load of '
                           f'{size} at {imm:#x} (index {index})")')
            if writes:
                self.uses.add("mget")
                out.append(f"r{ins.rd} = mget({imm}, {default})")
            out.append("loads += 1")
        else:
            addr = "addr"
            rhs = base if imm == 0 else f"{base} + {_lit(imm)}"
            out.append(f"addr = {rhs}")
            if size > 1:
                out.append(f"if addr & {size - 1}:")
                out.append('    raise ExecutionError(f"unaligned load of '
                           '%d at {addr:#x} (index %d)")' % (size, index))
            if writes:
                self.uses.add("mget")
                out.append(f"r{ins.rd} = mget(addr, {default})")
            out.append("loads += 1")
        self.uses.add("loads")
        return out, addr, "RD_", size

    def _emit_store(self, index, ins):
        op = ins.op
        size = self._access_size(op)
        value = self._read(ins.rs2)
        if op == Opcode.SB:
            value = f"{value} & 255"
        out: "list[str]" = []
        base = self._read(ins.rs1)
        imm = ins.imm or 0
        self.uses.add("memory")
        if base == "0":
            addr = str(imm)
            if size > 1 and imm & (size - 1):
                out.append(f'raise ExecutionError("unaligned store of '
                           f'{size} at {imm:#x} (index {index})")')
            out.append(f"memory[{imm}] = {value}")
        else:
            addr = "addr"
            rhs = base if imm == 0 else f"{base} + {_lit(imm)}"
            out.append(f"addr = {rhs}")
            if size > 1:
                out.append(f"if addr & {size - 1}:")
                out.append('    raise ExecutionError(f"unaligned store of '
                           '%d at {addr:#x} (index %d)")' % (size, index))
            out.append(f"memory[addr] = {value}")
        out.append("stores += 1")
        self.uses.add("stores")
        return out, addr, "WR_", size

    # ------------------------------------------------------------------
    # One instruction, grain-aware (limit check, effect, record, count).
    # ------------------------------------------------------------------
    def _emit_instr(self, index, block_of) -> "list[str]":
        ins = self.instrs[index]
        op = ins.op
        grain = self.spec.grain
        ctr = self.counter
        out = [f"{_I4}if {ctr} >= limit:", f"{_I5}return"]

        if op in _COND_OPS:
            out.extend(self._emit_branch(index, ins, block_of))
            return out
        if op in (Opcode.J, Opcode.JAL):
            if op == Opcode.JAL and ins.rd is not None and ins.rd != ZERO:
                link = self._pc(index + 1)
                out.append(f"{_I4}r{ins.rd} = {link}")
            if grain == "trace":
                out.append(f"{_I4}yield {self._record(index, ins)}")
            out.append(f"{_I4}{ctr} += 1")
            if grain == "memrefs":
                out.extend(_I4 + line for line in self._ifetch(index))
            out.append(f"{_I4}bi = {block_of[ins.target]}")
            out.append(f"{_I4}continue")
            return out
        if op == Opcode.HALT:
            out.append(f"{_I4}halted = True")
            if grain != "run":
                out.append(f"{_I4}state.halted = True")
            out.append(f"{_I4}{ctr} += 1")
            if grain == "trace":
                record = self._record(index, ins)
                out.append(f"{_I4}yield {record.replace(ctr, ctr + ' - 1', 1)}")
            elif grain == "memrefs":
                out.extend(_I4 + line for line in self._ifetch(index))
            out.append(f"{_I4}return")
            return out

        effect, addr, kind, size = self._exec_lines(index, ins)
        out.extend(_I4 + line for line in effect)
        if grain == "trace":
            if kind is not None:
                record = self._record(index, ins, addr=addr, size=size)
            else:
                record = self._record(index, ins)
            out.append(f"{_I4}yield {record}")
        out.append(f"{_I4}{ctr} += 1")
        if grain == "memrefs":
            out.extend(_I4 + line for line in self._ifetch(index))
            if kind is not None:
                out.extend(_I4 + line
                           for line in self._dataref(index, kind, addr, size))
        return out

    def _emit_branch(self, index, ins, block_of) -> "list[str]":
        grain = self.spec.grain
        ctr = self.counter
        target = ins.target
        out: "list[str]" = []
        if target == index + 1:
            # Degenerate branch to the fall-through path: the interpreter
            # reports taken=False whichever way the condition goes, and
            # the condition itself has no side effects — fold it away.
            if grain == "trace":
                record = self._record(index, ins, taken=False)
                out.append(f"{_I4}yield {record}")
            out.append(f"{_I4}{ctr} += 1")
            if grain == "memrefs":
                out.extend(_I4 + line for line in self._ifetch(index))
            return out
        cond = (f"{self._read(ins.rs1)} {_COND_OPS[ins.op]} "
                f"{self._read(ins.rs2)}")
        out.append(f"{_I4}if {cond}:")
        if grain == "trace":
            out.append(f"{_I5}yield {self._record(index, ins, taken=True)}")
        out.append(f"{_I5}{ctr} += 1")
        if grain == "memrefs":
            out.extend(_I5 + line for line in self._ifetch(index))
        out.append(f"{_I5}bi = {block_of[target]}")
        out.append(f"{_I5}continue")
        if grain == "trace":
            out.append(f"{_I4}yield {self._record(index, ins, taken=False)}")
        out.append(f"{_I4}{ctr} += 1")
        if grain == "memrefs":
            out.extend(_I4 + line for line in self._ifetch(index))
        return out

    # ------------------------------------------------------------------
    # Whole-module assembly.
    # ------------------------------------------------------------------
    def _falls_through(self, ins) -> bool:
        return ins.op not in (Opcode.J, Opcode.JAL, Opcode.JR, Opcode.HALT)

    def emit(self) -> str:
        leaders = self._leaders()
        block_of = {idx: k for k, idx in enumerate(leaders)}
        terminal = len(leaders)
        block_of[self.n] = terminal

        body: "list[str]" = []
        for k, leader in enumerate(leaders):
            end = leaders[k + 1] if k + 1 < len(leaders) else self.n
            body.append(f"{_I3}if bi == {k}:")
            for index in range(leader, end):
                body.extend(self._emit_instr(index, block_of))
            if self._falls_through(self.instrs[end - 1]):
                body.append(f"{_I4}bi = {block_of[end]}")
        body.append(f"{_I3}if bi == {terminal}:")
        body.append(f"{_I4}if {self.counter} >= limit:")
        body.append(f"{_I5}return")
        body.append(f'{_I4}raise ExecutionError('
                    f'"fell off program at index {self.n}")')
        body.append(f'{_I3}raise RuntimeError('
                    f'"codegen dispatch corrupted: bi=%r" % (bi,))')

        return "\n".join(self._header() + self._prologue() + body
                         + self._epilogue()) + "\n"

    def _referenced_registers(self):
        read, written = set(), set()
        for ins in self.instrs:
            if ins.rs1 is not None and ins.rs1 != ZERO:
                read.add(ins.rs1)
            if ins.rs2 is not None and ins.rs2 != ZERO:
                read.add(ins.rs2)
            if ins.rd is not None and ins.rd != ZERO:
                written.add(ins.rd)
        return sorted(read | written), sorted(written)

    def _header(self) -> "list[str]":
        spec = self.spec
        name = self.program.name or "<anonymous>"
        lines = [
            '"""Generated by repro.isa.codegen; do not edit.',
            "",
            f"program: {name} ({self.n} instructions)",
            f"spec: {spec!r}",
            '"""',
        ]
        for key, const in self.srcs_pool.items():
            lines.append(f"{const} = {key!r}")
        return lines

    def _prologue(self) -> "list[str]":
        uses = self.uses
        lines = ["", "", "def step(state, limit):"]
        lines.append(f"{_I1}if state.halted:")
        lines.append(f"{_I2}return")
        referenced, _ = self._referenced_registers()
        if referenced:
            lines.append(f"{_I1}regs = state.registers")
            for reg in referenced:
                lines.append(f"{_I1}r{reg} = regs[{reg}]")
        if "memory" in uses or "mget" in uses:
            lines.append(f"{_I1}memory = state.memory")
        if "mget" in uses:
            lines.append(f"{_I1}mget = memory.get")
        if "D" in uses:
            lines.append(f"{_I1}D = DynInstr")
        if "M" in uses:
            lines.append(f"{_I1}M = MemRef")
            if self.spec.include_ifetch:
                lines.append(f"{_I1}IF_ = IFETCH")
            lines.append(f"{_I1}RD_ = READ")
            lines.append(f"{_I1}WR_ = WRITE")
        if "sgn" in uses:
            lines.append(f"{_I1}sgn = _to_signed")
        if "tdiv" in uses:
            lines.append(f"{_I1}tdiv = _trunc_div")
        if "trem" in uses:
            lines.append(f"{_I1}trem = _trunc_rem")
        if "loads" in uses:
            lines.append(f"{_I1}loads = 0")
        if "stores" in uses:
            lines.append(f"{_I1}stores = 0")
        lines.append(f"{_I1}halted = False")
        lines.append(f"{_I1}{self.counter} = 0")
        lines.append(f"{_I1}bi = 0")
        lines.append(f"{_I1}try:")
        lines.append(f"{_I2}while True:")
        return lines

    def _epilogue(self) -> "list[str]":
        lines = [f"{_I1}finally:"]
        lines.append(f"{_I2}state.instructions_executed += {self.counter}")
        if "loads" in self.uses:
            lines.append(f"{_I2}state.loads += loads")
        if "stores" in self.uses:
            lines.append(f"{_I2}state.stores += stores")
        lines.append(f"{_I2}if halted:")
        lines.append(f"{_I3}state.halted = True")
        _, written = self._referenced_registers()
        for reg in written:
            lines.append(f"{_I2}regs[{reg}] = r{reg}")
        return lines
