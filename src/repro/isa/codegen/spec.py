"""The specialization contract: which config knobs the generated code folds.

A :class:`CodegenSpec` names every front-end-visible knob that gets
baked into a generated stepper as source-text constants.  Two runs whose
(program digest, spec) pairs match may share one compiled module — the
spec *is* the config digest of the memoization key, so anything the
emitter folds **must** live here (a knob folded silently would let two
different specializations alias one cache slot).

The interpreter reads the same knobs dynamically
(:data:`repro.memory.address.INSTRUCTION_BYTES`,
:data:`repro.params.WORD_SIZE`, :data:`repro.params.DOUBLE_SIZE`), so
the defaults reproduce it bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import ConfigError, ReproError
from ...memory.address import INSTRUCTION_BYTES
from ...params import DOUBLE_SIZE, WORD_SIZE

#: The three stepper shapes the emitter knows how to generate, mirroring
#: the interpreter's public run modes.
GRAINS = ("trace", "run", "memrefs")


class UnsupportedProgramError(ReproError):
    """The program cannot be specialized (size cap or indirect jumps).

    Raised by ``engine="codegen"``; ``engine="auto"`` falls back to the
    interpreter instead.
    """


@dataclass(frozen=True)
class CodegenSpec:
    """Everything a generated stepper is specialized on, besides the
    program itself.

    ``grain`` selects the stepper shape: ``"trace"`` yields
    :class:`~repro.isa.trace.DynInstr` records (the timing models'
    input), ``"run"`` is a records-free plain function (fastest
    functional execution), ``"memrefs"`` yields bare
    :class:`~repro.isa.trace.MemRef` records for the cache-filter
    studies — with ``include_ifetch`` folded at generation time, so a
    data-only stream never even tests a flag per instruction.
    """

    grain: str = "trace"
    #: ``memrefs`` grain only: emit per-instruction IFETCH references.
    include_ifetch: bool = True
    #: Bytes per instruction — the PC stride and IFETCH access size,
    #: folded into every record as a literal.
    instruction_bytes: int = INSTRUCTION_BYTES
    #: LW/SW access bytes; also each static access's alignment mask.
    word_size: int = WORD_SIZE
    #: LD/SD access bytes.
    double_size: int = DOUBLE_SIZE

    def __post_init__(self) -> None:
        if self.grain not in GRAINS:
            raise ConfigError(
                f"codegen grain must be one of {GRAINS}, got {self.grain!r}")
        for name in ("instruction_bytes", "word_size", "double_size"):
            value = getattr(self, name)
            if not (isinstance(value, int) and value >= 1
                    and (value & (value - 1)) == 0):
                raise ConfigError(f"{name} must be a power-of-two int")
