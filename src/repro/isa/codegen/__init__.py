"""Program-specialized code generation (ROADMAP item 2).

Compiles a (:class:`~repro.isa.program.Program`,
:class:`~repro.isa.codegen.spec.CodegenSpec`) pair into a flat generated
Python module — basic blocks unrolled into straight-line statements,
operand fields and fall-through successors constant-folded into source
text, the register file held in stepper locals — ``compile()``+``exec``'d
once and memoized per (program digest, spec).  Bit-identical to the
predecoded-closure interpreter; selected by ``SystemConfig.engine``.

See ``docs/simulator.md`` ("Specialized code generation") for what gets
folded, the memoization key, and the fallback rules.
"""

from .emit import emit_source
from .engine import (CODEGEN_VERSION, ENGINES, MAX_CODEGEN_INSTRUCTIONS,
                     CompiledExecution, CompiledProgram,
                     clear_codegen_cache, compile_program, make_execution,
                     make_trace_source, program_digest, resolve_engine,
                     supports)
from .spec import CodegenSpec, UnsupportedProgramError

__all__ = [
    "CODEGEN_VERSION",
    "ENGINES",
    "MAX_CODEGEN_INSTRUCTIONS",
    "CodegenSpec",
    "CompiledExecution",
    "CompiledProgram",
    "UnsupportedProgramError",
    "clear_codegen_cache",
    "compile_program",
    "emit_source",
    "make_execution",
    "make_trace_source",
    "program_digest",
    "resolve_engine",
    "supports",
]
