"""Compile, cache, and run program-specialized steppers.

:func:`compile_program` turns a (program, :class:`CodegenSpec`) pair
into a :class:`CompiledProgram` — generated source, ``compile()``'d and
``exec``'d once — memoized under (program content digest, spec), the
same move :func:`repro.workloads.common.shared_program` makes for
program assembly: a sweep that runs one benchmark across dozens of
configurations specializes it once per process and grain.

:class:`CompiledExecution` is the drop-in replacement for
:class:`~repro.isa.interpreter.Interpreter`: same constructor shape,
same architectural state attributes, same ``trace``/``run``/
``mem_refs``/``result`` surface, bit-identical behavior.  Engine
selection lives in :func:`resolve_engine` /
:func:`make_trace_source`: ``"interpreter"`` and ``"codegen"`` force a
front end (the latter raising :class:`UnsupportedProgramError` when the
program cannot be specialized), ``"auto"`` prefers generated code and
falls back to the interpreter for unsupported programs (indirect
jumps, or text larger than :data:`MAX_CODEGEN_INSTRUCTIONS`).

``CODEGEN_VERSION`` stamps the emitter's output format; it is folded
into every sweep-point digest (:mod:`repro.runner.digest`) so cached
results can never alias across generated-code template changes — even
under a pinned ``REPRO_CODE_VERSION``.  Bump it whenever
:mod:`repro.isa.codegen.emit` changes the meaning of generated code.
"""

from __future__ import annotations

import hashlib

from ...memory.address import STACK_TOP
from ...obs.spans import span
from ..interpreter import (ExecResult, Interpreter, _to_signed, _trunc_div,
                           _trunc_rem)
from ..opcodes import Opcode
from ..registers import NUM_REGS, SP
from ..trace import IFETCH, READ, WRITE, DynInstr, MemRef
from .emit import emit_source
from .spec import CodegenSpec, UnsupportedProgramError

#: Stamp of the generated-code template format (see module docstring).
CODEGEN_VERSION = "1"

#: Programs with more static instructions than this are left to the
#: interpreter under ``engine="auto"`` (compile time and module size
#: grow linearly with program text; every bundled workload is far
#: below the cap).
MAX_CODEGEN_INSTRUCTIONS = 20_000

#: The engine knob's accepted values (``SystemConfig.engine``).
ENGINES = ("auto", "interpreter", "codegen")


def program_digest(program) -> str:
    """Content digest of a program (instructions, labels, data image).

    Cached on the program object — programs are immutable after
    assembly, and :func:`repro.workloads.common.shared_program` already
    shares one instance per (name, scale).
    """
    cached = getattr(program, "_codegen_digest", None)
    if cached is not None:
        return cached
    sha = hashlib.sha256()
    for ins in program.instructions:
        sha.update(repr((int(ins.op), ins.rd, ins.rs1, ins.rs2, ins.imm,
                         ins.target)).encode("utf-8"))
    sha.update(repr(sorted(program.labels.items())).encode("utf-8"))
    sha.update(repr(sorted(program.data_image.items())).encode("utf-8"))
    digest = sha.hexdigest()
    try:
        program._codegen_digest = digest
    except AttributeError:  # __slots__-style program stand-ins
        pass
    return digest


def supports(program) -> bool:
    """Can ``program`` be specialized?  (Fallback predicate for
    ``engine="auto"``.)"""
    instrs = program.instructions
    if len(instrs) > MAX_CODEGEN_INSTRUCTIONS:
        return False
    return all(ins.op != Opcode.JR for ins in instrs)


class CompiledProgram:
    """One generated module: source text plus its bound ``step``."""

    __slots__ = ("digest", "spec", "filename", "source", "step")

    def __init__(self, program, spec: CodegenSpec):
        self.digest = program_digest(program)
        self.spec = spec
        self.source = emit_source(program, spec)
        name = program.name or "program"
        self.filename = (f"<repro.codegen:{name}:{spec.grain}:"
                         f"{self.digest[:12]}>")
        namespace = {
            "DynInstr": DynInstr,
            "MemRef": MemRef,
            "IFETCH": IFETCH,
            "READ": READ,
            "WRITE": WRITE,
            "ExecutionError": _execution_error(),
            "_to_signed": _to_signed,
            "_trunc_div": _trunc_div,
            "_trunc_rem": _trunc_rem,
        }
        exec(compile(self.source, self.filename, "exec"), namespace)
        self.step = namespace["step"]


def _execution_error():
    from ...errors import ExecutionError

    return ExecutionError


#: (program digest, spec) -> CompiledProgram.
_COMPILED_CACHE: "dict[tuple[str, CodegenSpec], CompiledProgram]" = {}


def compile_program(program, spec: CodegenSpec = CodegenSpec()):
    """Memoized specialization of ``(program, spec)``."""
    key = (program_digest(program), spec)
    compiled = _COMPILED_CACHE.get(key)
    if compiled is None:
        # Only real specializations are charged to the codegen-compile
        # phase; memoized lookups cost (and record) nothing.
        with span("codegen-compile"):
            compiled = CompiledProgram(program, spec)
        _COMPILED_CACHE[key] = compiled
    return compiled


def clear_codegen_cache() -> None:
    """Drop every compiled module (tests; memory-pressure escape hatch)."""
    _COMPILED_CACHE.clear()


class CompiledExecution:
    """Drop-in :class:`~repro.isa.interpreter.Interpreter` replacement
    backed by generated code.

    Architectural state lives in the same attributes
    (``registers``/``memory``/``instructions_executed``/``loads``/
    ``stores``/``halted``); the generated stepper reads it on entry and
    writes it back when it returns or its generator is closed.  One
    difference from the interpreter's live shared state: while a
    generator is *suspended* mid-stream, the write-back has not happened
    yet, so counters trail the records already yielded until the
    generator is exhausted or closed.
    """

    def __init__(self, program, max_instructions: int = 100_000_000):
        program.validate()
        if not supports(program):
            raise UnsupportedProgramError(
                f"cannot specialize {program.name!r}: program has "
                f"indirect jumps or exceeds {MAX_CODEGEN_INSTRUCTIONS} "
                f"instructions")
        self.program = program
        self.max_instructions = max_instructions
        self.registers = [0] * NUM_REGS
        for fp in range(32, NUM_REGS):
            self.registers[fp] = 0.0
        self.registers[SP] = STACK_TOP - 16
        self.memory = dict(program.data_image)
        self.instructions_executed = 0
        self.loads = 0
        self.stores = 0
        self.halted = False

    def _limit(self, limit) -> int:
        return self.max_instructions if limit is None else limit

    def _step(self, spec: CodegenSpec):
        return compile_program(self.program, spec).step

    # ------------------------------------------------------------------
    # Public run modes, mirroring the interpreter.
    # ------------------------------------------------------------------
    def run(self, limit=None) -> ExecResult:
        """Execute functionally with no per-instruction records."""
        self._step(CodegenSpec(grain="run"))(self, self._limit(limit))
        return self.result()

    def trace(self, limit=None):
        """Generate :class:`DynInstr` records for the timing models."""
        return self._step(CodegenSpec(grain="trace"))(
            self, self._limit(limit))

    def mem_refs(self, limit=None, include_ifetch: bool = True):
        """Generate bare :class:`MemRef` records (cache-filter studies)."""
        spec = CodegenSpec(grain="memrefs", include_ifetch=include_ifetch)
        return self._step(spec)(self, self._limit(limit))

    def result(self) -> ExecResult:
        """Snapshot the run outcome."""
        return ExecResult(
            instructions=self.instructions_executed,
            halted=self.halted,
            registers=list(self.registers),
            loads=self.loads,
            stores=self.stores,
        )

    def read_word(self, address: int) -> int:
        """Read a word from simulated memory (post-run inspection)."""
        return self.memory.get(address, 0)

    def read_double(self, address: int) -> float:
        """Read a double from simulated memory (post-run inspection)."""
        return self.memory.get(address, 0.0)


# ----------------------------------------------------------------------
# Engine selection.
# ----------------------------------------------------------------------
def resolve_engine(engine: str, program) -> str:
    """Pick the concrete front end for ``program`` under ``engine``."""
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    if engine == "interpreter":
        return "interpreter"
    if engine == "codegen":
        if not supports(program):
            raise UnsupportedProgramError(
                f"engine='codegen' requested but {program.name!r} cannot "
                f"be specialized (indirect jumps, or more than "
                f"{MAX_CODEGEN_INSTRUCTIONS} instructions); use "
                f"engine='auto' to fall back to the interpreter")
        return "codegen"
    return "codegen" if supports(program) else "interpreter"


def make_execution(program, engine: str = "auto",
                   max_instructions: int = 100_000_000):
    """Build the selected functional front end for ``program``."""
    if resolve_engine(engine, program) == "codegen":
        return CompiledExecution(program, max_instructions=max_instructions)
    return Interpreter(program, max_instructions=max_instructions)


def make_trace_source(program, limit=None, engine: str = "auto"):
    """Drop-in trace source for :class:`repro.isa.fanout.TraceFanout`:
    exactly ``Interpreter(program).trace(limit=limit)``, from whichever
    front end ``engine`` selects."""
    return make_execution(program, engine).trace(limit=limit)
