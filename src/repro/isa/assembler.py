"""Text-format assembler.

A thin textual front end over the same instruction set the
:class:`~repro.isa.builder.ProgramBuilder` emits.  One instruction per
line; ``name:`` defines a label; ``;`` or ``#`` starts a comment.
Supported directives::

    .alloc  name nbytes [global|heap]   reserve data space
    .word   name+offset value           initialize a 4-byte slot
    .double name+offset value           initialize an 8-byte slot

Instruction syntax examples::

    li    r1, 100
    add   r2, r2, r1
    lw    r3, r1, 8        ; r3 <- mem[r1 + 8]
    sw    r3, r1, 12       ; mem[r1 + 12] <- r3
    beq   r1, r0, done
    j     loop
    halt
"""

from __future__ import annotations

from ..errors import AssemblyError
from .builder import ProgramBuilder
from .program import Program

#: Instructions taking (rd, rs1, rs2).
_RRR = {
    "add", "sub", "mul", "div", "rem", "and", "or", "xor",
    "sll", "srl", "sra", "slt", "fadd", "fsub", "fmul", "fdiv", "fclt",
}
#: Instructions taking (rd, rs1, imm).
_RRI = {"addi", "andi", "ori", "xori", "slli", "srli", "slti"}
#: Loads/stores taking (reg, base, offset).
_MEM = {"lw", "lb", "ld", "sw", "sb", "sd"}
#: Branches taking (rs1, rs2, label).
_BRANCH = {"beq", "bne", "blt", "bge", "ble", "bgt"}
#: Unary register-register ops (rd, rs1).
_RR = {"mov", "fneg", "fmov", "cvtif", "cvtfi"}

_METHOD_ALIASES = {"and": "and_", "or": "or_"}


def _parse_value(token: str) -> float:
    try:
        if "." in token or "e" in token.lower():
            return float(token)
        return int(token, 0)
    except ValueError as exc:
        raise AssemblyError(f"bad numeric literal {token!r}") from exc


def _split_operands(rest: str) -> "list[str]":
    return [t.strip() for t in rest.split(",") if t.strip()]


class Assembler:
    """Parses assembly text into a :class:`Program`."""

    def __init__(self, name: str = "asm"):
        self.builder = ProgramBuilder(name)

    def assemble(self, text: str) -> Program:
        """Assemble ``text`` and return the finalized program."""
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.split(";")[0].split("#")[0].strip()
            if not line:
                continue
            try:
                self._line(line)
            except AssemblyError as exc:
                raise AssemblyError(f"line {lineno}: {exc}") from exc
        return self.builder.build()

    def _line(self, line: str) -> None:
        if line.endswith(":"):
            self.builder.label(line[:-1].strip())
            return
        if line.startswith("."):
            self._directive(line)
            return
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = _split_operands(parts[1]) if len(parts) > 1 else []
        self._instruction(mnemonic, operands)

    def _directive(self, line: str) -> None:
        tokens = line.split()
        name = tokens[0]
        if name == ".alloc":
            if len(tokens) not in (3, 4):
                raise AssemblyError(".alloc takes: name nbytes [global|heap]")
            where = tokens[3] if len(tokens) == 4 else "global"
            nbytes = int(tokens[2], 0)
            if where == "global":
                self.builder.alloc_global(tokens[1], nbytes)
            elif where == "heap":
                self.builder.alloc_heap(tokens[1], nbytes)
            else:
                raise AssemblyError(f"unknown segment {where!r}")
        elif name in (".word", ".double"):
            if len(tokens) != 3:
                raise AssemblyError(f"{name} takes: name[+offset] value")
            address = self._data_address(tokens[1])
            value = _parse_value(tokens[2])
            if name == ".word":
                self.builder.init_word(address, int(value))
            else:
                self.builder.init_double(address, float(value))
        else:
            raise AssemblyError(f"unknown directive {name!r}")

    def _data_address(self, spec: str) -> int:
        base, _, offset = spec.partition("+")
        address = self.builder.address_of(base)
        if offset:
            address += int(offset, 0)
        return address

    def _resolve_imm(self, token: str) -> int:
        """An immediate may be a number or the address of an allocation."""
        try:
            return int(token, 0)
        except ValueError:
            return self._data_address(token)

    def _instruction(self, mnemonic: str, operands: "list[str]") -> None:
        b = self.builder
        method_name = _METHOD_ALIASES.get(mnemonic, mnemonic)
        if mnemonic in _RRR:
            self._expect(mnemonic, operands, 3)
            getattr(b, method_name)(*operands)
        elif mnemonic in _RRI:
            self._expect(mnemonic, operands, 3)
            getattr(b, method_name)(operands[0], operands[1],
                                    self._resolve_imm(operands[2]))
        elif mnemonic in _RR:
            self._expect(mnemonic, operands, 2)
            getattr(b, method_name)(*operands)
        elif mnemonic in _MEM:
            if len(operands) == 2:
                operands = operands + ["0"]
            self._expect(mnemonic, operands, 3)
            getattr(b, method_name)(operands[0], operands[1],
                                    self._resolve_imm(operands[2]))
        elif mnemonic in _BRANCH:
            self._expect(mnemonic, operands, 3)
            getattr(b, method_name)(operands[0], operands[1], operands[2])
        elif mnemonic == "li":
            self._expect(mnemonic, operands, 2)
            b.li(operands[0], self._resolve_imm(operands[1]))
        elif mnemonic == "j":
            self._expect(mnemonic, operands, 1)
            b.j(operands[0])
        elif mnemonic == "jal":
            if len(operands) == 1:
                b.jal(operands[0])
            else:
                self._expect(mnemonic, operands, 2)
                b.jal(operands[1], link=operands[0])
        elif mnemonic == "jr":
            self._expect(mnemonic, operands, 1)
            b.jr(operands[0])
        elif mnemonic == "nop":
            b.nop()
        elif mnemonic == "halt":
            b.halt()
        else:
            raise AssemblyError(f"unknown mnemonic {mnemonic!r}")

    @staticmethod
    def _expect(mnemonic: str, operands: "list[str]", count: int) -> None:
        if len(operands) != count:
            raise AssemblyError(
                f"{mnemonic} expects {count} operands, got {len(operands)}"
            )


def assemble(text: str, name: str = "asm") -> Program:
    """Assemble ``text`` into a :class:`Program`."""
    return Assembler(name).assemble(text)
