"""The simulated RISC ISA: opcodes, builder DSL, assembler, interpreter."""

from .assembler import Assembler, assemble
from .builder import ProgramBuilder
from .disasm import disassemble, disassemble_instruction
from .fanout import TraceFanout, fan_out
from .instruction import Instruction
from .interpreter import ExecResult, Interpreter, run_program
from .opcodes import OpClass, Opcode
from .program import Program
from .tracefile import load_trace, save_trace
from .trace import IFETCH, READ, WRITE, DynInstr, MemRef

__all__ = [
    "Assembler",
    "assemble",
    "ProgramBuilder",
    "disassemble",
    "disassemble_instruction",
    "TraceFanout",
    "fan_out",
    "Instruction",
    "ExecResult",
    "Interpreter",
    "run_program",
    "OpClass",
    "Opcode",
    "Program",
    "load_trace",
    "save_trace",
    "DynInstr",
    "MemRef",
    "IFETCH",
    "READ",
    "WRITE",
]
