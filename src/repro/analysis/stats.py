"""Small statistics helpers used across analyses and experiments."""

from __future__ import annotations

import math


def arithmetic_mean(values) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def geometric_mean(values) -> float:
    """Geometric mean of positive values; 0.0 for an empty sequence."""
    values = list(values)
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def harmonic_mean(values) -> float:
    """Harmonic mean of positive values; 0.0 for an empty sequence."""
    values = list(values)
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("harmonic mean requires positive values")
    return len(values) / sum(1.0 / v for v in values)


class RunningMean:
    """Streaming mean/min/max accumulator."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.minimum = None
        self.maximum = None

    def add(self, value) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


def percentile(values, q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]); 0.0 when empty."""
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


class Distribution:
    """A recorded sample set with mean/extrema/percentile queries.

    Used for latency distributions (e.g. broadcast recovery latency in
    :class:`repro.faults.RecoveryStats`) where the full shape — not just
    the mean — is the observable of interest.
    """

    __slots__ = ("values",)

    def __init__(self):
        self.values = []

    def add(self, value) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return arithmetic_mean(self.values)

    @property
    def maximum(self):
        return max(self.values) if self.values else 0

    def percentile(self, q: float) -> float:
        return percentile(self.values, q)

    def summary(self) -> dict:
        """Scalar digest: count, mean, p50, p95, max."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "max": self.maximum,
        }


def speedup(baseline_cycles: float, improved_cycles: float) -> float:
    """Classic speedup: baseline time over improved time."""
    if improved_cycles <= 0:
        raise ValueError("improved_cycles must be positive")
    return baseline_cycles / improved_cycles
