"""Small statistics helpers used across analyses and experiments.

The sample-set machinery (:class:`Distribution`, :func:`percentile`)
is backed by :mod:`repro.obs.metrics` — one nearest-rank implementation
serves this module, the metrics registry, and every report built on
either.
"""

from __future__ import annotations

import math

from ..obs.metrics import Histogram, nearest_rank_percentile


def arithmetic_mean(values) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def geometric_mean(values) -> float:
    """Geometric mean of positive values; 0.0 for an empty sequence."""
    values = list(values)
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def harmonic_mean(values) -> float:
    """Harmonic mean of positive values; 0.0 for an empty sequence."""
    values = list(values)
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("harmonic mean requires positive values")
    return len(values) / sum(1.0 / v for v in values)


class RunningMean:
    """Streaming mean/min/max accumulator."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.minimum = None
        self.maximum = None

    def add(self, value) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


def percentile(values, q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]); 0.0 when empty."""
    return nearest_rank_percentile(values, q)


class Distribution(Histogram):
    """A recorded sample set with mean/extrema/percentile queries.

    Used for latency distributions (e.g. broadcast recovery latency in
    :class:`repro.faults.RecoveryStats`) where the full shape — not just
    the mean — is the observable of interest.  Since the metrics
    registry this is the legacy name for
    :class:`repro.obs.metrics.Histogram` (identical behaviour, so a
    ``Distribution`` can live inside a registry and vice versa).
    """

    __slots__ = ()


def speedup(baseline_cycles: float, improved_cycles: float) -> float:
    """Classic speedup: baseline time over improved time."""
    if improved_cycles <= 0:
        raise ValueError("improved_cycles must be positive")
    return baseline_cycles / improved_cycles
