"""Off-chip traffic accounting under ESP (paper Section 3.1, Table 1).

"ESP reduces traffic ... by eliminating both request traffic and write
traffic from the global interconnect."  We filter a program's data
references through the paper's measurement cache (64KB, two-way,
write-allocate, write-back L1) and compare:

* conventional: every miss costs a request (address/tag) plus a response
  (line + tag); every write-back costs a line + tag;
* ESP: every miss costs exactly one broadcast (line + tag) — no requests,
  no write-backs.

Transactions count a request/response pair as two (so the transaction
reduction is always at least 50%).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.trace import IFETCH, WRITE
from ..memory.cache import Cache
from ..params import CacheConfig

#: Default measurement cache: Table 1's configuration.
TABLE1_CACHE = CacheConfig(
    size_bytes=64 * 1024,
    assoc=2,
    line_size=32,
    write_policy="writeback",
    write_allocate=True,
)


@dataclass
class TrafficReport:
    """Byte and transaction counts for one benchmark run."""

    misses: int
    writebacks: int
    accesses: int
    line_size: int
    tag_bytes: int = 8

    # ------------------------------------------------------------------
    # Conventional (request/response) accounting.
    # ------------------------------------------------------------------
    @property
    def conventional_bytes(self) -> int:
        request = self.misses * self.tag_bytes
        response = self.misses * (self.line_size + self.tag_bytes)
        writeback = self.writebacks * (self.line_size + self.tag_bytes)
        return request + response + writeback

    @property
    def conventional_transactions(self) -> int:
        return 2 * self.misses + self.writebacks

    # ------------------------------------------------------------------
    # ESP accounting: only data broadcasts remain.
    # ------------------------------------------------------------------
    @property
    def esp_bytes(self) -> int:
        return self.misses * (self.line_size + self.tag_bytes)

    @property
    def esp_transactions(self) -> int:
        return self.misses

    # ------------------------------------------------------------------
    # Table 1's two rows.
    # ------------------------------------------------------------------
    @property
    def bytes_eliminated(self) -> float:
        total = self.conventional_bytes
        if not total:
            return 0.0
        return 1.0 - self.esp_bytes / total

    @property
    def transactions_eliminated(self) -> float:
        total = self.conventional_transactions
        if not total:
            return 0.0
        return 1.0 - self.esp_transactions / total


def measure_esp_traffic(program, cache_config: CacheConfig = TABLE1_CACHE,
                        limit=None, include_ifetch: bool = False,
                        tag_bytes: int = 8,
                        engine: str = "auto") -> TrafficReport:
    """Run ``program`` through the measurement cache and account traffic.

    Matches the paper's methodology: an execution-driven run filtered by
    a level-one data cache; requests and write-backs are the traffic ESP
    removes.  Set ``include_ifetch`` to also filter instruction fetches
    through the same cache (the paper measures the data cache only).
    ``engine`` selects the functional front end
    (:func:`repro.isa.codegen.make_execution`); the default ``"auto"``
    uses generated code where supported — the data-only reference
    stream is exactly where specialization pays, since a generated
    stepper skips non-memory instructions without yielding at all.
    """
    from ..isa.codegen import make_execution

    cache = Cache(cache_config, name="table1")
    interp = make_execution(program, engine=engine)
    misses = 0
    writebacks = 0
    accesses = 0
    for ref in interp.mem_refs(limit=limit, include_ifetch=include_ifetch):
        if ref.kind == IFETCH and not include_ifetch:
            continue
        accesses += 1
        result = cache.commit_access(ref.addr, is_write=(ref.kind == WRITE))
        if not result.hit and (result.filled or ref.kind != WRITE):
            # A fill (read or write-allocate) moves a line on-chip.
            misses += 1
        elif not result.hit and not result.filled:
            # Write-noallocate miss: the word itself goes off-chip; count
            # it as a (word-sized) write-back for the conventional system.
            writebacks += 1
        if result.writeback is not None:
            writebacks += 1
    return TrafficReport(
        misses=misses,
        writebacks=writebacks,
        accesses=accesses,
        line_size=cache_config.line_size,
        tag_bytes=tag_bytes,
    )
