"""Export experiment rows to CSV/JSON for downstream plotting.

Every ``run_*`` driver returns dataclass rows; these helpers flatten
them generically so new experiments export without bespoke code.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json


def _flatten(row) -> dict:
    """Dataclass (or mapping) -> flat dict of scalar fields."""
    if dataclasses.is_dataclass(row) and not isinstance(row, type):
        raw = dataclasses.asdict(row)
    elif isinstance(row, dict):
        raw = dict(row)
    else:
        raise TypeError(f"cannot export row of type {type(row).__name__}")
    flat = {}
    for key, value in raw.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            flat[key] = value
        # Nested structures (full result objects) are dropped: exports
        # carry the scalar series the paper plots.
    return flat


def rows_to_csv(rows, extra_columns=None) -> str:
    """Render dataclass rows as CSV text (header + one line per row)."""
    flats = [_flatten(row) for row in rows]
    if extra_columns:
        for flat, extras in zip(flats, extra_columns):
            flat.update(extras)
    if not flats:
        return ""
    fieldnames = list(flats[0])
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames)
    writer.writeheader()
    for flat in flats:
        writer.writerow({k: flat.get(k, "") for k in fieldnames})
    return buffer.getvalue()


def rows_to_json(rows, indent: int = 2) -> str:
    """Render dataclass rows as a JSON array."""
    return json.dumps([_flatten(row) for row in rows], indent=indent)


def write_csv(path, rows) -> None:
    """Write rows to a CSV file."""
    with open(path, "w", newline="") as handle:
        handle.write(rows_to_csv(rows))


def write_json(path, rows) -> None:
    """Write rows to a JSON file."""
    with open(path, "w") as handle:
        handle.write(rows_to_json(rows))
