"""Analyses: ESP traffic accounting, statistics, cost model, reports."""

from .cost import CostModel
from .export import rows_to_csv, rows_to_json, write_csv, write_json
from .timeline import Timeline, TimelineRecorder, TimelineSample
from .report import format_fault_summary, format_ipc, format_percent, \
    format_table
from .stats import (
    Distribution,
    RunningMean,
    arithmetic_mean,
    geometric_mean,
    harmonic_mean,
    percentile,
    speedup,
)
from .traffic import TABLE1_CACHE, TrafficReport, measure_esp_traffic

__all__ = [
    "CostModel",
    "rows_to_csv",
    "rows_to_json",
    "write_csv",
    "write_json",
    "Timeline",
    "TimelineRecorder",
    "TimelineSample",
    "format_fault_summary",
    "format_ipc",
    "format_percent",
    "format_table",
    "Distribution",
    "RunningMean",
    "arithmetic_mean",
    "geometric_mean",
    "harmonic_mean",
    "percentile",
    "speedup",
    "TABLE1_CACHE",
    "TrafficReport",
    "measure_esp_traffic",
]
