"""Cycle-sampled timelines of a DataScalar run.

Attach a :class:`TimelineRecorder` to ``DataScalarSystem.run(observer=…)``
to sample per-node progress (commits, BSHR/DCUB occupancy) and
interconnect load over time — the raw series behind utilization plots
and behind diagnosing convoying between nodes.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field


@dataclass
class TimelineSample:
    """One sampling instant."""

    cycle: int
    committed: "list[int]"
    bshr_occupancy: "list[int]"
    dcub_occupancy: "list[int]"
    broadcasts_sent: "list[int]"
    bus_transactions: int


@dataclass
class Timeline:
    """The collected series."""

    samples: "list[TimelineSample]" = field(default_factory=list)

    def series(self, name: str, node=None):
        """Extract one series: a scalar field, or a per-node field with
        ``node`` selecting the element."""
        out = []
        for sample in self.samples:
            value = getattr(sample, name)
            if isinstance(value, list):
                if node is None:
                    raise ValueError(f"{name} is per-node; pass node=")
                value = value[node]
            out.append(value)
        return out

    def cycles(self):
        return [sample.cycle for sample in self.samples]

    def commit_skew(self):
        """Max-min committed count per sample — how far ahead the leader
        runs (the datathreading skew)."""
        return [max(s.committed) - min(s.committed) for s in self.samples]

    def to_csv(self) -> str:
        if not self.samples:
            return ""
        nodes = len(self.samples[0].committed)
        fields = (["cycle"]
                  + [f"committed_{i}" for i in range(nodes)]
                  + [f"bshr_{i}" for i in range(nodes)]
                  + [f"dcub_{i}" for i in range(nodes)]
                  + [f"broadcasts_{i}" for i in range(nodes)]
                  + ["bus_transactions"])
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(fields)
        for s in self.samples:
            writer.writerow([s.cycle, *s.committed, *s.bshr_occupancy,
                             *s.dcub_occupancy, *s.broadcasts_sent,
                             s.bus_transactions])
        return buffer.getvalue()


class TimelineRecorder:
    """The observer: pass to ``DataScalarSystem.run(observer=recorder)``."""

    def __init__(self, sample_every: int = 200):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every
        self.timeline = Timeline()

    def __call__(self, cycle, pipelines, nodes, medium) -> None:
        if cycle % self.sample_every:
            return
        self.timeline.samples.append(TimelineSample(
            cycle=cycle,
            committed=[p.stats.committed for p in pipelines],
            bshr_occupancy=[n.bshr.occupancy() for n in nodes],
            dcub_occupancy=[n.dcub.occupancy() for n in nodes],
            broadcasts_sent=[n.broadcaster.stats.sent for n in nodes],
            bus_transactions=medium.transactions,
        ))
