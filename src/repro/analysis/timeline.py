"""Cycle-sampled timelines of a DataScalar run.

Attach a :class:`TimelineRecorder` to ``DataScalarSystem.run(observer=…)``
to sample per-node progress (commits, BSHR/DCUB occupancy) and
interconnect load over time — the raw series behind utilization plots
and behind diagnosing convoying between nodes.

The samples are stored as :class:`repro.obs.metrics.Series` inside a
:class:`~repro.obs.metrics.MetricsRegistry` under ``timeline.*`` names
(``timeline.cycle``, ``timeline.committed.0``, ...), so a metrics export
of a recorded run carries the full timeline.  The public surface —
``timeline.samples``, ``series()``, ``commit_skew()``, and the
``to_csv()`` column schema — is unchanged.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass

from ..obs.metrics import MetricsRegistry

#: Per-node sampled fields, in CSV column-group order.
_NODE_FIELDS = ("committed", "bshr_occupancy", "dcub_occupancy",
                "broadcasts_sent")
#: CSV column-group labels for the per-node fields.
_CSV_LABELS = {"committed": "committed", "bshr_occupancy": "bshr",
               "dcub_occupancy": "dcub", "broadcasts_sent": "broadcasts"}


@dataclass
class TimelineSample:
    """One sampling instant."""

    cycle: int
    committed: "list[int]"
    bshr_occupancy: "list[int]"
    dcub_occupancy: "list[int]"
    broadcasts_sent: "list[int]"
    bus_transactions: int


class Timeline:
    """The collected series, registry-backed."""

    def __init__(self, registry: "MetricsRegistry | None" = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.num_nodes = 0

    def append(self, sample: TimelineSample) -> None:
        """Record one sampling instant into the registry series."""
        if self.num_nodes == 0:
            self.num_nodes = len(sample.committed)
        registry = self.registry
        registry.series("timeline.cycle").append(sample.cycle)
        registry.series("timeline.bus_transactions").append(
            sample.bus_transactions)
        for name in _NODE_FIELDS:
            values = getattr(sample, name)
            for node, value in enumerate(values):
                registry.series(f"timeline.{name}.{node}").append(value)

    def __len__(self) -> int:
        if "timeline.cycle" not in self.registry:
            return 0
        return len(self.registry.series("timeline.cycle"))

    @property
    def samples(self) -> "list[TimelineSample]":
        """The recorded instants, synthesized from the registry."""
        count = len(self)
        if not count:
            return []
        registry = self.registry
        cycle = registry.series("timeline.cycle").values
        bus = registry.series("timeline.bus_transactions").values
        per_node = {
            name: [registry.series(f"timeline.{name}.{node}").values
                   for node in range(self.num_nodes)]
            for name in _NODE_FIELDS
        }
        return [
            TimelineSample(
                cycle=int(cycle[i]),
                committed=[series[i] for series in per_node["committed"]],
                bshr_occupancy=[series[i]
                                for series in per_node["bshr_occupancy"]],
                dcub_occupancy=[series[i]
                                for series in per_node["dcub_occupancy"]],
                broadcasts_sent=[series[i]
                                 for series in per_node["broadcasts_sent"]],
                bus_transactions=bus[i],
            )
            for i in range(count)
        ]

    def series(self, name: str, node=None):
        """Extract one series: a scalar field, or a per-node field with
        ``node`` selecting the element."""
        if name in _NODE_FIELDS:
            if node is None:
                raise ValueError(f"{name} is per-node; pass node=")
            return list(self.registry.series(f"timeline.{name}.{node}").values)
        return list(self.registry.series(f"timeline.{name}").values)

    def cycles(self):
        return self.series("cycle")

    def commit_skew(self):
        """Max-min committed count per sample — how far ahead the leader
        runs (the datathreading skew)."""
        columns = [self.registry.series(f"timeline.committed.{node}").values
                   for node in range(self.num_nodes)]
        return [max(row) - min(row) for row in zip(*columns)]

    def to_csv(self) -> str:
        if not len(self):
            return ""
        nodes = self.num_nodes
        fields = (["cycle"]
                  + [f"{_CSV_LABELS[name]}_{i}"
                     for name in _NODE_FIELDS for i in range(nodes)]
                  + ["bus_transactions"])
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(fields)
        for s in self.samples:
            writer.writerow([s.cycle, *s.committed, *s.bshr_occupancy,
                             *s.dcub_occupancy, *s.broadcasts_sent,
                             s.bus_transactions])
        return buffer.getvalue()


class TimelineRecorder:
    """The observer: pass to ``DataScalarSystem.run(observer=recorder)``."""

    def __init__(self, sample_every: int = 200,
                 registry: "MetricsRegistry | None" = None):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every
        self.timeline = Timeline(registry)

    def __call__(self, cycle, pipelines, nodes, medium) -> None:
        if cycle % self.sample_every:
            return
        self.timeline.append(TimelineSample(
            cycle=cycle,
            committed=[p.stats.committed for p in pipelines],
            bshr_occupancy=[n.bshr.occupancy() for n in nodes],
            dcub_occupancy=[n.dcub.occupancy() for n in nodes],
            broadcasts_sent=[n.broadcaster.stats.sent for n in nodes],
            bus_transactions=medium.transactions,
        ))
