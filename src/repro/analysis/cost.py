"""Wood–Hill cost-effectiveness (paper Section 4.4).

"Wood and Hill showed that for a parallel system to be cost-effective,
the costup (the relative increase in total cost as more processors are
added) should be less than the speedup."  A DataScalar system replaces a
single processor + dumb memory with N processor/memory chips; when memory
dominates chip cost, the costup of adding processors is small, so even
sub-linear speedups can be cost-effective.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class CostModel:
    """Relative component costs of one node.

    ``processor_cost`` is the per-node processing logic; ``memory_cost``
    is the *total* memory cost of the machine (each DataScalar node holds
    ``1/N`` of it, plus the replicated fraction); ``overhead_cost`` covers
    packaging/interconnect per node.
    """

    processor_cost: float = 1.0
    memory_cost: float = 4.0
    overhead_cost: float = 0.25
    #: Fraction of memory statically replicated at every node.
    replicated_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.processor_cost < 0 or self.memory_cost < 0:
            raise ConfigError("costs must be non-negative")
        if self.overhead_cost < 0:
            raise ConfigError("overhead_cost must be non-negative")
        if not 0.0 <= self.replicated_fraction <= 1.0:
            raise ConfigError("replicated_fraction must be in [0, 1]")

    def system_cost(self, num_nodes: int) -> float:
        """Total cost of an ``num_nodes``-node DataScalar machine."""
        if num_nodes < 1:
            raise ConfigError("num_nodes must be >= 1")
        communicated = self.memory_cost * (1.0 - self.replicated_fraction)
        replicated = self.memory_cost * self.replicated_fraction
        return (num_nodes * (self.processor_cost + self.overhead_cost)
                + communicated + num_nodes * replicated)

    def costup(self, num_nodes: int) -> float:
        """Cost relative to the one-node machine."""
        return self.system_cost(num_nodes) / self.system_cost(1)

    def is_cost_effective(self, num_nodes: int, speedup: float) -> bool:
        """Wood–Hill criterion: speedup must exceed costup."""
        if speedup <= 0:
            raise ConfigError("speedup must be positive")
        return speedup > self.costup(num_nodes)

    def breakeven_speedup(self, num_nodes: int) -> float:
        """The minimum speedup at which ``num_nodes`` nodes pay off."""
        return self.costup(num_nodes)
