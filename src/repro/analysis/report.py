"""Plain-text table formatting for the experiment drivers.

Every experiment prints the same rows/series the paper reports; these
helpers render them as aligned ASCII tables.
"""

from __future__ import annotations


def format_table(headers, rows, title=None) -> str:
    """Render ``rows`` (sequences of cells) under ``headers``.

    Cells are stringified; numeric cells are right-aligned, text cells
    left-aligned.
    """
    headers = [str(h) for h in headers]
    printable = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in printable:
        for index, cell in enumerate(row):
            if index >= len(widths):
                widths.append(len(cell))
            else:
                widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row, raw in zip(printable, rows):
        cells = []
        for index, cell in enumerate(row):
            width = widths[index]
            if isinstance(raw[index], (int, float)) and not isinstance(
                    raw[index], bool):
                cells.append(cell.rjust(width))
            else:
                cells.append(cell.ljust(width))
        lines.append("  ".join(cells))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_percent(value: float, digits: int = 0) -> str:
    """``0.37 -> '37%'``."""
    return f"{value * 100:.{digits}f}%"


def format_ipc(value: float) -> str:
    return f"{value:.2f}"


def format_fault_summary(faults: dict) -> str:
    """Render a ``DataScalarResult.extra['faults']`` snapshot.

    One table of injected-fault counts against detection/recovery
    accounting, plus the recovery-latency distribution — the graceful
    degradation observables (see ``docs/protocol.md``, "Failure model
    and recovery").
    """
    injected = faults["injected"]
    recovery = faults["recovery"]
    latency = recovery["latency"]
    rows = [
        ["broadcast drops", injected["broadcast_drops"]],
        ["receiver drops", injected["receiver_drops"]],
        ["corruptions", injected["corruptions"]],
        ["jitter events", injected["jitter_events"]],
        ["stalls", injected["stalls"]],
        ["timeouts", recovery["timeouts"]],
        ["nacks", recovery["nacks"]],
        ["retransmit requests", recovery["requests"]],
        ["retransmissions", recovery["retransmits"]],
        ["recovered", recovery["recovered"]],
        ["retry depth high-water", recovery["retry_high_water"]],
        ["recovery latency p50/p95/max",
         f"{latency['p50']:g}/{latency['p95']:g}/{latency['max']:g}"],
    ]
    return format_table(["event", "count"], rows,
                        title=f"Fault injection (seed {faults['seed']})")


def render_bars(labels, values, width: int = 40, title=None,
                unit: str = "") -> str:
    """ASCII horizontal bar chart (the figures' visual form).

    Bars scale to the maximum value; each line shows the label, the bar,
    and the numeric value.
    """
    labels = [str(label) for label in labels]
    values = list(values)
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    lines = [title] if title else []
    if not values:
        return "\n".join(lines)
    peak = max(values)
    label_width = max(len(label) for label in labels)
    for label, value in zip(labels, values):
        filled = int(round(width * value / peak)) if peak > 0 else 0
        bar = "#" * filled
        lines.append(f"{label.ljust(label_width)} |{bar.ljust(width)}| "
                     f"{value:.2f}{unit}")
    return "\n".join(lines)
