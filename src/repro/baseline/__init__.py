"""Baseline systems: the traditional IRAM + off-chip memory machine and
the perfect-data-cache upper bound."""

from .l2 import L2Memory, L2Result, L2System
from .perfect import PerfectMemory, PerfectSystem
from .traditional import TraditionalMemory, TraditionalResult, TraditionalSystem

__all__ = [
    "L2Memory",
    "L2Result",
    "L2System",
    "PerfectMemory",
    "PerfectSystem",
    "TraditionalMemory",
    "TraditionalResult",
    "TraditionalSystem",
]
