"""The traditional comparison system of Figure 6(a).

One processor chip holding ``1/N`` of main memory on-chip; the remaining
``(N-1)/N`` lives in off-chip memory reached by request/response
transactions over the same global bus a DataScalar system would use for
broadcasts.  For fairness the paper gives this system the same buses,
the same two-cycle network-interface penalty, and commit-time cache
updates; we therefore reuse the DCUB machinery to stage in-flight lines.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cpu.interface import LoadHandle, MemoryInterface
from ..cpu.pipeline import Pipeline, PipelineStats
from ..errors import SimulationError
from ..interconnect.bus import Bus
from ..interconnect.message import Message, MessageKind
from ..interconnect.queueing import LatencyQueue
from ..isa.interpreter import Interpreter
from ..memory.cache import Cache
from ..memory.layout import traditional_page_table
from ..memory.mainmem import BankedMemory
from ..params import TraditionalConfig
from ..core.dcub import DCUB
from ..core.node import _PrimaryHandle


class TraditionalMemory(MemoryInterface):
    """Request/response memory hierarchy behind a single core."""

    def __init__(self, config: TraditionalConfig, page_table, bus: Bus):
        self.config = config
        self.page_table = page_table
        self.bus = bus
        node = config.node
        self.icache = Cache(node.icache, name="i")
        self.dcache = Cache(node.dcache, name="d")
        self.onchip_mem = BankedMemory(
            node.memory.onchip_latency,
            num_banks=node.memory.num_banks,
            interleave_bytes=node.dcache.line_size,
            name="onchip",
        )
        self.offchip_mem = BankedMemory(
            node.memory.offchip_latency,
            num_banks=node.memory.num_banks,
            interleave_bytes=node.dcache.line_size,
            name="offchip",
        )
        self.ni_queue = LatencyQueue(config.bus.interface_latency, name="ni")
        self.dcub = DCUB(name="dcub-trad")
        if node.tlb_entries:
            from ..memory.tlb import TLB

            self.dtlb = TLB(node.tlb_entries, walker=self.onchip_mem,
                            name="dtlb")
        else:
            self.dtlb = None
        self.requests = 0
        self.onchip_fills = 0
        self.writethroughs_offchip = 0
        self.writebacks_offchip = 0

    def _is_onchip(self, addr: int) -> bool:
        return self.page_table.is_local(addr, 0)

    # ------------------------------------------------------------------
    # Issue side.
    # ------------------------------------------------------------------
    def load_issue(self, now: int, addr: int, size: int) -> LoadHandle:
        if self.dtlb is not None:
            now = self.dtlb.access(now, addr,
                                   self.config.node.memory.page_size)
        line = self.dcache.line_addr(addr)
        hit_latency = self.config.node.dcache.hit_latency
        if self.dcache.lookup(addr):
            handle = LoadHandle(addr, size, now)
            handle.issue_hit = True
            handle.complete(now + hit_latency)
            return handle
        entry = self.dcub.lookup(line)
        if entry is not None:
            handle = LoadHandle(addr, size, now)
            handle.issue_hit = False
            handle.dcub_line = line
            self.dcub.merge(entry, now, handle)
            return handle
        entry = self.dcub.allocate(line, now)
        handle = _PrimaryHandle(addr, size, now, entry)
        handle.issue_hit = False
        handle.dcub_line = line
        if self._is_onchip(addr):
            self.onchip_fills += 1
            handle.complete(self.onchip_mem.access(now + hit_latency, line))
        else:
            handle.complete(self._fetch_offchip(now + hit_latency, line))
        return handle

    def _fetch_offchip(self, now: int, line: int) -> int:
        """Request across the bus, access off-chip memory, response back."""
        self.requests += 1
        queued = self.ni_queue.enqueue(now)
        request = Message(MessageKind.REQUEST, src=0, line_addr=line,
                          payload_bytes=0)
        _, request_done = self.bus.transfer(queued, request)
        data_ready = self.offchip_mem.access(request_done, line)
        response = Message(MessageKind.RESPONSE, src=1, line_addr=line,
                           payload_bytes=self.config.node.dcache.line_size)
        _, response_done = self.bus.transfer(data_ready, response)
        return response_done

    # ------------------------------------------------------------------
    # Commit side.
    # ------------------------------------------------------------------
    def commit_mem(self, now: int, addr: int, size: int, is_store: bool,
                   handle) -> None:
        result = self.dcache.commit_access(addr, is_write=is_store)
        if result.writeback is not None:
            self._complete_writeback(now, result.writeback)
        if handle is not None and handle.dcub_line is not None:
            self.dcub.release(handle.dcub_line)
        if is_store and not result.hit and not result.filled:
            # Write-noallocate miss: the word itself goes to memory.
            self._write_through(now, addr, size)
        if is_store and result.filled and not self._is_onchip(addr):
            # Write-allocate fetched the line from off-chip at commit.
            self._fetch_offchip(now, self.dcache.line_addr(addr))

    def _write_through(self, now: int, addr: int, size: int) -> None:
        if self._is_onchip(addr):
            self.onchip_mem.access(now, addr)
            return
        self.writethroughs_offchip += 1
        queued = self.ni_queue.enqueue(now)
        message = Message(MessageKind.WRITEBACK, src=0,
                          line_addr=self.dcache.line_addr(addr),
                          payload_bytes=size)
        self.bus.transfer(queued, message)

    def _complete_writeback(self, now: int, line: int) -> None:
        if self._is_onchip(line):
            self.onchip_mem.access(now, line)
            return
        self.writebacks_offchip += 1
        queued = self.ni_queue.enqueue(now)
        message = Message(MessageKind.WRITEBACK, src=0, line_addr=line,
                          payload_bytes=self.config.node.dcache.line_size)
        self.bus.transfer(queued, message)

    # ------------------------------------------------------------------
    # Instruction fetch.
    # ------------------------------------------------------------------
    def ifetch_line(self, now: int, line_addr: int) -> int:
        result = self.icache.commit_access(line_addr, is_write=False)
        if result.hit:
            return now
        if self._is_onchip(line_addr):
            return self.onchip_mem.access(now, line_addr)
        return self._fetch_offchip(now, line_addr)

    def drain(self, now: int) -> bool:
        return True

    def validate_final_state(self) -> None:
        self.dcub.assert_drained()


@dataclass
class TraditionalResult:
    """Run outcome for the traditional baseline."""

    cycles: int
    instructions: int
    pipeline: PipelineStats
    requests: int
    writebacks_offchip: int
    writethroughs_offchip: int
    bus_transactions: int
    bus_payload_bytes: int
    bus_utilization: float

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


class TraditionalSystem:
    """Single core, 1/N memory on-chip, request/response off-chip."""

    def __init__(self, config: TraditionalConfig = None):
        self.config = config or TraditionalConfig()

    def run(self, program, replicated_pages=frozenset(), limit=None,
            stack_bytes: int = 64 * 1024,
            checkpoint_every=None, checkpoint_sink=None,
            resume_from=None, stop_after=None,
            warmup=None) -> "TraditionalResult | None":
        """Simulate to completion.  The checkpoint arguments mirror
        :meth:`repro.core.DataScalarSystem.run` (kind
        ``"traditional"``)."""
        from ..obs import spans

        config = self.config
        checkpointing = (checkpoint_every is not None
                         or checkpoint_sink is not None
                         or resume_from is not None
                         or stop_after is not None or warmup)
        if resume_from is not None:
            from ..checkpoint import state as ckpt_state

            ckpt = resume_from
            if ckpt.kind != "traditional":
                raise SimulationError(
                    f"cannot resume a {ckpt.kind!r} checkpoint on a "
                    f"traditional system")
            state = ckpt_state.materialize(ckpt)
            pipeline = state["pipeline"]
            memory = state["memory"]
            page_table = state["page_table"]
            bus = memory.bus
            cycle = ckpt.cycle
            trace = self._make_trace(program, limit)
            with spans.span("frontend-replay"):
                ckpt_state.advance_trace(trace, ckpt.consumed[0])
            pipeline.rebind_trace(trace)
        else:
            with spans.span("layout"):
                page_table = traditional_page_table(
                    program,
                    denom=config.onchip_fraction_denom,
                    page_size=config.node.memory.page_size,
                    distribution_block_pages=config.distribution_block_pages,
                    replicate_text=config.replicate_text,
                    replicated_pages=replicated_pages,
                    stack_bytes=stack_bytes,
                )
            if checkpointing:
                from ..checkpoint import state as ckpt_state

                trace = self._make_trace(program, limit)
                if warmup:
                    with spans.span("warmup"):
                        ckpt_state.advance_trace(trace, warmup)
            else:
                trace = Interpreter(program).trace(limit=limit)
                recorder = spans.active()
                if recorder is not None:
                    trace = spans.timed_iter(
                        trace,
                        recorder.accumulator("frontend",
                                             under="timing-loop"))
            with spans.span("setup"):
                bus = Bus(config.bus)
                memory = TraditionalMemory(config, page_table, bus)
                pipeline = Pipeline(config.node.cpu, memory, trace,
                                    icache_line=config.node.icache.line_size)
            cycle = 0
        stop_requested = False
        with spans.span("timing-loop"):
            if checkpointing:
                from ..checkpoint.state import drive_single_pipeline

                stop_requested, cycle = drive_single_pipeline(
                    "traditional", pipeline, cycle, config.max_cycles,
                    checkpoint_every, checkpoint_sink, stop_after,
                    lambda: {"pipeline": pipeline, "memory": memory,
                             "page_table": page_table},
                    trace,
                    f"traditional run exceeded {config.max_cycles} cycles")
            else:
                while not pipeline.done:
                    if cycle >= config.max_cycles:
                        raise SimulationError(
                            f"traditional run exceeded {config.max_cycles} "
                            f"cycles"
                        )
                    pipeline.tick(cycle)
                    cycle += 1
        if stop_requested:
            return None
        memory.validate_final_state()
        return TraditionalResult(
            cycles=cycle,
            instructions=pipeline.stats.committed,
            pipeline=pipeline.stats,
            requests=memory.requests,
            writebacks_offchip=memory.writebacks_offchip,
            writethroughs_offchip=memory.writethroughs_offchip,
            bus_transactions=bus.stats.transactions,
            bus_payload_bytes=bus.stats.payload_bytes,
            bus_utilization=bus.stats.utilization(cycle),
        )

    @staticmethod
    def _make_trace(program, limit):
        """Counted front end for checkpoint-enabled runs."""
        from ..isa.fanout import CountingTrace

        return CountingTrace(Interpreter(program).trace(limit=limit))
