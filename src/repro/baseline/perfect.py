"""The perfect-data-cache baseline.

Figures 7 and 8 compare every system against "an identical processor with
a perfect data cache (single-cycle access to any operand)".  Instruction
fetch is likewise single-cycle.
"""

from __future__ import annotations

from ..cpu.interface import LoadHandle, MemoryInterface
from ..cpu.pipeline import Pipeline, PipelineStats
from ..params import CPUConfig


class PerfectMemory(MemoryInterface):
    """Every access completes in ``hit_latency`` cycles, no state."""

    def __init__(self, hit_latency: int = 1):
        self.hit_latency = hit_latency
        self.loads = 0
        self.stores = 0

    def load_issue(self, now: int, addr: int, size: int) -> LoadHandle:
        handle = LoadHandle(addr, size, now)
        handle.issue_hit = True
        handle.complete(now + self.hit_latency)
        self.loads += 1
        return handle

    def commit_mem(self, now, addr, size, is_store, handle) -> None:
        if is_store:
            self.stores += 1

    def ifetch_line(self, now: int, line_addr: int) -> int:
        return now

    def drain(self, now: int) -> bool:
        return True


class PerfectSystem:
    """A single core in front of a perfect memory."""

    def __init__(self, cpu_config: CPUConfig = None):
        self.cpu_config = cpu_config or CPUConfig()
        self.memory = PerfectMemory()

    def run(self, program, max_cycles: int = 200_000_000, limit=None,
            checkpoint_every=None, checkpoint_sink=None,
            resume_from=None, stop_after=None,
            warmup=None) -> "PipelineStats | None":
        """Simulate ``program`` to completion; returns pipeline stats.

        The checkpoint arguments mirror
        :meth:`repro.core.DataScalarSystem.run` (kind ``"perfect"``)."""
        from ..isa.interpreter import Interpreter
        from ..obs import spans

        checkpointing = (checkpoint_every is not None
                         or checkpoint_sink is not None
                         or resume_from is not None
                         or stop_after is not None or warmup)
        if not checkpointing:
            trace = Interpreter(program).trace(limit=limit)
            recorder = spans.active()
            if recorder is not None:
                trace = spans.timed_iter(
                    trace,
                    recorder.accumulator("frontend", under="timing-loop"))
            pipeline = Pipeline(self.cpu_config, self.memory, trace)
            with spans.span("timing-loop"):
                return pipeline.run(max_cycles)

        from ..checkpoint import state as ckpt_state
        from ..errors import SimulationError
        from ..isa.fanout import CountingTrace

        if resume_from is not None:
            ckpt = resume_from
            if ckpt.kind != "perfect":
                raise SimulationError(
                    f"cannot resume a {ckpt.kind!r} checkpoint on a "
                    f"perfect system")
            state = ckpt_state.materialize(ckpt)
            pipeline = state["pipeline"]
            memory = state["memory"]
            self.memory = memory
            cycle = ckpt.cycle
            trace = CountingTrace(Interpreter(program).trace(limit=limit))
            with spans.span("frontend-replay"):
                ckpt_state.advance_trace(trace, ckpt.consumed[0])
            pipeline.rebind_trace(trace)
        else:
            trace = CountingTrace(Interpreter(program).trace(limit=limit))
            if warmup:
                with spans.span("warmup"):
                    ckpt_state.advance_trace(trace, warmup)
            pipeline = Pipeline(self.cpu_config, self.memory, trace)
            memory = self.memory
            cycle = 0
        with spans.span("timing-loop"):
            stop_requested, cycle = ckpt_state.drive_single_pipeline(
                "perfect", pipeline, cycle, max_cycles,
                checkpoint_every, checkpoint_sink, stop_after,
                lambda: {"pipeline": pipeline, "memory": memory},
                trace,
                f"program did not finish in {max_cycles} cycles")
        if stop_requested:
            return None
        return pipeline.stats
