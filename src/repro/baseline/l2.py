"""A traditional system that spends its on-chip memory as an L2 cache.

Paper Section 4.3: "the traditional system would certainly benefit if
all of the on-chip memory was devoted to a large second- or third-level
cache, [but] measuring such a system against our simulated DataScalar
implementation would be an unfair comparison" — they consider the IRAM a
commodity part whose on-chip memory is main memory.  This module builds
the dismissed alternative so the trade-off can be *measured*: all main
memory lives off-chip and the chip's capacity becomes a unified L2.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cpu.interface import LoadHandle, MemoryInterface
from ..cpu.pipeline import Pipeline, PipelineStats
from ..core.dcub import DCUB
from ..core.node import _PrimaryHandle
from ..errors import SimulationError
from ..interconnect.bus import Bus
from ..interconnect.message import Message, MessageKind
from ..interconnect.queueing import LatencyQueue
from ..isa.interpreter import Interpreter
from ..memory.cache import Cache
from ..memory.mainmem import BankedMemory
from ..params import CacheConfig, TraditionalConfig


class L2Memory(MemoryInterface):
    """L1 (commit-updated) over a unified on-chip L2 over off-chip DRAM."""

    def __init__(self, config: TraditionalConfig, l2_config: CacheConfig,
                 bus: Bus):
        self.config = config
        self.bus = bus
        node = config.node
        self.icache = Cache(node.icache, name="i")
        self.dcache = Cache(node.dcache, name="d")
        self.l2 = Cache(l2_config, name="l2")
        self.l2_latency = node.memory.onchip_latency
        self.offchip_mem = BankedMemory(
            node.memory.offchip_latency,
            num_banks=node.memory.num_banks,
            interleave_bytes=node.dcache.line_size,
            name="offchip",
        )
        self.ni_queue = LatencyQueue(config.bus.interface_latency, name="ni")
        self.dcub = DCUB(name="dcub-l2")
        self.l2_hits = 0
        self.l2_misses = 0
        self.requests = 0

    # ------------------------------------------------------------------
    def _fill_from_l2(self, now: int, line: int) -> int:
        """Service an L1 miss: L2 hit or off-chip round trip.  The L2 is
        private to one core, so it updates immediately."""
        result = self.l2.commit_access(line, is_write=False)
        if result.writeback is not None:
            self._writeback_offchip(now, result.writeback)
        if result.hit:
            self.l2_hits += 1
            return now + self.l2_latency
        self.l2_misses += 1
        self.requests += 1
        queued = self.ni_queue.enqueue(now + self.l2_latency)
        request = Message(MessageKind.REQUEST, src=0, line_addr=line,
                          payload_bytes=0)
        _, request_done = self.bus.transfer(queued, request)
        data_ready = self.offchip_mem.access(request_done, line)
        response = Message(MessageKind.RESPONSE, src=1, line_addr=line,
                           payload_bytes=self.config.node.dcache.line_size)
        _, response_done = self.bus.transfer(data_ready, response)
        return response_done

    def _writeback_offchip(self, now: int, line: int) -> None:
        queued = self.ni_queue.enqueue(now)
        message = Message(MessageKind.WRITEBACK, src=0, line_addr=line,
                          payload_bytes=self.config.node.dcache.line_size)
        self.bus.transfer(queued, message)

    # ------------------------------------------------------------------
    def load_issue(self, now: int, addr: int, size: int) -> LoadHandle:
        line = self.dcache.line_addr(addr)
        hit_latency = self.config.node.dcache.hit_latency
        if self.dcache.lookup(addr):
            handle = LoadHandle(addr, size, now)
            handle.issue_hit = True
            handle.complete(now + hit_latency)
            return handle
        entry = self.dcub.lookup(line)
        if entry is not None:
            handle = LoadHandle(addr, size, now)
            handle.issue_hit = False
            handle.dcub_line = line
            self.dcub.merge(entry, now, handle)
            return handle
        entry = self.dcub.allocate(line, now)
        handle = _PrimaryHandle(addr, size, now, entry)
        handle.issue_hit = False
        handle.dcub_line = line
        handle.complete(self._fill_from_l2(now + hit_latency, line))
        return handle

    def commit_mem(self, now: int, addr: int, size: int, is_store: bool,
                   handle) -> None:
        result = self.dcache.commit_access(addr, is_write=is_store)
        if result.writeback is not None:
            # L1 dirty eviction lands in the L2.
            l2_result = self.l2.commit_access(result.writeback,
                                              is_write=True)
            if l2_result.writeback is not None:
                self._writeback_offchip(now, l2_result.writeback)
        if handle is not None and handle.dcub_line is not None:
            self.dcub.release(handle.dcub_line)
        if is_store and not result.hit and not result.filled:
            # Write-noallocate L1 miss: the word goes to the L2.
            l2_result = self.l2.commit_access(self.dcache.line_addr(addr),
                                              is_write=True)
            if l2_result.writeback is not None:
                self._writeback_offchip(now, l2_result.writeback)

    def ifetch_line(self, now: int, line_addr: int) -> int:
        result = self.icache.commit_access(line_addr, is_write=False)
        if result.hit:
            return now
        return self._fill_from_l2(now, line_addr)

    def drain(self, now: int) -> bool:
        return True

    def validate_final_state(self) -> None:
        self.dcub.assert_drained()


@dataclass
class L2Result:
    """Run outcome for the L2-organized traditional system."""

    cycles: int
    instructions: int
    pipeline: PipelineStats
    l2_hits: int
    l2_misses: int
    requests: int
    bus_transactions: int

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def l2_hit_rate(self) -> float:
        total = self.l2_hits + self.l2_misses
        return self.l2_hits / total if total else 0.0


class L2System:
    """One core; all memory off-chip; on-chip capacity used as L2."""

    def __init__(self, config: TraditionalConfig = None,
                 l2_config: CacheConfig = None):
        self.config = config or TraditionalConfig()
        self.l2_config = l2_config or CacheConfig(
            size_bytes=64 * 1024, assoc=4, line_size=32,
            write_policy="writeback", write_allocate=True,
        )

    def run(self, program, limit=None) -> L2Result:
        bus = Bus(self.config.bus)
        memory = L2Memory(self.config, self.l2_config, bus)
        trace = Interpreter(program).trace(limit=limit)
        pipeline = Pipeline(self.config.node.cpu, memory, trace,
                            icache_line=self.config.node.icache.line_size)
        cycle = 0
        while not pipeline.done:
            if cycle >= self.config.max_cycles:
                raise SimulationError("L2 system exceeded max_cycles")
            pipeline.tick(cycle)
            cycle += 1
        memory.validate_final_state()
        return L2Result(
            cycles=cycle,
            instructions=pipeline.stats.committed,
            pipeline=pipeline.stats,
            l2_hits=memory.l2_hits,
            l2_misses=memory.l2_misses,
            requests=memory.requests,
            bus_transactions=bus.stats.transactions,
        )
