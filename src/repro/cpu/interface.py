"""The contract between the out-of-order core and a memory system.

The pipeline is generic: the DataScalar node, the traditional baseline,
and the perfect-cache baseline all plug in behind :class:`MemoryInterface`.
A load may complete at a cycle the memory system cannot yet know (a
DataScalar node waiting on another node's broadcast), so loads return a
:class:`LoadHandle` whose ``ready`` field is filled in when known.
"""

from __future__ import annotations


class LoadHandle:
    """Tracks one in-flight load.

    ``ready`` is the cycle the value is available to dependents, or
    ``None`` while unknown.  ``issue_hit`` records the issue-time cache
    outcome (``None`` when no cache probe was involved) for the
    correspondence protocol's commit-time reconciliation.
    """

    __slots__ = ("addr", "size", "issued_at", "ready", "issue_hit",
                 "found_in_bshr", "forwarded", "dcub_line")

    def __init__(self, addr: int, size: int, issued_at: int):
        self.addr = addr
        self.size = size
        self.issued_at = issued_at
        self.ready = None
        self.issue_hit = None
        self.found_in_bshr = False
        self.forwarded = False
        self.dcub_line = None

    def complete(self, cycle: int) -> None:
        """Resolve the load at ``cycle`` (idempotence is an error)."""
        assert self.ready is None, "load completed twice"
        self.ready = cycle

    def __repr__(self) -> str:
        state = "?" if self.ready is None else str(self.ready)
        return f"<LoadHandle {self.addr:#x} issued@{self.issued_at} ready={state}>"


class MemoryInterface:
    """Abstract memory system seen by one core.

    Implementations provide issue-time load timing, commit-time canonical
    cache updates (the correspondence discipline of paper Section 4.1),
    and instruction-fetch timing.
    """

    def load_issue(self, now: int, addr: int, size: int) -> LoadHandle:
        """Begin a data load at cycle ``now``; returns its handle."""
        raise NotImplementedError

    def private_load_issue(self, now: int, addr: int,
                           size: int) -> LoadHandle:
        """A result-communication private load (paper Section 5.1): it
        reads local memory directly, bypassing the shared-cache
        discipline — no broadcast, no cache fill, no commit-time access.
        Default: treat like a normal load (single-node systems)."""
        return self.load_issue(now, addr, size)

    def commit_mem(self, now: int, addr: int, size: int, is_store: bool,
                   handle) -> None:
        """Apply the canonical, in-order cache access for a committing
        memory instruction.  ``handle`` is the load's issue-time handle
        (``None`` for stores and forwarded loads carry
        ``issue_hit is None``); the correspondence protocol reconciles
        its issue-time outcome against the canonical one."""
        raise NotImplementedError

    def ifetch_line(self, now: int, line_addr: int) -> int:
        """Fetch an instruction cache line; returns the ready cycle."""
        raise NotImplementedError

    def drain(self, now: int) -> bool:
        """Called each cycle after the trace is exhausted; returns True
        when the memory system has no outstanding work."""
        return True
