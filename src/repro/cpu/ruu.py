"""The Register Update Unit: window entries and dependence wake-up.

The paper's processor "used a Register Update Unit (RUU) to keep track of
instruction dependencies" — a combined reorder buffer and issue window.
Entries wake dependents when their result-ready cycle becomes known
(at issue for fixed-latency operations; when the memory system resolves
the handle for loads).
"""

from __future__ import annotations

import heapq
from collections import deque

from ..isa.opcodes import OpClass

_LOAD = int(OpClass.LOAD)
_STORE = int(OpClass.STORE)


def _entry_seq(entry) -> int:
    return entry.seq


class RUUEntry:
    """One in-flight instruction."""

    __slots__ = (
        "seq", "op_class", "dest", "addr", "size", "dispatched_at",
        "operand_time", "unresolved", "dependents", "issued", "issued_at",
        "result_time", "handle", "is_load", "is_store", "private",
    )

    def __init__(self, dyn, now: int):
        self.seq = dyn.seq
        self.op_class = dyn.op_class
        self.dest = dyn.dest
        self.addr = dyn.addr
        self.size = dyn.size
        self.dispatched_at = now
        self.operand_time = now
        self.unresolved = 0
        self.dependents = None
        self.issued = False
        self.issued_at = -1
        self.result_time = None
        self.handle = None
        self.is_load = dyn.op_class == _LOAD
        self.is_store = dyn.op_class == _STORE
        self.private = getattr(dyn, "private", False)

    @property
    def is_mem(self) -> bool:
        return self.is_load or self.is_store

    def __repr__(self) -> str:
        return (f"<RUUEntry #{self.seq} {OpClass(self.op_class).name} "
                f"issued={self.issued} result={self.result_time}>")


class RUU:
    """The instruction window with dependence tracking.

    Dispatch links each entry to the last writer of each source register;
    an entry becomes *schedulable* once every producer's result time is
    known, at which point it enters the ready heap keyed by
    ``(operand_time, seq)`` — oldest-first among equally-ready entries.
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.window = deque()
        self._last_writer = {}
        self._ready_heap = []
        #: Entries that failed to issue this cycle retry next cycle; they
        #: all share the same key, so a plain list beats heap traffic.
        self._stalled = []
        self._stalled_retry = -1

    def __len__(self) -> int:
        return len(self.window)

    def is_full(self) -> bool:
        return len(self.window) >= self.capacity

    def head(self):
        return self.window[0] if self.window else None

    def dispatch(self, dyn, now: int) -> RUUEntry:
        """Insert a traced instruction, wiring register dependencies."""
        entry = RUUEntry(dyn, now)
        for src in dyn.srcs:
            producer = self._last_writer.get(src)
            if producer is None:
                continue
            if producer.result_time is not None:
                if producer.result_time > entry.operand_time:
                    entry.operand_time = producer.result_time
            else:
                entry.unresolved += 1
                if producer.dependents is None:
                    producer.dependents = [entry]
                else:
                    producer.dependents.append(entry)
        if dyn.dest is not None:
            self._last_writer[dyn.dest] = entry
        self.window.append(entry)
        if entry.unresolved == 0:
            heapq.heappush(self._ready_heap,
                           (entry.operand_time, entry.seq, entry))
        return entry

    def resolve(self, entry: RUUEntry, result_time: int) -> None:
        """Set ``entry``'s result time and wake its dependents."""
        entry.result_time = result_time
        dependents = entry.dependents
        if not dependents:
            return
        for dep in dependents:
            if result_time > dep.operand_time:
                dep.operand_time = result_time
            dep.unresolved -= 1
            if dep.unresolved == 0 and not dep.issued:
                heapq.heappush(self._ready_heap,
                               (dep.operand_time, dep.seq, dep))
        entry.dependents = None

    def schedulable(self, now: int):
        """Pop every entry whose operands are ready at ``now`` (ordered
        as the heap would order them: by ready time, then age); callers
        re-queue entries they cannot issue."""
        stalled = None
        if self._stalled and self._stalled_retry <= now:
            stalled = self._stalled
            retry = self._stalled_retry
            self._stalled = []
        if not self._stalled:
            # Requeues during this cycle's issue pass land in the bucket.
            self._stalled_retry = now + 1
        heap = self._ready_heap
        if stalled is not None:
            if heap and heap[0][0] <= now:
                merged = [(retry, entry.seq, entry) for entry in stalled]
                while heap and heap[0][0] <= now:
                    item = heapq.heappop(heap)
                    if not item[2].issued:
                        merged.append(item)
                merged.sort()
                return [entry for _, _, entry in merged]
            stalled.sort(key=_entry_seq)
            return stalled
        batch = []
        while heap and heap[0][0] <= now:
            _, _, entry = heapq.heappop(heap)
            if not entry.issued:
                batch.append(entry)
        return batch

    def requeue(self, entry: RUUEntry, not_before: int) -> None:
        """Put an un-issuable entry back, retrying at ``not_before``."""
        if not_before <= entry.operand_time:
            not_before = entry.operand_time + 1
        if not_before == self._stalled_retry:
            self._stalled.append(entry)
        else:
            heapq.heappush(self._ready_heap, (not_before, entry.seq, entry))

    def next_ready_time(self):
        """Earliest cycle any queued entry could be scheduled, or ``None``
        when nothing is waiting to issue."""
        ready = self._ready_heap[0][0] if self._ready_heap else None
        if self._stalled and (ready is None or self._stalled_retry < ready):
            return self._stalled_retry
        return ready

    def pop_head(self) -> RUUEntry:
        """Remove and return the oldest entry (it must be committable)."""
        return self.window.popleft()
