"""The Register Update Unit: window entries and dependence wake-up.

The paper's processor "used a Register Update Unit (RUU) to keep track of
instruction dependencies" — a combined reorder buffer and issue window.
Entries wake dependents when their result-ready cycle becomes known
(at issue for fixed-latency operations; when the memory system resolves
the handle for loads).

Entry objects are recycled through a free list: :meth:`RUU.pop_head`
returns the committed entry to the pool and :meth:`RUU.dispatch` reuses
it for the next dispatched instruction.  This is safe because a
committed entry can appear in no other structure — it was issued (so it
sits in neither the ready heap nor the stalled bucket), resolved (so
``dependents`` is ``None`` and it is not a pending load), and the
``_last_writer`` slot that may still name it is dropped at pop time
(a committed producer's result time is always in the past, so the
mapping could never again affect a later consumer).
"""

from __future__ import annotations

import heapq
from collections import deque
from heapq import heappush as _heappush

from ..isa.opcodes import OpClass

_LOAD = int(OpClass.LOAD)
_STORE = int(OpClass.STORE)


def _entry_seq(entry) -> int:
    return entry.seq


class RUUEntry:
    """One in-flight instruction."""

    __slots__ = (
        "seq", "op_class", "dest", "addr", "size", "dispatched_at",
        "operand_time", "unresolved", "dependents", "issued", "issued_at",
        "result_time", "handle", "is_load", "is_store", "private",
    )

    def __init__(self, dyn, now: int):
        self._reset(dyn, now)

    def _reset(self, dyn, now: int) -> None:
        """(Re)initialize for ``dyn`` — shared by construction and
        free-list reuse, so a recycled entry is indistinguishable from a
        fresh one."""
        op_class = dyn.op_class
        self.seq = dyn.seq
        self.op_class = op_class
        self.dest = dyn.dest
        self.addr = dyn.addr
        self.size = dyn.size
        self.dispatched_at = now
        self.operand_time = now
        self.unresolved = 0
        self.dependents = None
        self.issued = False
        self.issued_at = -1
        self.result_time = None
        self.handle = None
        self.is_load = op_class == _LOAD
        self.is_store = op_class == _STORE
        self.private = dyn.private

    @property
    def is_mem(self) -> bool:
        return self.is_load or self.is_store

    def __repr__(self) -> str:
        return (f"<RUUEntry #{self.seq} {OpClass(self.op_class).name} "
                f"issued={self.issued} result={self.result_time}>")


class RUU:
    """The instruction window with dependence tracking.

    Dispatch links each entry to the last writer of each source register;
    an entry becomes *schedulable* once every producer's result time is
    known, at which point it enters the ready heap keyed by
    ``(operand_time, seq)`` — oldest-first among equally-ready entries.
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.window = deque()
        self._last_writer = {}
        self._ready_heap = []
        #: Entries that failed to issue this cycle retry next cycle; they
        #: all share the same key, so a plain list beats heap traffic.
        self._stalled = []
        self._stalled_retry = -1
        #: Committed entries awaiting reuse (see module docstring).
        self._free = []

    def __len__(self) -> int:
        return len(self.window)

    def is_full(self) -> bool:
        return len(self.window) >= self.capacity

    def head(self):
        return self.window[0] if self.window else None

    def dispatch(self, dyn, now: int) -> RUUEntry:
        """Insert a traced instruction, wiring register dependencies."""
        free = self._free
        if free:
            # Inlined ``RUUEntry._reset`` (the steady-state path runs
            # once per instruction): ``operand_time``/``unresolved`` are
            # assigned below from the dependence scan.
            entry = free.pop()
            op_class = dyn.op_class
            seq = dyn.seq
            entry.seq = seq
            entry.op_class = op_class
            dest = entry.dest = dyn.dest
            entry.addr = dyn.addr
            entry.size = dyn.size
            entry.dispatched_at = now
            entry.dependents = None
            entry.issued = False
            entry.issued_at = -1
            entry.result_time = None
            entry.handle = None
            entry.is_load = op_class == _LOAD
            entry.is_store = op_class == _STORE
            entry.private = dyn.private
        else:
            entry = RUUEntry(dyn, now)
            seq = entry.seq
            dest = entry.dest
        last_writer = self._last_writer
        unresolved = 0
        operand_time = now
        for src in dyn.srcs:
            producer = last_writer.get(src)
            if producer is None:
                continue
            result_time = producer.result_time
            if result_time is not None:
                if result_time > operand_time:
                    operand_time = result_time
            else:
                unresolved += 1
                if producer.dependents is None:
                    producer.dependents = [entry]
                else:
                    producer.dependents.append(entry)
        entry.operand_time = operand_time
        entry.unresolved = unresolved
        if dest is not None:
            last_writer[dest] = entry
        self.window.append(entry)
        if unresolved == 0:
            _heappush(self._ready_heap, (operand_time, seq, entry))
        return entry

    def resolve(self, entry: RUUEntry, result_time: int) -> None:
        """Set ``entry``'s result time and wake its dependents."""
        entry.result_time = result_time
        dependents = entry.dependents
        if not dependents:
            return
        heap = self._ready_heap
        for dep in dependents:
            if result_time > dep.operand_time:
                dep.operand_time = result_time
            dep.unresolved -= 1
            if dep.unresolved == 0 and not dep.issued:
                heapq.heappush(heap, (dep.operand_time, dep.seq, dep))
        entry.dependents = None

    def schedulable(self, now: int):
        """Pop every entry whose operands are ready at ``now`` (ordered
        as the heap would order them: by ready time, then age); callers
        re-queue entries they cannot issue."""
        stalled = None
        if self._stalled and self._stalled_retry <= now:
            stalled = self._stalled
            retry = self._stalled_retry
            self._stalled = []
        if not self._stalled:
            # Requeues during this cycle's issue pass land in the bucket.
            self._stalled_retry = now + 1
        heap = self._ready_heap
        if stalled is not None:
            if heap and heap[0][0] <= now:
                merged = [(retry, entry.seq, entry) for entry in stalled]
                while heap and heap[0][0] <= now:
                    item = heapq.heappop(heap)
                    if not item[2].issued:
                        merged.append(item)
                merged.sort()
                return [entry for _, _, entry in merged]
            stalled.sort(key=_entry_seq)
            return stalled
        batch = []
        while heap and heap[0][0] <= now:
            _, _, entry = heapq.heappop(heap)
            if not entry.issued:
                batch.append(entry)
        return batch

    def requeue(self, entry: RUUEntry, not_before: int) -> None:
        """Put an un-issuable entry back, retrying at ``not_before``."""
        if not_before <= entry.operand_time:
            not_before = entry.operand_time + 1
        if not_before == self._stalled_retry:
            self._stalled.append(entry)
        else:
            heapq.heappush(self._ready_heap, (not_before, entry.seq, entry))

    def state_summary(self) -> tuple:
        """Deterministic occupancy fingerprint for checkpoint summaries.

        Covers the window and both issue queues but not the free list —
        recycled entries are dead state, invisible to execution."""
        return (len(self.window), len(self._ready_heap), len(self._stalled),
                self._stalled_retry, len(self._last_writer),
                self.window[0].seq if self.window else -1,
                self.window[-1].seq if self.window else -1)

    def next_ready_time(self):
        """Earliest cycle any queued entry could be scheduled, or ``None``
        when nothing is waiting to issue."""
        ready = self._ready_heap[0][0] if self._ready_heap else None
        if self._stalled and (ready is None or self._stalled_retry < ready):
            return self._stalled_retry
        return ready

    def pop_head(self) -> RUUEntry:
        """Remove and return the oldest entry (it must be committable).

        The entry is recycled onto the free list; its fields stay valid
        until the next :meth:`dispatch` reuses it.  Dropping the
        ``_last_writer`` mapping here is behavior-neutral: a committed
        producer's ``result_time`` is at most the commit cycle, so it
        can never raise a later consumer's operand time above the
        dispatch default, and it can never again register a dependent.
        """
        entry = self.window.popleft()
        dest = entry.dest
        if dest is not None:
            last_writer = self._last_writer
            if last_writer.get(dest) is entry:
                del last_writer[dest]
        free = self._free
        if len(free) < self.capacity:
            free.append(entry)
        return entry
