"""The out-of-order core timing model.

An 8-wide (configurable) machine with a unified RUU window, a load/store
queue half its size, pipelined functional units, and perfect branch
prediction (paper Section 4.2).  The pipeline consumes the functional
interpreter's dynamic trace — under perfect prediction the committed path
is the functional path, and no mis-speculated instructions exist (the
paper's correspondence protocol likewise excludes speculative broadcasts).

Per simulated cycle the pipeline commits (in order), issues (oldest-ready
first), and fetches/dispatches — each up to its configured width.

Two tick implementations share the per-cycle semantics:

* :meth:`Pipeline.tick` is the **fast path**: one flat function with the
  stage logic inlined, per-cycle attribute lookups hoisted into locals,
  and the per-config dispatch structures (FU latency/limit tables,
  widths, the RUU free list) precomputed at construction.  It allocates
  nothing on the steady-state cycle.
* :meth:`Pipeline.tick_spanned` is the **staged path**: the same cycle
  expressed as the classic ``_commit`` / ``_resolve_pending_loads`` /
  ``_issue`` / ``_fetch`` stage methods, with each stage's wall time
  charged to a ``timing-loop/commit|memory|issue`` span accumulator.
  The system loop selects it only while a span recorder is active.

Both orders are identical (commit → resolve → issue → fetch) and both
must stay bit-identical — the equivalence suite runs every workload
through each.
"""

from __future__ import annotations

import time
from heapq import heappop as _heappop, heappush as _heappush

from ..errors import SimulationError
from ..isa.opcodes import OpClass
from ..obs.events import EventKind
from ..params import CPUConfig
from .func_units import FUPool
from .interface import MemoryInterface
from .lsq import LSQ
from .ruu import RUU

_LOAD = int(OpClass.LOAD)
_STORE = int(OpClass.STORE)
_COMMIT_EVENT = EventKind.COMMIT
_INF = float("inf")

#: Cycles with no commit before the pipeline declares itself wedged.
DEADLOCK_CYCLES = 1_000_000


class PipelineStats:
    """Counters published by one core."""

    __slots__ = ("committed", "loads", "stores", "cycles", "fetch_stalls",
                 "window_stalls", "lsq_stalls", "branches", "mispredicts")

    def __init__(self):
        self.committed = 0
        self.loads = 0
        self.stores = 0
        self.cycles = 0
        self.fetch_stalls = 0
        self.window_stalls = 0
        self.lsq_stalls = 0
        self.branches = 0
        self.mispredicts = 0

    @property
    def misprediction_rate(self) -> float:
        return self.mispredicts / self.branches if self.branches else 0.0

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0


class Pipeline:
    """One out-of-order core bound to a memory system and a trace."""

    def __init__(self, config: CPUConfig, mem: MemoryInterface, trace,
                 icache_line: int = 32):
        self.config = config
        self.mem = mem
        self._trace = iter(trace)
        self._trace_next = self._trace.__next__
        # Fan-out views expose their buffered-record deque; pulling from
        # it directly skips a call layer on the fetch fast path.  Any
        # other trace source leaves this ``None`` (falsy), falling back
        # to the iterator protocol.
        self._trace_queue = getattr(self._trace, "_queue", None)
        self._trace_done = False
        self._fetch_buffer = None
        self.ruu = RUU(config.ruu_entries)
        self.lsq = LSQ(config.lsq_entries)
        self.fus = FUPool(config)
        self.stats = PipelineStats()
        # Per-config dispatch structures, hoisted once so the per-cycle
        # fast path never chases ``self.config``.
        self._commit_width = config.commit_width
        self._issue_width = config.issue_width
        self._fetch_width = config.fetch_width
        self._mispredict_penalty = config.misprediction_penalty
        self._oracle = config.oracle_disambiguation
        # Pre-bound memory-system methods (the binding is per-call
        # otherwise, and commit/fetch hit these once per instruction).
        self._commit_mem = mem.commit_mem
        self._ifetch_line = mem.ifetch_line
        self._icache_line_mask = ~(icache_line - 1)
        self._fetch_ready = 0
        self._fetched_line = None
        self._pending_loads = []
        self._last_commit_cycle = 0
        self._predictor = self._build_predictor(config.branch_predictor)
        self._redirect_after = None  # branch entry fetch is waiting on
        self.done = False
        #: Observability hook (``None`` = untraced: zero overhead).
        self._tracer = None
        self._trace_node = 0
        #: ``(commit, memory, issue)`` span accumulators, set by the
        #: system loop when phase telemetry is recording; consumed by
        #: :meth:`tick_spanned` only.
        self._stage_accs = None

    def attach_tracer(self, tracer, node_id: int) -> None:
        """Emit this pipeline's events to ``tracer`` as node ``node_id``.

        Tracing is purely observational: no architectural state or
        reported statistic changes, with fast-forward on or off."""
        self._tracer = tracer
        self._trace_node = node_id

    def attach_stage_accumulators(self, accumulators) -> None:
        """Charge per-stage wall time to ``(commit, memory, issue)``
        span accumulators; callers then drive :meth:`tick_spanned`
        instead of :meth:`tick`.  Purely observational."""
        self._stage_accs = accumulators

    def rebind_trace(self, trace) -> None:
        """Point the fetch stage at a rebuilt front-end iterator
        (checkpoint restore: snapshots carry the trace *position*, not
        the live iterator — see :mod:`repro.checkpoint`).  The fetch
        buffer and exhaustion flag are machine state and stay put."""
        self._trace = iter(trace)
        self._trace_next = self._trace.__next__
        self._trace_queue = getattr(self._trace, "_queue", None)

    @staticmethod
    def _build_predictor(kind: str):
        if kind == "perfect":
            return None
        from .branch import (
            BimodalPredictor,
            GSharePredictor,
            StaticTakenPredictor,
        )
        if kind == "static":
            return StaticTakenPredictor()
        if kind == "bimodal":
            return BimodalPredictor()
        if kind == "gshare":
            return GSharePredictor()
        raise SimulationError(f"unknown branch predictor {kind!r}")

    # ------------------------------------------------------------------
    # One simulated cycle — the flat fast path.
    # ------------------------------------------------------------------
    def tick(self, now: int) -> None:
        """Simulate cycle ``now``.  Sets :attr:`done` when the program has
        fully drained through the machine.

        Stage logic is inlined (commit → resolve → issue → fetch) and
        must mirror the staged methods below exactly — any semantic
        change lands in both or the equivalence suite fails.
        """
        if self.done:
            return
        stats = self.stats
        stats.cycles = now + 1
        ruu = self.ruu
        window = ruu.window
        lsq = self.lsq
        tracer = self._tracer
        nxt = now + 1

        # ---- commit stage (in order, up to commit_width) ----
        if window:
            head = window[0]
            if head.issued:
                result_time = head.result_time
                if result_time is not None and result_time <= now:
                    committed = 0
                    width = self._commit_width
                    commit_mem = self._commit_mem
                    popleft = window.popleft
                    last_writer = ruu._last_writer
                    free = ruu._free
                    free_cap = ruu.capacity
                    while True:
                        if tracer is not None:
                            tracer.emit(_COMMIT_EVENT, now, self._trace_node,
                                        seq=head.seq, op=head.op_class)
                        if head.is_load:
                            if not head.private:
                                commit_mem(now, head.addr, head.size,
                                           False, head.handle)
                            lsq.release_head(head)
                            stats.loads += 1
                        elif head.is_store:
                            if not head.private:
                                commit_mem(now, head.addr, head.size,
                                           True, head.handle)
                            lsq.release_head(head)
                            stats.stores += 1
                        # Inlined RUU.pop_head (head recycling):
                        popleft()
                        dest = head.dest
                        if dest is not None \
                                and last_writer.get(dest) is head:
                            del last_writer[dest]
                        if len(free) < free_cap:
                            free.append(head)
                        committed += 1
                        if committed >= width or not window:
                            break
                        head = window[0]
                        if not head.issued:
                            break
                        result_time = head.result_time
                        if result_time is None or result_time > now:
                            break
                    stats.committed += committed
                    self._last_commit_cycle = now

        # ---- load completion (memory system resolves asynchronously) ----
        pending = self._pending_loads
        if pending:
            kept = 0
            resolve = ruu.resolve
            for entry in pending:
                ready = entry.handle.ready
                if ready is None:
                    pending[kept] = entry
                    kept += 1
                else:
                    when = entry.issued_at + 1
                    if ready > when:
                        when = ready
                    resolve(entry, when)
            if kept != len(pending):
                del pending[kept:]

        # ---- issue stage (oldest-ready first, up to issue_width) ----
        # Skipping schedulable() when nothing can be ready is safe: on
        # such cycles it returns [] and at most restamps the
        # stalled-bucket retry cycle, which only requeue() reads — and
        # requeues happen solely inside an issue pass, whose own
        # schedulable() call restamps first.
        heap = ruu._ready_heap
        stalled = ruu._stalled
        if stalled:
            if ruu._stalled_retry <= now or (heap and heap[0][0] <= now):
                batch = ruu.schedulable(now)
            else:
                batch = None
        elif heap and heap[0][0] <= now:
            # Inlined RUU.schedulable for the common no-stalled case:
            # restamp the retry cycle (requeues this pass land in the
            # bucket), then drain the ready prefix.
            ruu._stalled_retry = nxt
            batch = []
            append = batch.append
            while heap and heap[0][0] <= now:
                entry = _heappop(heap)[2]
                if not entry.issued:
                    append(entry)
        else:
            batch = None
        if batch:
            fus = self.fus
            used = fus.begin_cycle(now)
            limits = fus.limit_table
            latencies = fus.latency_table
            requeue = ruu.requeue
            width = self._issue_width
            issued = 0
            blocked = 0  # FU classes with no free slot left this cycle
            for position, entry in enumerate(batch):
                if issued >= width:
                    for rest in batch[position:]:
                        requeue(rest, nxt)
                    break
                op_class = entry.op_class
                class_bit = 1 << op_class
                if blocked & class_bit:
                    requeue(entry, nxt)
                    continue
                if used[op_class] >= limits[op_class]:
                    blocked |= class_bit
                    requeue(entry, nxt)
                    continue
                used[op_class] += 1
                if entry.is_load:
                    if not self._issue_load(entry, now):
                        continue
                else:
                    entry.issued = True
                    entry.issued_at = now
                    if entry.is_store:
                        lsq._unissued_stores -= 1
                        when = nxt
                    else:
                        when = now + latencies[op_class]
                    # Inlined RUU.resolve (fixed-latency completion):
                    entry.result_time = when
                    dependents = entry.dependents
                    if dependents:
                        for dep in dependents:
                            if when > dep.operand_time:
                                dep.operand_time = when
                            dep.unresolved -= 1
                            if dep.unresolved == 0 and not dep.issued:
                                _heappush(heap, (dep.operand_time,
                                                 dep.seq, dep))
                        entry.dependents = None
                issued += 1

        # ---- fetch/dispatch stage (perfect branch prediction) ----
        redirect = self._redirect_after
        fetch_open = True
        if redirect is not None:
            # A mispredicted branch owns fetch until it resolves.
            resolve_time = redirect.result_time
            if resolve_time is None or resolve_time > now:
                stats.fetch_stalls += 1
                if tracer is not None:
                    self._trace_stall(now, "redirect")
                fetch_open = False
            else:
                ready = resolve_time + self._mispredict_penalty
                if ready > self._fetch_ready:
                    self._fetch_ready = ready
                self._redirect_after = None
        if fetch_open:
            if self._trace_done or now < self._fetch_ready:
                if not self._trace_done:
                    stats.fetch_stalls += 1
                    if tracer is not None:
                        self._trace_stall(now, "fetch")
            else:
                buffer = self._fetch_buffer
                trace_next = self._trace_next
                trace_queue = self._trace_queue
                dispatch = ruu.dispatch
                window_cap = ruu.capacity
                lsq_entries = lsq._entries
                lsq_cap = lsq.capacity
                line_mask = self._icache_line_mask
                fetched_line = self._fetched_line
                predictor = self._predictor
                for _ in range(self._fetch_width):
                    dyn = buffer
                    if dyn is None:
                        if trace_queue:
                            dyn = trace_queue.popleft()
                        else:
                            try:
                                dyn = trace_next()
                            except StopIteration:
                                self._trace_done = True
                                break
                        buffer = dyn
                    if len(window) >= window_cap:
                        stats.window_stalls += 1
                        if tracer is not None:
                            self._trace_stall(now, "window")
                        break
                    op_class = dyn.op_class
                    is_mem = op_class == _LOAD or op_class == _STORE
                    if is_mem and len(lsq_entries) >= lsq_cap:
                        stats.lsq_stalls += 1
                        if tracer is not None:
                            self._trace_stall(now, "lsq")
                        break
                    line = dyn.pc & line_mask
                    if line != fetched_line:
                        ready = self._ifetch_line(now, line)
                        fetched_line = line
                        if ready > now:
                            # Miss: the rest of this fetch group waits.
                            self._fetch_ready = ready
                            break
                    buffer = None
                    entry = dispatch(dyn, nxt)
                    if is_mem:
                        lsq.insert(entry)
                    if predictor is not None and dyn.is_cond_branch:
                        stats.branches += 1
                        predicted = predictor.predict(dyn.pc)
                        predictor.train(dyn.pc, dyn.taken)
                        if predicted != dyn.taken:
                            # Wrong path until this branch resolves:
                            # stop fetch.
                            stats.mispredicts += 1
                            self._redirect_after = entry
                            break
                self._fetched_line = fetched_line
                self._fetch_buffer = buffer

        if self._trace_done and not window:
            if self.mem.drain(now):
                self.done = True
            return
        if now - self._last_commit_cycle > DEADLOCK_CYCLES:
            raise SimulationError(
                f"no commit for {DEADLOCK_CYCLES} cycles at cycle {now}; "
                f"head={ruu.head()!r}"
            )

    # ------------------------------------------------------------------
    # One simulated cycle — the staged/instrumented path.
    # ------------------------------------------------------------------
    def tick_spanned(self, now: int) -> None:
        """Bit-identical staged variant of :meth:`tick`.

        Charges each stage's wall clock to the ``timing-loop/commit``,
        ``timing-loop/memory`` (load resolution), and
        ``timing-loop/issue`` accumulators installed by
        :meth:`attach_stage_accumulators`.  Fetch — and the functional
        front end it pulls on — is deliberately left untimed here so the
        separately-accumulated ``timing-loop/frontend`` record and the
        root span's ``<self>`` residual stay disjoint from the stage
        accumulators (the breakdown's children must never sum past the
        root).
        """
        if self.done:
            return
        self.stats.cycles = now + 1
        accumulators = self._stage_accs
        if accumulators is None:
            self._commit(now)
            self._resolve_pending_loads(now)
            self._issue(now)
            self._fetch(now)
        else:
            commit_acc, memory_acc, issue_acc = accumulators
            clock = time.perf_counter
            t0 = clock()
            self._commit(now)
            t1 = clock()
            commit_acc.add(t1 - t0)
            self._resolve_pending_loads(now)
            t2 = clock()
            memory_acc.add(t2 - t1)
            self._issue(now)
            issue_acc.add(clock() - t2)
            self._fetch(now)
        if self._trace_done and not self.ruu.window:
            if self.mem.drain(now):
                self.done = True
            return
        if now - self._last_commit_cycle > DEADLOCK_CYCLES:
            raise SimulationError(
                f"no commit for {DEADLOCK_CYCLES} cycles at cycle {now}; "
                f"head={self.ruu.head()!r}"
            )

    # ------------------------------------------------------------------
    # Commit stage.
    # ------------------------------------------------------------------
    def _commit(self, now: int) -> None:
        tracer = self._tracer
        for _ in range(self._commit_width):
            head = self.ruu.head()
            if head is None:
                break
            if not head.issued:
                break
            if head.result_time is None or head.result_time > now:
                break
            if tracer is not None:
                tracer.emit(EventKind.COMMIT, now, self._trace_node,
                            seq=head.seq, op=head.op_class)
            if head.is_mem:
                if not head.private:
                    self.mem.commit_mem(now, head.addr, head.size,
                                        head.is_store, head.handle)
                self.lsq.release_head(head)
                if head.is_load:
                    self.stats.loads += 1
                else:
                    self.stats.stores += 1
            self.ruu.pop_head()
            self.stats.committed += 1
            self._last_commit_cycle = now

    # ------------------------------------------------------------------
    # Load completion (memory system may resolve handles asynchronously).
    # ------------------------------------------------------------------
    def _resolve_pending_loads(self, now: int) -> None:
        pending = self._pending_loads
        if not pending:
            return
        # Compact in place: the common no-progress cycle (every handle
        # still unresolved) must not allocate.
        kept = 0
        for entry in pending:
            ready = entry.handle.ready
            if ready is None:
                pending[kept] = entry
                kept += 1
            else:
                self.ruu.resolve(entry, max(ready, entry.issued_at + 1))
        if kept != len(pending):
            del pending[kept:]

    # ------------------------------------------------------------------
    # Issue stage.
    # ------------------------------------------------------------------
    def _issue(self, now: int) -> None:
        issued = 0
        ruu = self.ruu
        fus = self.fus
        batch = ruu.schedulable(now)
        width = self._issue_width
        blocked_classes = 0  # FU classes with no free slot left this cycle
        for position, entry in enumerate(batch):
            if issued >= width:
                self._requeue_rest(batch[position:], now)
                return
            op_class = entry.op_class
            class_bit = 1 << op_class
            if blocked_classes & class_bit:
                ruu.requeue(entry, now + 1)
                continue
            if not fus.try_claim(now, op_class):
                blocked_classes |= class_bit
                ruu.requeue(entry, now + 1)
                continue
            if entry.is_load:
                if not self._issue_load(entry, now):
                    continue
            elif entry.is_store:
                self._issue_store(entry, now)
            else:
                latency = fus.latency(op_class)
                entry.issued = True
                entry.issued_at = now
                ruu.resolve(entry, now + latency)
            issued += 1

    def _requeue_rest(self, rest, now: int) -> None:
        for entry in rest:
            self.ruu.requeue(entry, now + 1)

    def _issue_load(self, entry, now: int) -> bool:
        lsq = self.lsq
        if lsq._stores:
            if (not self._oracle
                    and lsq.has_unissued_earlier_store(entry)):
                # Conservative disambiguation: wait for every earlier
                # store address to resolve before going to memory.
                self.ruu.requeue(entry, now + 1)
                return False
            store, resolved = lsq.forwarding_store(entry)
            if not resolved:
                # May not bypass an unissued same-address store; retry.
                self.ruu.requeue(entry, now + 1)
                return False
            if store is not None:
                entry.issued = True
                entry.issued_at = now
                handle = _ForwardedHandle(entry.addr, entry.size, now)
                entry.handle = handle
                when = store.issued_at + 1
                if when <= now:
                    when = now + 1
                self.ruu.resolve(entry, when)
                return True
        entry.issued = True
        entry.issued_at = now
        if entry.private:
            handle = self.mem.private_load_issue(now, entry.addr,
                                                 entry.size)
        else:
            handle = self.mem.load_issue(now, entry.addr, entry.size)
        entry.handle = handle
        ready = handle.ready
        if ready is not None:
            when = now + 1
            if ready > when:
                when = ready
            self.ruu.resolve(entry, when)
        else:
            self._pending_loads.append(entry)
        return True

    def _issue_store(self, entry, now: int) -> None:
        # The store's value and address are ready; it waits in the LSQ and
        # writes the cache at commit.  It produces no register result.
        entry.issued = True
        entry.issued_at = now
        self.lsq.note_store_issued()
        self.ruu.resolve(entry, now + 1)

    # ------------------------------------------------------------------
    # Fetch/dispatch stage (perfect branch prediction).
    # ------------------------------------------------------------------
    def _fetch(self, now: int) -> None:
        if self._redirect_after is not None:
            # A mispredicted branch owns fetch until it resolves.
            resolve = self._redirect_after.result_time
            if resolve is None or resolve > now:
                self.stats.fetch_stalls += 1
                if self._tracer is not None:
                    self._trace_stall(now, "redirect")
                return
            self._fetch_ready = max(
                self._fetch_ready,
                resolve + self._mispredict_penalty,
            )
            self._redirect_after = None
        if self._trace_done or now < self._fetch_ready:
            if not self._trace_done:
                self.stats.fetch_stalls += 1
                if self._tracer is not None:
                    self._trace_stall(now, "fetch")
            return
        for _ in range(self._fetch_width):
            dyn = self._peek_trace()
            if dyn is None:
                return
            if self.ruu.is_full():
                self.stats.window_stalls += 1
                if self._tracer is not None:
                    self._trace_stall(now, "window")
                return
            if dyn.op_class in (_LOAD, _STORE) and self.lsq.is_full():
                self.stats.lsq_stalls += 1
                if self._tracer is not None:
                    self._trace_stall(now, "lsq")
                return
            line = dyn.pc & self._icache_line_mask
            if line != self._fetched_line:
                ready = self.mem.ifetch_line(now, line)
                self._fetched_line = line
                if ready > now:
                    # Miss: the rest of this fetch group waits.
                    self._fetch_ready = ready
                    return
            self._consume_trace()
            entry = self.ruu.dispatch(dyn, now + 1)
            if entry.is_mem:
                self.lsq.insert(entry)
            if self._predictor is not None and dyn.is_cond_branch:
                self.stats.branches += 1
                predicted = self._predictor.predict(dyn.pc)
                self._predictor.train(dyn.pc, dyn.taken)
                if predicted != dyn.taken:
                    # Wrong path until this branch resolves: stop fetch.
                    self.stats.mispredicts += 1
                    self._redirect_after = entry
                    return

    def _trace_stall(self, now: int, cause: str, cycles: int = 1) -> None:
        """Emit one fetch-stall episode (callers guard on the tracer).

        Dense ticking emits one-cycle events; :meth:`note_skipped` emits
        a single aggregated event per skipped range — the *totals* match
        the stall counters exactly either way."""
        self._tracer.emit(EventKind.ISSUE_STALL, now, self._trace_node,
                          cause=cause, cycles=cycles)

    def _peek_trace(self):
        if self._fetch_buffer is None and not self._trace_done:
            try:
                self._fetch_buffer = next(self._trace)
            except StopIteration:
                self._trace_done = True
        return self._fetch_buffer

    def _consume_trace(self) -> None:
        self._fetch_buffer = None

    # ------------------------------------------------------------------
    # Fast-forward support (idle-cycle skipping).
    # ------------------------------------------------------------------
    def next_event(self, now: int) -> float:
        """Lower bound on the next cycle at which :meth:`tick` could do
        anything beyond pure stall bookkeeping.

        Valid only immediately after every pipeline in the system has
        ticked cycle ``now`` (cross-node broadcasts resolve load handles
        during other nodes' ticks).  Returns ``inf`` when this pipeline
        has no self-generated event — it is waiting on another node.
        The system loop takes the minimum across nodes — folding in any
        medium-level timers (the fault layer's pending recovery
        deliveries and armed BSHR wait deadlines) — and cycles before it
        are observationally idle everywhere and may be skipped once
        :meth:`note_skipped` replays their stall accounting.

        Pending loads whose handle already carries a known-future ready
        cycle (a BSHR/DCUB completion or a fault-recovery delivery
        materialized by an earlier broadcast) are resolved *eagerly*
        here, so they contribute their exact wake cycle instead of the
        conservative ``now + 1``.  Eager resolution is identical to what
        the next dense tick would do — ``resolve(entry, max(ready,
        issued_at + 1))`` does not depend on the tick cycle — and it is
        only legal when that wake cycle lies strictly past ``now + 1``:
        a result due at ``now + 1`` must stay pending so the dense
        commit-before-resolve stage order is preserved (commit may see
        the result only one cycle after the resolving tick).
        """
        if self.done:
            return _INF
        nxt = now + 1
        pending = self._pending_loads
        tick_next = False
        if pending:
            resolve = self.ruu.resolve
            kept = 0
            for entry in pending:
                ready = entry.handle.ready
                if ready is None:
                    pending[kept] = entry
                    kept += 1
                    continue
                when = entry.issued_at + 1
                if ready > when:
                    when = ready
                if when <= nxt:
                    # Due immediately: the next tick must collect it.
                    pending[kept] = entry
                    kept += 1
                    tick_next = True
                else:
                    resolve(entry, when)
            if kept != len(pending):
                del pending[kept:]
            if tick_next:
                return nxt
        bound = _INF
        ruu = self.ruu
        # Inlined RUU.next_ready_time:
        heap = ruu._ready_heap
        ready = heap[0][0] if heap else None
        if ruu._stalled and (ready is None or ruu._stalled_retry < ready):
            ready = ruu._stalled_retry
        if ready is not None:
            if ready <= nxt:
                return nxt
            bound = ready
        window = ruu.window
        head = window[0] if window else None
        if head is not None and head.issued \
                and head.result_time is not None:
            when = head.result_time
            if when <= nxt:
                return nxt
            if when < bound:
                bound = when
        if self._redirect_after is not None:
            when = self._redirect_after.result_time
            if when is not None:
                if when <= nxt:
                    return nxt
                if when < bound:
                    bound = when
        elif not self._trace_done:
            if nxt < self._fetch_ready:
                if self._fetch_ready < bound:
                    bound = self._fetch_ready
            elif len(window) < ruu.capacity:
                dyn = self._peek_trace()
                if dyn is not None and not (
                        dyn.op_class in (_LOAD, _STORE)
                        and self.lsq.is_full()):
                    return nxt  # fetch dispatches next cycle
        if self._trace_done and not window:
            return nxt  # drain handshake must run every cycle
        return bound

    def note_skipped(self, start: int, stop: int) -> None:
        """Replay stall accounting for skipped cycles ``[start, stop)``.

        The system loop guarantees the range is observationally idle for
        this pipeline (``stop`` is at most :meth:`next_event`), so each
        skipped tick would have incremented exactly the stall counter
        its frozen fetch state selects — mirroring :meth:`_fetch`'s
        branch order: redirect, fetch-ready, window, LSQ.
        """
        cycles = stop - start
        if cycles <= 0 or self.done:
            return
        stats = self.stats
        if self._redirect_after is not None:
            stats.fetch_stalls += cycles
            if self._tracer is not None:
                self._trace_stall(start, "redirect", cycles)
            return
        if self._trace_done:
            return
        if start < self._fetch_ready:
            stats.fetch_stalls += cycles
            if self._tracer is not None:
                self._trace_stall(start, "fetch", cycles)
            return
        if self.ruu.is_full():
            stats.window_stalls += cycles
            if self._tracer is not None:
                self._trace_stall(start, "window", cycles)
            return
        dyn = self._peek_trace()
        if dyn is not None and dyn.op_class in (_LOAD, _STORE) \
                and self.lsq.is_full():
            stats.lsq_stalls += cycles
            if self._tracer is not None:
                self._trace_stall(start, "lsq", cycles)

    # ------------------------------------------------------------------
    # Whole-program convenience for single-core systems.
    # ------------------------------------------------------------------
    def run(self, max_cycles: int) -> PipelineStats:
        """Tick until done; returns the stats."""
        tick = self.tick
        for cycle in range(max_cycles):
            tick(cycle)
            if self.done:
                return self.stats
        raise SimulationError(f"program did not finish in {max_cycles} cycles")


class _ForwardedHandle:
    """Handle for a load serviced by an in-queue store (1-cycle)."""

    __slots__ = ("addr", "size", "issued_at", "ready", "issue_hit",
                 "found_in_bshr", "forwarded", "dcub_line")

    def __init__(self, addr, size, now):
        self.addr = addr
        self.size = size
        self.issued_at = now
        self.ready = now + 1
        self.issue_hit = None
        self.found_in_bshr = False
        self.forwarded = True
        self.dcub_line = None
