"""The out-of-order core timing model.

An 8-wide (configurable) machine with a unified RUU window, a load/store
queue half its size, pipelined functional units, and perfect branch
prediction (paper Section 4.2).  The pipeline consumes the functional
interpreter's dynamic trace — under perfect prediction the committed path
is the functional path, and no mis-speculated instructions exist (the
paper's correspondence protocol likewise excludes speculative broadcasts).

Per simulated cycle the pipeline commits (in order), issues (oldest-ready
first), and fetches/dispatches — each up to its configured width.
"""

from __future__ import annotations

from ..errors import SimulationError
from ..isa.opcodes import OpClass
from ..obs.events import EventKind
from ..params import CPUConfig
from .func_units import FUPool
from .interface import MemoryInterface
from .lsq import LSQ
from .ruu import RUU

_LOAD = int(OpClass.LOAD)
_STORE = int(OpClass.STORE)

#: Cycles with no commit before the pipeline declares itself wedged.
DEADLOCK_CYCLES = 1_000_000


class PipelineStats:
    """Counters published by one core."""

    __slots__ = ("committed", "loads", "stores", "cycles", "fetch_stalls",
                 "window_stalls", "lsq_stalls", "branches", "mispredicts")

    def __init__(self):
        self.committed = 0
        self.loads = 0
        self.stores = 0
        self.cycles = 0
        self.fetch_stalls = 0
        self.window_stalls = 0
        self.lsq_stalls = 0
        self.branches = 0
        self.mispredicts = 0

    @property
    def misprediction_rate(self) -> float:
        return self.mispredicts / self.branches if self.branches else 0.0

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0


class Pipeline:
    """One out-of-order core bound to a memory system and a trace."""

    def __init__(self, config: CPUConfig, mem: MemoryInterface, trace,
                 icache_line: int = 32):
        self.config = config
        self.mem = mem
        self._trace = iter(trace)
        self._trace_done = False
        self._fetch_buffer = None
        self.ruu = RUU(config.ruu_entries)
        self.lsq = LSQ(config.lsq_entries)
        self.fus = FUPool(config)
        self.stats = PipelineStats()
        self._icache_line_mask = ~(icache_line - 1)
        self._fetch_ready = 0
        self._fetched_line = None
        self._pending_loads = []
        self._last_commit_cycle = 0
        self._predictor = self._build_predictor(config.branch_predictor)
        self._redirect_after = None  # branch entry fetch is waiting on
        self.done = False
        #: Observability hook (``None`` = untraced: zero overhead).
        self._tracer = None
        self._trace_node = 0

    def attach_tracer(self, tracer, node_id: int) -> None:
        """Emit this pipeline's events to ``tracer`` as node ``node_id``.

        Tracing is purely observational: no architectural state or
        reported statistic changes, with fast-forward on or off."""
        self._tracer = tracer
        self._trace_node = node_id

    @staticmethod
    def _build_predictor(kind: str):
        if kind == "perfect":
            return None
        from .branch import (
            BimodalPredictor,
            GSharePredictor,
            StaticTakenPredictor,
        )
        if kind == "static":
            return StaticTakenPredictor()
        if kind == "bimodal":
            return BimodalPredictor()
        if kind == "gshare":
            return GSharePredictor()
        raise SimulationError(f"unknown branch predictor {kind!r}")

    # ------------------------------------------------------------------
    # One simulated cycle.
    # ------------------------------------------------------------------
    def tick(self, now: int) -> None:
        """Simulate cycle ``now``.  Sets :attr:`done` when the program has
        fully drained through the machine."""
        if self.done:
            return
        self.stats.cycles = now + 1
        self._commit(now)
        self._resolve_pending_loads(now)
        self._issue(now)
        self._fetch(now)
        if self._trace_done and not self.ruu.window:
            if self.mem.drain(now):
                self.done = True
            return
        if now - self._last_commit_cycle > DEADLOCK_CYCLES:
            raise SimulationError(
                f"no commit for {DEADLOCK_CYCLES} cycles at cycle {now}; "
                f"head={self.ruu.head()!r}"
            )

    # ------------------------------------------------------------------
    # Commit stage.
    # ------------------------------------------------------------------
    def _commit(self, now: int) -> None:
        tracer = self._tracer
        for _ in range(self.config.commit_width):
            head = self.ruu.head()
            if head is None:
                break
            if not head.issued:
                break
            if head.result_time is None or head.result_time > now:
                break
            if tracer is not None:
                tracer.emit(EventKind.COMMIT, now, self._trace_node,
                            seq=head.seq, op=head.op_class)
            if head.is_mem:
                if not head.private:
                    self.mem.commit_mem(now, head.addr, head.size,
                                        head.is_store, head.handle)
                self.lsq.release_head(head)
                if head.is_load:
                    self.stats.loads += 1
                else:
                    self.stats.stores += 1
            self.ruu.pop_head()
            self.stats.committed += 1
            self._last_commit_cycle = now

    # ------------------------------------------------------------------
    # Load completion (memory system may resolve handles asynchronously).
    # ------------------------------------------------------------------
    def _resolve_pending_loads(self, now: int) -> None:
        pending = self._pending_loads
        if not pending:
            return
        # Compact in place: the common no-progress cycle (every handle
        # still unresolved) must not allocate.
        kept = 0
        for entry in pending:
            ready = entry.handle.ready
            if ready is None:
                pending[kept] = entry
                kept += 1
            else:
                self.ruu.resolve(entry, max(ready, entry.issued_at + 1))
        if kept != len(pending):
            del pending[kept:]

    # ------------------------------------------------------------------
    # Issue stage.
    # ------------------------------------------------------------------
    def _issue(self, now: int) -> None:
        issued = 0
        ruu = self.ruu
        fus = self.fus
        batch = ruu.schedulable(now)
        width = self.config.issue_width
        blocked_classes = 0  # FU classes with no free slot left this cycle
        for position, entry in enumerate(batch):
            if issued >= width:
                self._requeue_rest(batch[position:], now)
                return
            op_class = entry.op_class
            class_bit = 1 << op_class
            if blocked_classes & class_bit:
                ruu.requeue(entry, now + 1)
                continue
            if not fus.try_claim(now, op_class):
                blocked_classes |= class_bit
                ruu.requeue(entry, now + 1)
                continue
            if entry.is_load:
                if not self._issue_load(entry, now):
                    continue
            elif entry.is_store:
                self._issue_store(entry, now)
            else:
                latency = fus.latency(op_class)
                entry.issued = True
                entry.issued_at = now
                ruu.resolve(entry, now + latency)
            issued += 1

    def _requeue_rest(self, rest, now: int) -> None:
        for entry in rest:
            self.ruu.requeue(entry, now + 1)

    def _issue_load(self, entry, now: int) -> bool:
        if (not self.config.oracle_disambiguation
                and self.lsq.has_unissued_earlier_store(entry)):
            # Conservative disambiguation: wait for every earlier store
            # address to resolve before going to memory.
            self.ruu.requeue(entry, now + 1)
            return False
        store, resolved = self.lsq.forwarding_store(entry)
        if not resolved:
            # May not bypass an unissued same-address store; retry.
            self.ruu.requeue(entry, now + 1)
            return False
        entry.issued = True
        entry.issued_at = now
        if store is not None:
            handle = _ForwardedHandle(entry.addr, entry.size, now)
            entry.handle = handle
            self.ruu.resolve(entry, max(now + 1, store.issued_at + 1))
            return True
        if entry.private:
            handle = self.mem.private_load_issue(now, entry.addr,
                                                 entry.size)
        else:
            handle = self.mem.load_issue(now, entry.addr, entry.size)
        entry.handle = handle
        if handle.ready is not None:
            self.ruu.resolve(entry, max(handle.ready, now + 1))
        else:
            self._pending_loads.append(entry)
        return True

    def _issue_store(self, entry, now: int) -> None:
        # The store's value and address are ready; it waits in the LSQ and
        # writes the cache at commit.  It produces no register result.
        entry.issued = True
        entry.issued_at = now
        self.ruu.resolve(entry, now + 1)

    # ------------------------------------------------------------------
    # Fetch/dispatch stage (perfect branch prediction).
    # ------------------------------------------------------------------
    def _fetch(self, now: int) -> None:
        if self._redirect_after is not None:
            # A mispredicted branch owns fetch until it resolves.
            resolve = self._redirect_after.result_time
            if resolve is None or resolve > now:
                self.stats.fetch_stalls += 1
                if self._tracer is not None:
                    self._trace_stall(now, "redirect")
                return
            self._fetch_ready = max(
                self._fetch_ready,
                resolve + self.config.misprediction_penalty,
            )
            self._redirect_after = None
        if self._trace_done or now < self._fetch_ready:
            if not self._trace_done:
                self.stats.fetch_stalls += 1
                if self._tracer is not None:
                    self._trace_stall(now, "fetch")
            return
        for _ in range(self.config.fetch_width):
            dyn = self._peek_trace()
            if dyn is None:
                return
            if self.ruu.is_full():
                self.stats.window_stalls += 1
                if self._tracer is not None:
                    self._trace_stall(now, "window")
                return
            if dyn.op_class in (_LOAD, _STORE) and self.lsq.is_full():
                self.stats.lsq_stalls += 1
                if self._tracer is not None:
                    self._trace_stall(now, "lsq")
                return
            line = dyn.pc & self._icache_line_mask
            if line != self._fetched_line:
                ready = self.mem.ifetch_line(now, line)
                self._fetched_line = line
                if ready > now:
                    # Miss: the rest of this fetch group waits.
                    self._fetch_ready = ready
                    return
            self._consume_trace()
            entry = self.ruu.dispatch(dyn, now + 1)
            if entry.is_mem:
                self.lsq.insert(entry)
            if self._predictor is not None and dyn.is_cond_branch:
                self.stats.branches += 1
                predicted = self._predictor.predict(dyn.pc)
                self._predictor.train(dyn.pc, dyn.taken)
                if predicted != dyn.taken:
                    # Wrong path until this branch resolves: stop fetch.
                    self.stats.mispredicts += 1
                    self._redirect_after = entry
                    return

    def _trace_stall(self, now: int, cause: str, cycles: int = 1) -> None:
        """Emit one fetch-stall episode (callers guard on the tracer).

        Dense ticking emits one-cycle events; :meth:`note_skipped` emits
        a single aggregated event per skipped range — the *totals* match
        the stall counters exactly either way."""
        self._tracer.emit(EventKind.ISSUE_STALL, now, self._trace_node,
                          cause=cause, cycles=cycles)

    def _peek_trace(self):
        if self._fetch_buffer is None and not self._trace_done:
            try:
                self._fetch_buffer = next(self._trace)
            except StopIteration:
                self._trace_done = True
        return self._fetch_buffer

    def _consume_trace(self) -> None:
        self._fetch_buffer = None

    # ------------------------------------------------------------------
    # Fast-forward support (idle-cycle skipping).
    # ------------------------------------------------------------------
    def next_event(self, now: int) -> float:
        """Lower bound on the next cycle at which :meth:`tick` could do
        anything beyond pure stall bookkeeping.

        Valid only immediately after every pipeline in the system has
        ticked cycle ``now`` (cross-node broadcasts resolve load handles
        during other nodes' ticks).  Returns ``inf`` when this pipeline
        has no self-generated event — it is waiting on another node.
        The system loop takes the minimum across nodes — folding in any
        medium-level timers (the fault layer's pending recovery
        deliveries and armed BSHR wait deadlines) — and cycles before it
        are observationally idle everywhere and may be skipped once
        :meth:`note_skipped` replays their stall accounting.
        """
        if self.done:
            return float("inf")
        nxt = now + 1
        # A handle resolved during this cycle (by another node's
        # broadcast or an earlier local stage) is collected next tick.
        for entry in self._pending_loads:
            if entry.handle.ready is not None:
                return nxt
        bound = float("inf")
        ready = self.ruu.next_ready_time()
        if ready is not None:
            if ready <= nxt:
                return nxt
            bound = ready
        head = self.ruu.head()
        if head is not None and head.issued \
                and head.result_time is not None:
            when = head.result_time
            if when <= nxt:
                return nxt
            if when < bound:
                bound = when
        if self._redirect_after is not None:
            when = self._redirect_after.result_time
            if when is not None:
                if when <= nxt:
                    return nxt
                if when < bound:
                    bound = when
        elif not self._trace_done:
            if nxt < self._fetch_ready:
                if self._fetch_ready < bound:
                    bound = self._fetch_ready
            elif not self.ruu.is_full():
                dyn = self._peek_trace()
                if dyn is not None and not (
                        dyn.op_class in (_LOAD, _STORE)
                        and self.lsq.is_full()):
                    return nxt  # fetch dispatches next cycle
        if self._trace_done and not self.ruu.window:
            return nxt  # drain handshake must run every cycle
        return bound

    def note_skipped(self, start: int, stop: int) -> None:
        """Replay stall accounting for skipped cycles ``[start, stop)``.

        The system loop guarantees the range is observationally idle for
        this pipeline (``stop`` is at most :meth:`next_event`), so each
        skipped tick would have incremented exactly the stall counter
        its frozen fetch state selects — mirroring :meth:`_fetch`'s
        branch order: redirect, fetch-ready, window, LSQ.
        """
        cycles = stop - start
        if cycles <= 0 or self.done:
            return
        stats = self.stats
        if self._redirect_after is not None:
            stats.fetch_stalls += cycles
            if self._tracer is not None:
                self._trace_stall(start, "redirect", cycles)
            return
        if self._trace_done:
            return
        if start < self._fetch_ready:
            stats.fetch_stalls += cycles
            if self._tracer is not None:
                self._trace_stall(start, "fetch", cycles)
            return
        if self.ruu.is_full():
            stats.window_stalls += cycles
            if self._tracer is not None:
                self._trace_stall(start, "window", cycles)
            return
        dyn = self._peek_trace()
        if dyn is not None and dyn.op_class in (_LOAD, _STORE) \
                and self.lsq.is_full():
            stats.lsq_stalls += cycles
            if self._tracer is not None:
                self._trace_stall(start, "lsq", cycles)

    # ------------------------------------------------------------------
    # Whole-program convenience for single-core systems.
    # ------------------------------------------------------------------
    def run(self, max_cycles: int) -> PipelineStats:
        """Tick until done; returns the stats."""
        for cycle in range(max_cycles):
            self.tick(cycle)
            if self.done:
                return self.stats
        raise SimulationError(f"program did not finish in {max_cycles} cycles")


class _ForwardedHandle:
    """Handle for a load serviced by an in-queue store (1-cycle)."""

    __slots__ = ("addr", "size", "issued_at", "ready", "issue_hit",
                 "found_in_bshr", "forwarded", "dcub_line")

    def __init__(self, addr, size, now):
        self.addr = addr
        self.size = size
        self.issued_at = now
        self.ready = now + 1
        self.issue_hit = None
        self.found_in_bshr = False
        self.forwarded = True
        self.dcub_line = None
