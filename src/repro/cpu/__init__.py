"""The out-of-order core: RUU, LSQ, functional units, pipeline,
branch-predictor substrate, and the memory-system interface."""

from .branch import (
    BimodalPredictor,
    BranchPredictor,
    GSharePredictor,
    PredictionReport,
    StaticTakenPredictor,
    measure_predictor,
    survey_predictors,
)
from .func_units import FUPool
from .interface import LoadHandle, MemoryInterface
from .lsq import LSQ
from .pipeline import Pipeline, PipelineStats
from .ruu import RUU, RUUEntry

__all__ = [
    "BimodalPredictor",
    "BranchPredictor",
    "GSharePredictor",
    "PredictionReport",
    "StaticTakenPredictor",
    "measure_predictor",
    "survey_predictors",
    "FUPool",
    "LoadHandle",
    "MemoryInterface",
    "LSQ",
    "Pipeline",
    "PipelineStats",
    "RUU",
    "RUUEntry",
]
