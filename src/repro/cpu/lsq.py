"""The load/store queue.

Paper Section 4.2: "Our simulated processor also contains a load/store
queue, to prevent loads from bypassing stores to the same address.  Loads
are sent from this queue to the cache at issue time, while stores are sent
to the cache at commit time.  Loads can be serviced in a single cycle by
stores to the same address that are ahead in the queue."

The queue keeps a running count of unissued stores so the
conservative-disambiguation check is O(1) in the common all-issued
state, and the forwarding scan walks the store deque in place (newest
first, early exit at the load's own age) without building candidate
lists.
"""

from __future__ import annotations

from collections import deque

from ..errors import SimulationError


class LSQ:
    """Memory instructions in program order, for capacity and forwarding."""

    __slots__ = ("capacity", "_entries", "_stores", "forwards", "deferred",
                 "_unissued_stores")

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._entries = deque()
        self._stores = deque()  # store entries only, program order
        self.forwards = 0
        self.deferred = 0
        #: Stores in the queue that have not claimed an issue slot yet.
        #: Maintained by :meth:`insert` / :meth:`note_store_issued`;
        #: lets :meth:`has_unissued_earlier_store` skip its scan when
        #: every queued store has already issued (the steady state).
        self._unissued_stores = 0

    def __len__(self) -> int:
        return len(self._entries)

    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    def insert(self, entry) -> None:
        if len(self._entries) >= self.capacity:
            raise SimulationError("LSQ overflow — check dispatch gating")
        self._entries.append(entry)
        if entry.is_store:
            self._stores.append(entry)
            self._unissued_stores += 1

    def note_store_issued(self) -> None:
        """Record that one queued store moved to the issued state."""
        self._unissued_stores -= 1

    def release_head(self, entry) -> None:
        """Remove ``entry``, which must be the oldest memory instruction."""
        if not self._entries or self._entries[0] is not entry:
            raise SimulationError("LSQ released out of order")
        self._entries.popleft()
        if entry.is_store:
            self._stores.popleft()

    def has_unissued_earlier_store(self, load) -> bool:
        """True when any store older than ``load`` has not issued yet —
        the conservative-disambiguation stall condition."""
        if not self._unissued_stores:
            return False
        seq = load.seq
        for entry in self._stores:
            if entry.seq >= seq:
                break
            if not entry.issued:
                return True
        return False

    def state_summary(self) -> tuple:
        """Deterministic occupancy fingerprint for checkpoint summaries."""
        return (len(self._entries), len(self._stores),
                self._unissued_stores, self.forwards, self.deferred)

    def forwarding_store(self, load):
        """Latest earlier store overlapping ``load``'s access, if any.

        Returns ``(store_entry, resolved)``: ``resolved`` is False when the
        store exists but has not issued yet, in which case the load must
        wait (it may not bypass a store to the same address).
        """
        lo = load.addr
        hi = lo + load.size
        seq = load.seq
        for entry in reversed(self._stores):
            if entry.seq >= seq:
                continue
            addr = entry.addr
            if addr < hi and lo < addr + entry.size:
                if entry.issued:
                    self.forwards += 1
                    return entry, True
                self.deferred += 1
                return entry, False
        return None, True
