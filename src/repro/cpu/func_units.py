"""Functional-unit pool.

Units are fully pipelined (a unit accepts one new operation per cycle),
so the pool only constrains *issue* bandwidth per class per cycle.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..isa.opcodes import OpClass
from ..params import CPUConfig


class FUPool:
    """Per-cycle issue slots for each functional-unit class."""

    def __init__(self, config: CPUConfig):
        self.latencies = {}
        self.counts = {}
        for op_class in OpClass:
            name = op_class.fu_name
            if name not in config.fu_latencies:
                raise ConfigError(f"no latency configured for FU {name}")
            self.latencies[int(op_class)] = config.fu_latencies[name]
            self.counts[int(op_class)] = config.fu_counts.get(name)
        self._cycle = -1
        self._used = {}

    def latency(self, op_class: int) -> int:
        return self.latencies[op_class]

    def try_claim(self, now: int, op_class: int) -> bool:
        """Claim an issue slot for ``op_class`` at cycle ``now``."""
        if now != self._cycle:
            self._cycle = now
            self._used = {}
        limit = self.counts[op_class]
        if limit is None:
            return True
        used = self._used.get(op_class, 0)
        if used >= limit:
            return False
        self._used[op_class] = used + 1
        return True
