"""Functional-unit pool.

Units are fully pipelined (a unit accepts one new operation per cycle),
so the pool only constrains *issue* bandwidth per class per cycle.

The pool is on the per-cycle fast path, so the per-class latency and
slot limits live in flat lists indexed by ``int(op_class)`` (OpClass is
a dense IntEnum) rather than dicts: the issue loop reads
:attr:`latency_table` / :attr:`limit_table` / :attr:`used` directly
with plain list indexing.  ``latencies`` / ``counts`` keep the
dict-shaped config view for introspection and tests.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..isa.opcodes import OpClass
from ..params import CPUConfig

#: Slot limit recorded for unconstrained classes (``fu_counts`` entry
#: ``None``): any realizable issue width compares below it.
UNLIMITED = 1 << 30

_NUM_CLASSES = max(int(op_class) for op_class in OpClass) + 1


class FUPool:
    """Per-cycle issue slots for each functional-unit class."""

    __slots__ = ("latencies", "counts", "latency_table", "limit_table",
                 "used", "_cycle", "_zeros")

    def __init__(self, config: CPUConfig):
        self.latencies = {}
        self.counts = {}
        self.latency_table = [0] * _NUM_CLASSES
        self.limit_table = [UNLIMITED] * _NUM_CLASSES
        for op_class in OpClass:
            name = op_class.fu_name
            if name not in config.fu_latencies:
                raise ConfigError(f"no latency configured for FU {name}")
            latency = config.fu_latencies[name]
            count = config.fu_counts.get(name)
            index = int(op_class)
            self.latencies[index] = latency
            self.counts[index] = count
            self.latency_table[index] = latency
            self.limit_table[index] = UNLIMITED if count is None else count
        self._cycle = -1
        self.used = [0] * _NUM_CLASSES
        self._zeros = [0] * _NUM_CLASSES

    def latency(self, op_class: int) -> int:
        return self.latency_table[op_class]

    def begin_cycle(self, now: int) -> "list[int]":
        """Reset the per-cycle slot counters when ``now`` is a new cycle
        and return the live ``used`` list (the issue loop claims slots by
        bumping it in place against :attr:`limit_table`)."""
        if now != self._cycle:
            self._cycle = now
            self.used[:] = self._zeros
        return self.used

    def try_claim(self, now: int, op_class: int) -> bool:
        """Claim an issue slot for ``op_class`` at cycle ``now``."""
        used = self.begin_cycle(now)
        if used[op_class] >= self.limit_table[op_class]:
            return False
        used[op_class] += 1
        return True
