"""Branch predictors, and measurement of the perfect-prediction assumption.

The paper assumes perfect branch prediction ("modern branch predictors
are already quite accurate ... we have no way of knowing what prediction
techniques will be prevalent in future processors") and notes the
correspondence protocol does not yet support speculative broadcasts.
This module supplies the substrate that assumption replaces: static,
bimodal, and gshare predictors plus a driver that measures how accurate
each is on a workload's actual branch stream — quantifying how much the
perfect-prediction simplification gives away.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..isa.opcodes import CONDITIONAL_BRANCHES
from ..isa.program import Program


class BranchPredictor:
    """Interface: predict, then train with the actual outcome."""

    def predict(self, pc: int) -> bool:
        raise NotImplementedError

    def train(self, pc: int, taken: bool) -> None:
        raise NotImplementedError


class StaticTakenPredictor(BranchPredictor):
    """Always predicts taken (backward-branch-dominated loop codes)."""

    def predict(self, pc: int) -> bool:
        return True

    def train(self, pc: int, taken: bool) -> None:
        pass


class BimodalPredictor(BranchPredictor):
    """Classic table of 2-bit saturating counters indexed by PC."""

    def __init__(self, entries: int = 2048):
        if entries <= 0 or entries & (entries - 1):
            raise ConfigError("entries must be a positive power of two")
        self.entries = entries
        self._counters = [2] * entries  # weakly taken

    def _index(self, pc: int) -> int:
        return (pc >> 2) & (self.entries - 1)

    def predict(self, pc: int) -> bool:
        return self._counters[self._index(pc)] >= 2

    def train(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        counter = self._counters[index]
        if taken:
            if counter < 3:
                self._counters[index] = counter + 1
        else:
            if counter > 0:
                self._counters[index] = counter - 1


class GSharePredictor(BranchPredictor):
    """Global-history predictor: PC xor history indexes the counters."""

    def __init__(self, entries: int = 4096, history_bits: int = 10):
        if entries <= 0 or entries & (entries - 1):
            raise ConfigError("entries must be a positive power of two")
        if history_bits < 1:
            raise ConfigError("history_bits must be >= 1")
        self.entries = entries
        self.history_bits = history_bits
        self._counters = [2] * entries
        self._history = 0

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & (self.entries - 1)

    def predict(self, pc: int) -> bool:
        return self._counters[self._index(pc)] >= 2

    def train(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        counter = self._counters[index]
        if taken:
            if counter < 3:
                self._counters[index] = counter + 1
        else:
            if counter > 0:
                self._counters[index] = counter - 1
        mask = (1 << self.history_bits) - 1
        self._history = ((self._history << 1) | int(taken)) & mask


@dataclass
class PredictionReport:
    """Accuracy of one predictor on one branch stream."""

    predictor: str
    branches: int
    correct: int

    @property
    def accuracy(self) -> float:
        return self.correct / self.branches if self.branches else 1.0

    @property
    def mispredictions(self) -> int:
        return self.branches - self.correct


def measure_predictor(program: Program, predictor: BranchPredictor,
                      limit=None, name=None) -> PredictionReport:
    """Replay ``program``'s conditional-branch stream through
    ``predictor`` and report its accuracy."""
    from ..isa.interpreter import Interpreter
    from ..memory.address import INSTRUCTION_BYTES, TEXT_BASE

    interp = Interpreter(program)
    instructions = program.instructions
    branches = 0
    correct = 0
    previous_index = None
    previous_pc = 0
    for index in interp.indices(limit):
        if previous_index is not None:
            instr = instructions[previous_index]
            if instr.op in CONDITIONAL_BRANCHES:
                taken = index != previous_index + 1
                branches += 1
                if predictor.predict(previous_pc) == taken:
                    correct += 1
                predictor.train(previous_pc, taken)
        previous_index = index
        previous_pc = TEXT_BASE + index * INSTRUCTION_BYTES
    return PredictionReport(
        predictor=name or type(predictor).__name__,
        branches=branches,
        correct=correct,
    )


def survey_predictors(program: Program, limit=None):
    """Run the standard predictor set over one program."""
    return [
        measure_predictor(program, StaticTakenPredictor(), limit,
                          "static-taken"),
        measure_predictor(program, BimodalPredictor(), limit, "bimodal-2k"),
        measure_predictor(program, GSharePredictor(), limit, "gshare-4k"),
    ]
