"""Cross-node SPSD lockstep checking over the event stream.

Every DataScalar node executes the identical dynamic instruction stream
and applies the identical canonical (commit-time) cache accesses, so two
per-node event sequences must be *identical across nodes*:

* the **commit sequence** — the ordered ``(seq, op)`` of committed
  instructions; and
* the **cache-decision sequence** — the ordered replacement decisions
  ``(line, store, hit, filled, evicted)`` of canonical data-cache
  accesses (the correspondence rules of paper Section 4.1 make cache
  state a pure function of the commit stream).

A violation used to surface, at best, as a commit-count mismatch or a
``ProtocolError`` at the very end of a run.  :func:`check_lockstep`
instead pinpoints the *first divergent event* — which node, which cycle,
what it did, and what the reference node did at the same position.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ProtocolError
from .events import EventKind, TraceEvent

#: Event kinds each lockstep invariant is computed from.
_COMMIT_ARGS = ("seq", "op")
_CACHE_ARGS = ("line", "store", "hit", "filled", "evicted")


class DivergenceError(ProtocolError):
    """Two nodes' lockstep event sequences diverged."""


@dataclass(slots=True)
class Divergence:
    """The first point at which a node left lockstep."""

    invariant: str
    index: int
    node: int
    cycle: int
    reference_node: int
    expected: "tuple | None"
    got: "tuple | None"

    def describe(self) -> str:
        if self.got is None:
            shape = (
                f"stream ended after {self.index} events "
                f"(reference node {self.reference_node} continues with "
                f"{self.expected})"
            )
        elif self.expected is None:
            shape = (
                f"extra event {self.got} past the reference node "
                f"{self.reference_node}'s {self.index}-event stream"
            )
        else:
            shape = f"did {self.got}, reference node did {self.expected}"
        return (
            f"node {self.node} diverged from SPSD lockstep at cycle "
            f"{self.cycle}: {self.invariant} event #{self.index} {shape}"
        )


def _streams(
    events: "list[TraceEvent]", kind: EventKind, arg_names: "tuple[str, ...]"
) -> "dict[int, list[tuple[int, tuple]]]":
    """Per-node ``(cycle, key)`` sequences for one event kind."""
    streams: "dict[int, list[tuple[int, tuple]]]" = {}
    for event in events:
        if event.kind is not kind:
            continue
        key = tuple(event.args.get(name) for name in arg_names)
        streams.setdefault(event.node, []).append((event.cycle, key))
    return streams


def _first_divergence(
    invariant: str, streams: "dict[int, list[tuple[int, tuple]]]"
) -> "Divergence | None":
    if len(streams) < 2:
        return None
    reference_node = min(streams)
    reference = streams[reference_node]
    found: "Divergence | None" = None
    for node in sorted(streams):
        if node == reference_node:
            continue
        stream = streams[node]
        candidate: "Divergence | None" = None
        for index in range(min(len(reference), len(stream))):
            if stream[index][1] == reference[index][1]:
                continue
            candidate = Divergence(
                invariant=invariant,
                index=index,
                node=node,
                cycle=stream[index][0],
                reference_node=reference_node,
                expected=reference[index][1],
                got=stream[index][1],
            )
            break
        else:
            if len(stream) == len(reference):
                continue
            index = min(len(reference), len(stream))
            longer = stream if len(stream) > len(reference) else reference
            candidate = Divergence(
                invariant=invariant,
                index=index,
                node=node,
                cycle=longer[index][0],
                reference_node=reference_node,
                expected=reference[index][1] if len(reference) > index else None,
                got=stream[index][1] if len(stream) > index else None,
            )
        if candidate is not None and (found is None or candidate.cycle < found.cycle):
            found = candidate
    return found


def check_lockstep(events: "list[TraceEvent]") -> "Divergence | None":
    """Scan a run's events for the first SPSD lockstep violation.

    Returns ``None`` when every node's commit and cache-decision
    sequences are identical; otherwise the earliest (by cycle)
    :class:`Divergence` across both invariants.
    """
    commit = _first_divergence(
        "commit", _streams(events, EventKind.COMMIT, _COMMIT_ARGS)
    )
    cache = _first_divergence(
        "cache-decision", _streams(events, EventKind.CACHE_COMMIT, _CACHE_ARGS)
    )
    if commit is None:
        return cache
    if cache is None:
        return commit
    return cache if cache.cycle < commit.cycle else commit


def assert_lockstep(events: "list[TraceEvent]") -> None:
    """Raise :class:`DivergenceError` describing the first divergence."""
    divergence = check_lockstep(events)
    if divergence is not None:
        raise DivergenceError(divergence.describe())
