"""A hierarchical counter/gauge/histogram/series registry.

One :class:`MetricsRegistry` holds every metric of a run under dotted
names (``node.0.bshr.waits``, ``faults.recovery.latency``), so reports,
exporters, and compatibility shims all read the same numbers — the
registry is the single source of truth the ad-hoc stat dicts used to
approximate.

Naming scheme (see ``docs/observability.md``):

* ``run.*`` — whole-run scalars (cycles, instructions, bus totals);
* ``node.<id>.*`` — per-node counters, grouped by subsystem
  (``pipeline``, ``bshr``, ``dcub``, ``cache``, ``broadcast``);
* ``faults.injected.*`` / ``faults.recovery.*`` — the fault ledger;
* ``trace.events.<kind>`` — events emitted per :class:`EventKind`;
* ``timeline.*`` — sampled series (cycle-indexed).
"""

from __future__ import annotations

import math


def nearest_rank_percentile(values: "list[float]", q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 100])."""
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return float(ordered[rank - 1])


class Counter:
    """A monotonically-growing (by convention) integer metric."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A recorded sample set with mean/extrema/percentile queries."""

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: "list[float]" = []

    def record(self, value: float) -> None:
        self.values.append(value)

    #: Alias kept for :class:`repro.analysis.stats.Distribution` callers.
    add = record

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    @property
    def maximum(self) -> float:
        return max(self.values) if self.values else 0

    def percentile(self, q: float) -> float:
        return nearest_rank_percentile(self.values, q)

    def summary(self) -> dict:
        """Scalar digest: count, mean, p50, p95, max."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "max": self.maximum,
        }


class Series:
    """An append-only sequence of sampled values (cycle-aligned with the
    registry's ``timeline.cycle`` series by convention)."""

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: "list[float]" = []

    def append(self, value: float) -> None:
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, index: int) -> float:
        return self.values[index]


class MetricsRegistry:
    """Dotted-name registry of counters, gauges, histograms, and series.

    Metrics are created on first access and type-checked on every
    access, so two call sites can never register the same name with
    different kinds (the drift the ad-hoc dicts allowed).
    """

    def __init__(self) -> None:
        self._metrics: "dict[str, object]" = {}

    def _get(self, name: str, kind: type) -> object:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        metric = self._get(name, Counter)
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._get(name, Gauge)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._get(name, Histogram)
        assert isinstance(metric, Histogram)
        return metric

    def series(self, name: str) -> Series:
        metric = self._get(name, Series)
        assert isinstance(metric, Series)
        return metric

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> "list[str]":
        return sorted(self._metrics)

    def subtree(self, prefix: str) -> "dict[str, object]":
        """Every metric under ``prefix.`` (hierarchical selection)."""
        dotted = prefix + "."
        return {
            name: metric
            for name, metric in self._metrics.items()
            if name.startswith(dotted) or name == prefix
        }

    def as_dict(self) -> dict:
        """Flat JSON-serializable snapshot (histograms as digests,
        series as value lists)."""
        snapshot: "dict[str, object]" = {}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, (Counter, Gauge)):
                snapshot[name] = metric.value
            elif isinstance(metric, Histogram):
                snapshot[name] = metric.summary()
            elif isinstance(metric, Series):
                snapshot[name] = list(metric.values)
        return snapshot


def format_metrics(registry: MetricsRegistry) -> str:
    """Render a registry as an aligned, name-sorted text report."""
    rows: "list[tuple[str, str]]" = []
    for name, value in registry.as_dict().items():
        if isinstance(value, dict):
            digest = (
                f"count={value['count']} mean={value['mean']:.2f} "
                f"p50={value['p50']:g} p95={value['p95']:g} "
                f"max={value['max']:g}"
            )
            rows.append((name, digest))
        elif isinstance(value, list):
            rows.append((name, f"series[{len(value)}]"))
        elif isinstance(value, float):
            rows.append((name, f"{value:.4f}"))
        else:
            rows.append((name, str(value)))
    if not rows:
        return "(no metrics)"
    width = max(len(name) for name, _ in rows)
    return "\n".join(f"{name.ljust(width)}  {text}" for name, text in rows)


def registry_from_result(result) -> MetricsRegistry:
    """Build the canonical metrics snapshot of a
    :class:`repro.core.system.DataScalarResult`."""
    registry = MetricsRegistry()
    registry.counter("run.cycles").inc(result.cycles)
    registry.counter("run.instructions").inc(result.instructions)
    registry.counter("run.bus.transactions").inc(result.bus_transactions)
    registry.counter("run.bus.payload_bytes").inc(result.bus_payload_bytes)
    registry.gauge("run.bus.utilization").set(result.bus_utilization)
    registry.gauge("run.ipc").set(result.ipc)
    for node in result.nodes:
        prefix = f"node.{node.node_id}"
        pipeline = node.pipeline
        registry.counter(f"{prefix}.pipeline.committed").inc(pipeline.committed)
        registry.counter(f"{prefix}.pipeline.loads").inc(pipeline.loads)
        registry.counter(f"{prefix}.pipeline.stores").inc(pipeline.stores)
        registry.counter(f"{prefix}.pipeline.fetch_stalls").inc(pipeline.fetch_stalls)
        registry.counter(f"{prefix}.pipeline.window_stalls").inc(
            pipeline.window_stalls
        )
        registry.counter(f"{prefix}.pipeline.lsq_stalls").inc(pipeline.lsq_stalls)
        registry.counter(f"{prefix}.broadcast.sent").inc(node.broadcasts_sent)
        registry.counter(f"{prefix}.broadcast.late").inc(node.late_broadcasts)
        registry.counter(f"{prefix}.bshr.waits").inc(node.bshr_waits)
        registry.counter(f"{prefix}.bshr.found").inc(node.bshr_found)
        registry.counter(f"{prefix}.bshr.squashes").inc(node.bshr_squashes)
        registry.counter(f"{prefix}.bshr.arrivals").inc(node.bshr_arrivals)
        registry.counter(f"{prefix}.cache.false_hits").inc(node.false_hits)
        registry.counter(f"{prefix}.cache.false_misses").inc(node.false_misses)
        registry.gauge(f"{prefix}.cache.miss_rate").set(node.dcache_miss_rate)
        registry.counter(f"{prefix}.loads.remote").inc(node.remote_loads)
        registry.counter(f"{prefix}.loads.local").inc(node.local_loads)
        registry.counter(f"{prefix}.stores.dropped").inc(node.dropped_stores)
    return registry
