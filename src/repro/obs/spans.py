"""Hierarchical wall/CPU phase spans for sweep telemetry.

A :class:`SpanRecorder` measures *where the wall-clock time of one
sweep point goes*: program build, codegen compile, functional front
end, timing loop, fault recovery, analysis.  Instrumentation sites call
the module-level :func:`span` context manager::

    with span("timing-loop"):
        ...

and nesting builds slash-separated paths (``point/timing-loop``).  When
no recorder is active — the default — :func:`span` returns a shared
no-op singleton, so the disabled path allocates nothing and costs one
global read plus one ``is None`` test; results are bit-identical with
spans on or off because spans only read clocks.

Two record shapes share one type:

* a plain **span** (``count == 1``) measures one contiguous interval,
  wall (``time.perf_counter``) and CPU (``time.process_time``);
* an **accumulator** sums many tiny intervals into one record — how the
  per-record functional front end and the per-cycle fault-recovery hook
  are charged without a span per dynamic instruction.

Records serialize to plain dicts (:func:`records_as_dicts`) with their
start times rebased from the monotonic clock to the epoch, so spans
recorded in different worker processes merge onto one timeline
(:func:`repro.obs.export.spans_to_chrome_trace`).  Phase breakdowns
come from :func:`phase_totals` (per-path totals) and :func:`breakdown`
(direct children of a root, self-time charged to ``<self>``).
"""

from __future__ import annotations

import time
from typing import Any, Iterable, Iterator, TypeVar

__all__ = [
    "SpanAccumulator",
    "SpanRecord",
    "SpanRecorder",
    "active",
    "breakdown",
    "phase_totals",
    "recording",
    "records_as_dicts",
    "span",
    "timed_iter",
]

_T = TypeVar("_T")


class SpanRecord:
    """One completed (or accumulating) phase measurement."""

    __slots__ = ("path", "name", "start", "wall", "cpu", "count")

    def __init__(
        self,
        path: str,
        name: str,
        start: float,
        wall: float = 0.0,
        cpu: float = 0.0,
        count: int = 1,
    ) -> None:
        #: Slash-separated nesting path, e.g. ``point/timing-loop``.
        self.path = path
        #: Leaf name (the last path component).
        self.name = name
        #: ``time.perf_counter()`` at entry (monotonic; rebase to the
        #: epoch with the recorder's ``epoch_offset`` when exporting).
        self.start = start
        #: Total wall seconds inside the span.
        self.wall = wall
        #: Total process-CPU seconds inside the span.
        self.cpu = cpu
        #: Number of merged intervals (1 for a plain span).
        self.count = count

    @property
    def depth(self) -> int:
        return self.path.count("/")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpanRecord({self.path!r}, wall={self.wall:.6f}, "
            f"cpu={self.cpu:.6f}, count={self.count})"
        )


class _OpenSpan:
    """Context manager for one live span."""

    __slots__ = ("_recorder", "_name", "_t0", "_c0")

    def __init__(self, recorder: SpanRecorder, name: str) -> None:
        self._recorder = recorder
        self._name = name

    def __enter__(self) -> _OpenSpan:
        recorder = self._recorder
        recorder._stack.append(self._name)
        self._t0 = time.perf_counter()
        self._c0 = time.process_time()
        return self

    def __exit__(self, *exc_info: object) -> None:
        wall = time.perf_counter() - self._t0
        cpu = time.process_time() - self._c0
        recorder = self._recorder
        stack = recorder._stack
        path = "/".join(stack)
        stack.pop()
        recorder.records.append(SpanRecord(path, self._name, self._t0, wall, cpu))


class _NullSpan:
    """The shared disabled-path context manager: does nothing."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class SpanAccumulator:
    """Sums many tiny intervals into one :class:`SpanRecord`."""

    __slots__ = ("_record",)

    def __init__(self, record: SpanRecord) -> None:
        self._record = record

    def add(self, wall: float, cpu: float = 0.0) -> None:
        record = self._record
        record.wall += wall
        record.cpu += cpu
        record.count += 1


class SpanRecorder:
    """Collects :class:`SpanRecord` for one point / one process.

    Not thread-safe: one recorder belongs to one worker process (the
    sweep engine installs a fresh recorder per point).
    """

    def __init__(self) -> None:
        self.records: list[SpanRecord] = []
        self._stack: list[str] = []
        #: Add to a record's monotonic ``start`` to get epoch seconds —
        #: the bridge that lets spans from different processes merge
        #: onto one wall-clock timeline.
        self.epoch_offset = time.time() - time.perf_counter()

    def span(self, name: str) -> _OpenSpan:
        """A context manager timing one nested phase."""
        return _OpenSpan(self, name)

    def accumulator(self, name: str, under: str = "") -> SpanAccumulator:
        """An accumulator record under the current path.

        ``under`` appends one extra path segment, for call sites that
        create the accumulator *before* entering the span whose time it
        belongs to (e.g. the functional front end is consumed inside
        the timing loop but wrapped during setup).
        """
        parts = list(self._stack)
        if under:
            parts.append(under)
        parts.append(name)
        record = SpanRecord("/".join(parts), name, time.perf_counter(), count=0)
        self.records.append(record)
        return SpanAccumulator(record)


# ----------------------------------------------------------------------
# The process-wide active recorder (None = telemetry disabled).
# ----------------------------------------------------------------------
_active: SpanRecorder | None = None


def active() -> SpanRecorder | None:
    """The currently installed recorder, or ``None`` when disabled."""
    return _active


def span(name: str) -> _OpenSpan | _NullSpan:
    """Module-level entry point instrumentation sites call.

    With no active recorder this returns a shared no-op singleton — no
    allocation, no clock reads.
    """
    recorder = _active
    if recorder is None:
        return _NULL_SPAN
    return recorder.span(name)


class recording:
    """Install ``recorder`` as the active recorder for a ``with`` block.

    ``recording(None)`` is a no-op scope (telemetry stays off), so call
    sites can write ``with recording(maybe_recorder): ...`` without
    branching.  The previous recorder is restored on exit.
    """

    __slots__ = ("_recorder", "_previous")

    def __init__(self, recorder: SpanRecorder | None) -> None:
        self._recorder = recorder
        self._previous: SpanRecorder | None = None

    def __enter__(self) -> SpanRecorder | None:
        global _active
        self._previous = _active
        if self._recorder is not None:
            _active = self._recorder
        return self._recorder

    def __exit__(self, *exc_info: object) -> None:
        global _active
        if self._recorder is not None:
            _active = self._previous


def timed_iter(source: Iterable[_T], accumulator: SpanAccumulator) -> Iterator[_T]:
    """Wrap an iterator, charging each ``next()`` to ``accumulator``.

    This is how the functional front end — a generator consumed lazily
    *inside* the timing loop — gets its own wall-clock phase without a
    span per dynamic instruction.  Only installed when a recorder is
    active, so the disabled path never pays the per-record clock reads.
    """
    iterator = iter(source)
    add = accumulator.add
    clock = time.perf_counter
    while True:
        t0 = clock()
        try:
            item = next(iterator)
        except StopIteration:
            add(clock() - t0)
            return
        add(clock() - t0)
        yield item


# ----------------------------------------------------------------------
# Aggregation and serialization.
# ----------------------------------------------------------------------
def records_as_dicts(recorder: SpanRecorder | None) -> list[dict[str, Any]]:
    """JSON-ready records, start times rebased to the epoch and ordered
    by start time (deterministic regardless of exit order)."""
    if recorder is None:
        return []
    offset = recorder.epoch_offset
    rows = [
        {
            "path": record.path,
            "name": record.name,
            "start": record.start + offset,
            "wall": record.wall,
            "cpu": record.cpu,
            "count": record.count,
        }
        for record in recorder.records
    ]
    rows.sort(key=lambda row: (row["start"], row["path"]))
    return rows


def phase_totals(records: Iterable[dict[str, Any]]) -> dict[str, dict[str, Any]]:
    """Per-path totals: ``{path: {"wall", "cpu", "count"}}``.

    Multiple records with one path (e.g. a phase entered once per
    retry) merge by summation.
    """
    totals: dict[str, dict[str, Any]] = {}
    for record in records:
        path = str(record["path"])
        entry = totals.get(path)
        if entry is None:
            totals[path] = {
                "wall": float(record["wall"]),
                "cpu": float(record["cpu"]),
                "count": int(record["count"]),
            }
        else:
            entry["wall"] += float(record["wall"])
            entry["cpu"] += float(record["cpu"])
            entry["count"] += int(record["count"])
    return totals


def breakdown(
    records: Iterable[dict[str, Any]], root: str = "point"
) -> dict[str, dict[str, float]]:
    """Wall/CPU of ``root``'s *direct* children, self-time as ``<self>``.

    Each child's time includes its own subtree (a child's nested spans
    are part of that phase); ``<self>`` is whatever part of ``root``'s
    wall none of its children account for.  The values therefore sum to
    exactly the root span's measurements — the property the manifest's
    per-point phase breakdown leans on.  Returns ``{}`` when no record
    matches ``root``.
    """
    totals = phase_totals(records)
    root_entry = totals.get(root)
    if root_entry is None:
        return {}
    prefix = root + "/"
    result: dict[str, dict[str, float]] = {}
    child_wall = 0.0
    child_cpu = 0.0
    for path, entry in totals.items():
        if not path.startswith(prefix):
            continue
        rest = path[len(prefix) :]
        if "/" in rest:
            continue  # grandchild: already inside its parent's time
        result[rest] = {
            "wall": float(entry["wall"]),
            "cpu": float(entry["cpu"]),
        }
        child_wall += float(entry["wall"])
        child_cpu += float(entry["cpu"])
    result["<self>"] = {
        "wall": max(0.0, float(root_entry["wall"]) - child_wall),
        "cpu": max(0.0, float(root_entry["cpu"]) - child_cpu),
    }
    return result
