"""The typed event vocabulary of the instrumentation layer.

Every traced occurrence in the simulator is a :class:`TraceEvent`: a
:class:`EventKind`, the simulated cycle it happened at, the node it
happened on (the event's *track*), and a small dict of kind-specific
arguments.  The vocabulary is deliberately closed — the divergence
checker and the exporters pattern-match on kinds, so new kinds are added
here, not ad hoc at emission sites.

Events are *observations*: emitting them never changes architectural
state, which is what keeps fast-forwarded runs bit-identical with
tracing on and off (see ``docs/observability.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class EventKind(str, Enum):
    """The closed set of traced event kinds."""

    #: One instruction committed (``seq``, ``op``).
    COMMIT = "commit"
    #: Fetch could not make progress for ``cycles`` cycles (``cause`` is
    #: ``redirect``/``fetch``/``window``/``lsq``).  Dense ticking emits
    #: one-cycle events; the idle-skip scheduler emits one aggregated
    #: event per skipped range — same totals, coarser grain.
    ISSUE_STALL = "issue-stall"
    #: A broadcast left a node's transmit queue (``line``, ``seq``,
    #: ``late``).
    BCAST_SEND = "bcast-send"
    #: A broadcast was fully delivered to one receiver (``src``,
    #: ``line``).
    BCAST_ARRIVE = "bcast-arrive"
    #: An arrival woke a waiting load, or was consumed by a scheduled
    #: discard (``line``, ``squashed``).
    BCAST_CONSUME = "bcast-consume"
    #: A BSHR entry was allocated: a load now waits (``buffered`` False)
    #: or an arrival was buffered (``buffered`` True).
    BSHR_ALLOC = "bshr-alloc"
    #: A load found its data already waiting in the BSHR (``line``) —
    #: the datathreading hit.
    BSHR_FILL = "bshr-fill"
    #: An armed BSHR wait exceeded its deadline (``lines``); the run is
    #: about to abort with ``BroadcastLostError``.
    BSHR_TIMEOUT = "bshr-timeout"
    #: An issue-time miss staged a line into the DCUB (``line``).
    DCUB_STAGE = "dcub-stage"
    #: The last referencing commit drained a line out of the DCUB
    #: (``line``).
    DCUB_APPLY = "dcub-apply"
    #: One canonical (commit-time) data-cache access and its replacement
    #: decision (``line``, ``store``, ``hit``, ``filled``, ``evicted``).
    #: The per-node streams of these must be identical under SPSD — the
    #: divergence checker's second invariant.
    CACHE_COMMIT = "cache-commit"
    #: Commit-time reconciliation of a false hit: the owner re-broadcast
    #: the line (``action`` = ``late-broadcast``) or a consumer scheduled
    #: a discard (``action`` = ``discard``).
    FALSE_HIT_REPAIR = "false-hit-repair"
    #: One transfer occupied the interconnect (``line``, ``start``,
    #: ``done``).
    MEDIUM_XFER = "medium-xfer"
    #: The fault plan injected a fault into one delivery (``fault`` =
    #: ``drop``/``corrupt``/``jitter``/``stall``, ``src``, ``line``).
    FAULT_INJECT = "fault-inject"
    #: The recovery slow path repaired a delivery (``src``, ``line``,
    #: ``latency``, ``attempts``).
    FAULT_RECOVER = "fault-recover"


@dataclass(slots=True)
class TraceEvent:
    """One traced occurrence."""

    kind: EventKind
    cycle: int
    node: int
    args: dict = field(default_factory=dict)

    def as_record(self) -> dict:
        """Flat JSON-serializable form (the JSONL row)."""
        record = {"kind": self.kind.value, "cycle": self.cycle, "node": self.node}
        record.update(self.args)
        return record

    @classmethod
    def from_record(cls, record: dict) -> "TraceEvent":
        """Inverse of :meth:`as_record`."""
        args = {
            key: value
            for key, value in record.items()
            if key not in ("kind", "cycle", "node")
        }
        return cls(
            kind=EventKind(record["kind"]),
            cycle=int(record["cycle"]),
            node=int(record["node"]),
            args=args,
        )
