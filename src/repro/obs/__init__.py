"""Structured observability for the DataScalar simulator.

This package is the simulator's instrumentation layer:

* :mod:`repro.obs.events` — the typed event vocabulary
  (:class:`EventKind`, :class:`TraceEvent`);
* :mod:`repro.obs.tracer` — the narrow :class:`Tracer` protocol the
  simulator emits through (``None`` by default: zero overhead when
  disabled) and the in-memory :class:`EventTracer`;
* :mod:`repro.obs.metrics` — the hierarchical :class:`MetricsRegistry`
  (counters, gauges, histograms, series) behind every stat report;
* :mod:`repro.obs.divergence` — SPSD lockstep checking that pinpoints
  the first divergent event instead of a bit-mismatch at end of run;
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (Perfetto) and
  JSONL exporters;
* :mod:`repro.obs.spans` — hierarchical wall/CPU phase spans (the
  per-point phase breakdown behind sweep telemetry and run manifests);
  and
* :mod:`repro.obs.baseline` — the perf-regression gate
  (``python -m repro.obs.baseline manifest.json --against
  BENCH_sweep.json``).

Entry points: ``DataScalarSystem.run(..., tracer=EventTracer())`` and
``python -m repro.experiments traced-run --trace-out trace.json
--metrics-out metrics.txt``.  See ``docs/observability.md``.
"""

from .divergence import Divergence, DivergenceError, assert_lockstep, check_lockstep
from .events import EventKind, TraceEvent
from .export import (
    from_jsonl,
    spans_to_chrome_trace,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_spans_chrome_trace,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Series,
    format_metrics,
    registry_from_result,
)
from .spans import SpanRecord, SpanRecorder, recording, span
from .tracer import EventTracer, NullTracer, SamplingTracer, Tracer

__all__ = [
    "Counter",
    "Divergence",
    "DivergenceError",
    "EventKind",
    "EventTracer",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "SamplingTracer",
    "Series",
    "SpanRecord",
    "SpanRecorder",
    "TraceEvent",
    "Tracer",
    "assert_lockstep",
    "check_lockstep",
    "format_metrics",
    "from_jsonl",
    "recording",
    "registry_from_result",
    "span",
    "spans_to_chrome_trace",
    "to_chrome_trace",
    "to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
    "write_spans_chrome_trace",
]
