"""Trace exporters: Chrome ``trace_event`` JSON and JSONL dumps.

The Chrome exporter targets Perfetto (https://ui.perfetto.dev): open the
written JSON and every node appears as its own process track ("node 0",
"node 1", ...), with one-cycle slices for sends/arrivals, duration
slices for fetch-stall episodes, thread-scoped instants for
BSHR/DCUB/fault activity, a per-node ``committed`` counter track, and —
the part that makes datathreading pipelining visible — a flow arrow from
every broadcast send to each of its per-receiver arrivals.

Timestamps are simulated cycles, written as microseconds (one cycle ==
1 us) so Perfetto's zooming behaves sensibly.
"""

from __future__ import annotations

import json

from .events import EventKind, TraceEvent

#: Event kinds rendered as thread-scoped instants on the node's track.
_INSTANT_KINDS = {
    EventKind.BSHR_ALLOC: "bshr-alloc",
    EventKind.BSHR_FILL: "bshr-fill",
    EventKind.BSHR_TIMEOUT: "bshr-timeout",
    EventKind.BCAST_CONSUME: "bcast-consume",
    EventKind.DCUB_STAGE: "dcub-stage",
    EventKind.DCUB_APPLY: "dcub-apply",
    EventKind.FALSE_HIT_REPAIR: "false-hit-repair",
    EventKind.FAULT_INJECT: "fault-inject",
    EventKind.FAULT_RECOVER: "fault-recover",
}


def _json_args(args: dict) -> dict:
    """JSON-safe copy of an event's args (hex-format line addresses)."""
    safe = {}
    for key, value in args.items():
        if key in ("line", "evicted") and isinstance(value, int):
            safe[key] = hex(value)
        else:
            safe[key] = value
    return safe


def to_chrome_trace(events: "list[TraceEvent]") -> dict:
    """Build a Chrome ``trace_event`` document from a run's events."""
    rows: "list[dict]" = []
    nodes = sorted({event.node for event in events})
    for node in nodes:
        rows.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": node,
                "tid": 0,
                "args": {"name": f"node {node}"},
            }
        )
        rows.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": node,
                "tid": 0,
                "args": {"name": "events"},
            }
        )
    flow_id = 0
    #: Most recent send per source node: (event, flow ids already used).
    last_send: "dict[int, TraceEvent]" = {}
    for event in events:
        kind = event.kind
        ts = event.cycle
        pid = event.node
        if kind is EventKind.COMMIT:
            rows.append(
                {
                    "ph": "C",
                    "name": "committed",
                    "pid": pid,
                    "ts": ts,
                    "args": {"count": event.args.get("seq", 0)},
                }
            )
        elif kind is EventKind.ISSUE_STALL:
            rows.append(
                {
                    "ph": "X",
                    "name": f"stall:{event.args.get('cause', '?')}",
                    "cat": "stall",
                    "pid": pid,
                    "tid": 0,
                    "ts": ts,
                    "dur": max(1, int(event.args.get("cycles", 1))),
                }
            )
        elif kind is EventKind.BCAST_SEND:
            last_send[event.node] = event
            rows.append(
                {
                    "ph": "X",
                    "name": "bcast-send",
                    "cat": "broadcast",
                    "pid": pid,
                    "tid": 0,
                    "ts": ts,
                    "dur": 1,
                    "args": _json_args(event.args),
                }
            )
        elif kind is EventKind.BCAST_ARRIVE:
            src = event.args.get("src")
            rows.append(
                {
                    "ph": "X",
                    "name": "bcast-arrive",
                    "cat": "broadcast",
                    "pid": pid,
                    "tid": 0,
                    "ts": ts,
                    "dur": 1,
                    "args": _json_args(event.args),
                }
            )
            send = last_send.get(src) if isinstance(src, int) else None
            if send is not None:
                flow_id += 1
                flow = {"cat": "broadcast", "name": "bcast", "id": flow_id}
                rows.append(
                    {"ph": "s", "pid": send.node, "tid": 0, "ts": send.cycle, **flow}
                )
                rows.append(
                    {"ph": "f", "bp": "e", "pid": pid, "tid": 0, "ts": ts, **flow}
                )
        elif kind is EventKind.MEDIUM_XFER:
            start = int(event.args.get("start", ts))
            done = int(event.args.get("done", ts + 1))
            rows.append(
                {
                    "ph": "X",
                    "name": "xfer",
                    "cat": "medium",
                    "pid": pid,
                    "tid": 1,
                    "ts": start,
                    "dur": max(1, done - start),
                    "args": _json_args(event.args),
                }
            )
        elif kind in _INSTANT_KINDS:
            rows.append(
                {
                    "ph": "i",
                    "s": "t",
                    "name": _INSTANT_KINDS[kind],
                    "cat": kind.value.split("-")[0],
                    "pid": pid,
                    "tid": 0,
                    "ts": ts,
                    "args": _json_args(event.args),
                }
            )
        # CACHE_COMMIT events are a divergence-checker substrate, not a
        # visualization: rendering one instant per committed memory
        # access would bury every other track.
    for node in nodes:
        if any(row.get("tid") == 1 and row.get("pid") == node for row in rows):
            rows.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": node,
                    "tid": 1,
                    "args": {"name": "interconnect"},
                }
            )
    return {"traceEvents": rows, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, events: "list[TraceEvent]") -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(events), handle)
        handle.write("\n")


def spans_to_chrome_trace(
    tracks: "list[tuple[str, list[dict]]]",
) -> dict:
    """Chrome ``trace_event`` document from per-worker span records.

    ``tracks`` is ``[(track_name, records), ...]`` where each record is
    a :func:`repro.obs.spans.records_as_dicts` dict with an epoch
    ``start``.  Every track becomes its own process (one per sweep
    worker), timestamps are microseconds relative to the earliest span
    anywhere, so a whole multi-process sweep reads as one flamegraph in
    ``chrome://tracing`` / Perfetto.  Plain spans land on ``tid 0``
    (properly nested in time, so they stack); accumulator records
    (``count != 1`` — summed non-contiguous intervals) land on ``tid
    1`` where their duration reads as a *total*, not an extent.
    """
    rows: "list[dict]" = []
    starts = [
        float(record["start"])
        for _, records in tracks
        for record in records
    ]
    base = min(starts) if starts else 0.0
    for pid, (name, records) in enumerate(tracks):
        rows.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
        for tid, thread in ((0, "spans"), (1, "accumulated")):
            rows.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": thread},
                }
            )
        for record in records:
            accumulated = int(record.get("count", 1)) != 1
            rows.append(
                {
                    "ph": "X",
                    "name": str(record["name"]),
                    "cat": "span",
                    "pid": pid,
                    "tid": 1 if accumulated else 0,
                    "ts": (float(record["start"]) - base) * 1e6,
                    "dur": max(1.0, float(record["wall"]) * 1e6),
                    "args": {
                        "path": record["path"],
                        "cpu_seconds": record["cpu"],
                        "count": record["count"],
                    },
                }
            )
    return {"traceEvents": rows, "displayTimeUnit": "ms"}


def write_spans_chrome_trace(
    path: str, tracks: "list[tuple[str, list[dict]]]"
) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(spans_to_chrome_trace(tracks), handle)
        handle.write("\n")


def to_jsonl(events: "list[TraceEvent]") -> str:
    """One JSON object per line, in emission order."""
    return "\n".join(json.dumps(event.as_record()) for event in events)


def from_jsonl(text: str) -> "list[TraceEvent]":
    """Inverse of :func:`to_jsonl`."""
    return [
        TraceEvent.from_record(json.loads(line))
        for line in text.splitlines()
        if line.strip()
    ]


def write_jsonl(path: str, events: "list[TraceEvent]") -> None:
    with open(path, "w", encoding="utf-8") as handle:
        text = to_jsonl(events)
        if text:
            handle.write(text)
            handle.write("\n")
