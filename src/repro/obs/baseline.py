"""Perf-regression gate: compare a run manifest against baselines.

``python -m repro.obs.baseline manifest.json --against BENCH_sweep.json
--against BENCH_simperf.json`` extracts comparable perf indicators from
a sweep's :class:`~repro.runner.manifest.RunManifest` JSON and from
each baseline file, and exits non-zero when the fresh run is slower
than a baseline by more than a multiplicative *tolerance* — the typed,
scriptable version of the ad-hoc ``REPRO_MIN_SPEEDUP`` bench smokes.

Three baseline shapes are understood:

* another **run manifest** (``schema: repro-run-manifest/1``) — the
  tightest comparison: per-point wall seconds matched by label, plus
  total executed wall;
* **BENCH_sweep.json** (``serial_seconds``/``points``/``limit``) — the
  sweep throughput benchmark, normalized to seconds per simulated
  instruction;
* **BENCH_simperf.json** (``optimized_seconds``/``limit``) — the
  single-run benchmark, normalized the same way.

Normalizing to seconds per simulated instruction makes runs at
different ``--limit`` comparable; it cannot make different *machines*
comparable, which is why the default tolerance is generous (2x) and CI
uses a documented, wider one (see ``docs/observability.md``).  The
gate exists to catch asymptotic blowups and order-of-magnitude
regressions deterministically — for fine-grained gating, compare two
manifests produced on the same machine.

Exit codes: 0 all checks pass; 1 at least one regression; 2 nothing
comparable (a vacuous pass must not look like a pass) or bad input.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

__all__ = ["Check", "compare", "main", "manifest_rate", "manifest_timing_shares"]

MANIFEST_SCHEMA = "repro-run-manifest/1"

#: Default multiplicative slowdown tolerance (measured <= baseline * t).
DEFAULT_TOLERANCE = 2.0

#: Timing-loop phases smaller than this share of the loop in the
#: baseline are skipped — their ratios are clock-resolution noise.
MIN_PHASE_SHARE = 0.02


class Check:
    """One baseline comparison: measured vs. allowed."""

    __slots__ = ("name", "baseline", "measured", "tolerance", "detail")

    def __init__(
        self,
        name: str,
        baseline: float,
        measured: float,
        tolerance: float,
        detail: str = "",
    ) -> None:
        self.name = name
        self.baseline = baseline
        self.measured = measured
        self.tolerance = tolerance
        self.detail = detail

    @property
    def ratio(self) -> float:
        if self.baseline <= 0:
            return float("inf") if self.measured > 0 else 1.0
        return self.measured / self.baseline

    @property
    def ok(self) -> bool:
        return self.ratio <= self.tolerance

    def describe(self) -> str:
        verdict = "OK  " if self.ok else "FAIL"
        line = (
            f"[baseline] {verdict} {self.name}: measured={self.measured:.6g} "
            f"baseline={self.baseline:.6g} ratio={self.ratio:.2f}x "
            f"tolerance={self.tolerance:.2f}x"
        )
        if self.detail:
            line += f" ({self.detail})"
        return line


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    count = len(ordered)
    if count == 0:
        return 0.0
    middle = count // 2
    if count % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def _executed_points(manifest: dict[str, Any]) -> list[dict[str, Any]]:
    return [
        point
        for point in manifest.get("points", [])
        if not point.get("cached")
        and not point.get("deduped")
        and float(point.get("wall_seconds", 0.0)) > 0
    ]


def manifest_rate(manifest: dict[str, Any]) -> float:
    """Median seconds per simulated instruction over executed points.

    Points without a ``limit`` (analytic experiments that simulate
    nothing) are excluded — they contribute no instructions.
    """
    rates = [
        float(point["wall_seconds"]) / float(point["limit"])
        for point in _executed_points(manifest)
        if point.get("limit")
    ]
    return _median(rates)


def manifest_timing_shares(manifest: dict[str, Any]) -> dict[str, float]:
    """Each timing-loop phase's share of total timing-loop wall.

    Aggregates the per-point ``timing_phases`` rows (written by runs
    whose span recorder was active) over executed points.  Shares are
    dimensionless, which makes them comparable across machines in a way
    raw seconds never are — a phase whose share balloons has regressed
    relative to the rest of the loop no matter how fast the host is.
    """
    totals: dict[str, float] = {}
    for point in _executed_points(manifest):
        phases = point.get("timing_phases")
        if not phases:
            continue
        for name, wall in phases.items():
            totals[name] = totals.get(name, 0.0) + float(wall)
    total = sum(totals.values())
    if total <= 0:
        return {}
    return {name: wall / total for name, wall in totals.items()}


def _timing_share_checks(
    manifest: dict[str, Any],
    baseline_phases: dict[str, Any],
    tolerance: float,
    source: str,
) -> list[Check]:
    """Per-phase share-of-timing-loop comparisons (both sides must
    carry a timing-phase breakdown; phases below :data:`MIN_PHASE_SHARE`
    in the baseline are skipped as noise).

    Share ratios are bounded above by ``1 / base_share`` (a phase
    cannot exceed 100% of the loop), so the wide cross-machine wall
    tolerance would make these checks vacuous for dominant phases —
    callers pass the dedicated ``--share-tolerance`` here instead.
    """
    shares = manifest_timing_shares(manifest)
    if not shares:
        return []
    base_total = sum(float(value) for value in baseline_phases.values())
    if base_total <= 0:
        return []
    checks: list[Check] = []
    for name in sorted(baseline_phases):
        base_share = float(baseline_phases[name]) / base_total
        if base_share < MIN_PHASE_SHARE:
            continue
        measured = shares.get(name)
        if measured is None:
            continue
        checks.append(
            Check(
                f"timing_phase_share[{name}]",
                base_share,
                measured,
                tolerance,
                f"share of timing-loop wall vs {source}",
            )
        )
    return checks


def _require_manifest(document: dict[str, Any], source: str) -> None:
    schema = document.get("schema")
    if schema != MANIFEST_SCHEMA:
        raise ValueError(
            f"{source}: expected a run manifest with schema "
            f"{MANIFEST_SCHEMA!r}, got {schema!r}"
        )


def _compare_to_manifest(
    manifest: dict[str, Any],
    baseline: dict[str, Any],
    tolerance: float,
    source: str,
) -> list[Check]:
    checks: list[Check] = []
    rate = manifest_rate(manifest)
    base_rate = manifest_rate(baseline)
    if rate > 0 and base_rate > 0:
        checks.append(
            Check(
                "seconds_per_instruction",
                base_rate,
                rate,
                tolerance,
                f"median over executed points vs {source}",
            )
        )
    mine = {
        point["label"]: float(point["wall_seconds"])
        for point in _executed_points(manifest)
    }
    theirs = {
        point["label"]: float(point["wall_seconds"])
        for point in _executed_points(baseline)
    }
    shared = sorted(set(mine) & set(theirs))
    if shared:
        ratios = [mine[label] / theirs[label] for label in shared if theirs[label] > 0]
        if ratios:
            checks.append(
                Check(
                    "per_point_wall_ratio",
                    1.0,
                    _median(ratios),
                    tolerance,
                    f"median over {len(ratios)} shared labels vs {source}",
                )
            )
    wall = sum(mine.values())
    base_wall = sum(theirs.values())
    if wall > 0 and base_wall > 0:
        checks.append(
            Check(
                "executed_wall_seconds",
                base_wall,
                wall,
                tolerance,
                f"sum over executed points vs {source}",
            )
        )
    return checks


def _compare_to_bench(
    manifest: dict[str, Any],
    baseline: dict[str, Any],
    tolerance: float,
    source: str,
    share_tolerance: "float | None" = None,
) -> list[Check]:
    rate = manifest_rate(manifest)
    if rate <= 0:
        return []
    checks: list[Check] = []
    limit = float(baseline.get("limit") or 0)
    if limit > 0 and baseline.get("serial_seconds") and baseline.get("points"):
        base_rate = (
            float(baseline["serial_seconds"]) / float(baseline["points"]) / limit
        )
        checks.append(
            Check(
                "seconds_per_instruction",
                base_rate,
                rate,
                tolerance,
                f"vs {source} serial_seconds/points/limit",
            )
        )
    elif limit > 0 and baseline.get("optimized_seconds"):
        base_rate = float(baseline["optimized_seconds"]) / limit
        checks.append(
            Check(
                "seconds_per_instruction",
                base_rate,
                rate,
                tolerance,
                f"vs {source} optimized_seconds/limit",
            )
        )
    baseline_phases = baseline.get("timing_phases")
    if isinstance(baseline_phases, dict) and baseline_phases:
        checks.extend(
            _timing_share_checks(
                manifest,
                baseline_phases,
                tolerance if share_tolerance is None else share_tolerance,
                source,
            )
        )
    return checks


def compare(
    manifest: dict[str, Any],
    baseline: dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
    source: str = "baseline",
    share_tolerance: "float | None" = None,
) -> list[Check]:
    """Every comparable indicator between ``manifest`` and ``baseline``.

    ``share_tolerance`` applies only to the dimensionless
    ``timing_phase_share`` checks (machine-portable, hence gated much
    tighter than raw seconds); ``None`` falls back to ``tolerance``.

    Returns an empty list when the two documents share no comparable
    indicator (the caller decides whether that is fatal — the CLI
    treats a run with *zero* checks overall as exit code 2).
    """
    _require_manifest(manifest, "manifest")
    if baseline.get("schema") == MANIFEST_SCHEMA:
        return _compare_to_manifest(manifest, baseline, tolerance, source)
    return _compare_to_bench(
        manifest, baseline, tolerance, source, share_tolerance=share_tolerance
    )


def _load(path: str) -> dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict):
        raise ValueError(f"{path}: expected a JSON object")
    return document


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.baseline",
        description="Gate a sweep manifest against perf baselines.",
    )
    parser.add_argument(
        "manifest",
        help="run manifest JSON written by --report-out",
    )
    parser.add_argument(
        "--against",
        action="append",
        default=[],
        metavar="PATH",
        help="baseline file: another manifest, BENCH_sweep.json, or "
        "BENCH_simperf.json (repeatable)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        metavar="X",
        help="allowed multiplicative slowdown vs each baseline "
        f"(default {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--share-tolerance",
        type=float,
        default=None,
        metavar="X",
        help="allowed multiplicative growth of each timing-loop phase's "
        "share of the loop (dimensionless, machine-portable — use a "
        "much tighter value than --tolerance; default: same as "
        "--tolerance)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if not args.against:
        print("[baseline] no --against baseline given", file=sys.stderr)
        return 2
    if args.tolerance <= 0:
        print("[baseline] --tolerance must be positive", file=sys.stderr)
        return 2
    if args.share_tolerance is not None and args.share_tolerance <= 0:
        print("[baseline] --share-tolerance must be positive", file=sys.stderr)
        return 2
    try:
        manifest = _load(args.manifest)
        checks: list[Check] = []
        for path in args.against:
            found = compare(
                manifest,
                _load(path),
                tolerance=args.tolerance,
                source=path,
                share_tolerance=args.share_tolerance,
            )
            if not found:
                print(
                    f"[baseline] note: nothing comparable in {path}",
                    file=sys.stderr,
                )
            checks.extend(found)
    except (OSError, ValueError, json.JSONDecodeError, KeyError) as exc:
        print(f"[baseline] error: {exc}", file=sys.stderr)
        return 2
    if not checks:
        print(
            "[baseline] no comparable indicators found — refusing to "
            "report a vacuous pass",
            file=sys.stderr,
        )
        return 2
    for check in checks:
        print(check.describe())
    failed = [check for check in checks if not check.ok]
    if failed:
        print(
            f"[baseline] REGRESSION: {len(failed)} of {len(checks)} "
            f"checks exceeded tolerance",
            file=sys.stderr,
        )
        return 1
    print(f"[baseline] all {len(checks)} checks within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
