"""The tracer protocol and its in-memory implementation.

The simulator's instrumentation sites hold a tracer reference that is
``None`` by default; every emission is guarded by ``if tracer is not
None`` so a run without tracing executes exactly the code it executed
before the instrumentation layer existed (zero overhead when disabled).

A tracer is *passive* — :meth:`Tracer.emit` must not mutate simulator
state — but it may be *scheduled*: :meth:`Tracer.next_event` is folded
into the idle-skip scheduler's event accounting exactly like the fault
layer's recovery timers (see
:meth:`repro.core.system.DataScalarSystem._advance`), so a tracer that
wants to be woken at specific cycles (e.g. a periodic sampler) can
request them without forcing dense per-cycle ticking and without
changing a single reported number.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from .events import EventKind, TraceEvent


@runtime_checkable
class Tracer(Protocol):
    """What the simulator needs from a tracer: nothing else is called."""

    def emit(self, kind: EventKind, cycle: int, node: int, **args: object) -> None:
        """Record one event.  Must not mutate simulator state."""

    def next_event(self, now: int) -> "int | None":
        """Earliest future cycle this tracer wants simulated densely, or
        ``None``.  Folded into fast-forward's event accounting."""


class NullTracer:
    """A tracer that discards everything (useful as an explicit no-op)."""

    def emit(self, kind: EventKind, cycle: int, node: int, **args: object) -> None:
        pass

    def next_event(self, now: int) -> "int | None":
        return None


class EventTracer:
    """Records every emitted event in order, with per-kind counts.

    ``kinds`` restricts recording to a subset of :class:`EventKind`
    (counts still cover everything), which keeps long traced runs from
    holding e.g. every per-instruction commit event in memory.
    """

    def __init__(self, kinds: "set[EventKind] | None" = None):
        self.events: "list[TraceEvent]" = []
        self.counts: "dict[EventKind, int]" = {}
        self._kinds = kinds

    def emit(self, kind: EventKind, cycle: int, node: int, **args: object) -> None:
        counts = self.counts
        counts[kind] = counts.get(kind, 0) + 1
        if self._kinds is not None and kind not in self._kinds:
            return
        self.events.append(TraceEvent(kind, cycle, node, args))

    def next_event(self, now: int) -> "int | None":
        return None

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: EventKind) -> "list[TraceEvent]":
        """The recorded events of one kind, in emission order."""
        return [event for event in self.events if event.kind is kind]


class SamplingTracer(EventTracer):
    """An :class:`EventTracer` that additionally schedules periodic
    wake-ups every ``sample_every`` cycles through the fast-forward
    event accounting — the pattern a registry-backed sampler uses to
    observe a run without disabling idle-cycle skipping.
    """

    def __init__(self, sample_every: int, kinds: "set[EventKind] | None" = None):
        super().__init__(kinds=kinds)
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every

    def next_event(self, now: int) -> "int | None":
        return now - (now % self.sample_every) + self.sample_every
