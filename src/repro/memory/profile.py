"""Page-level access profiling.

The paper selects pages to replicate statically "by running the benchmark,
saving the number of accesses to each page, sorting the pages by number of
accesses, and choosing the most heavily accessed" (Section 3.2).  This
module implements that profiling pass over the functional interpreter's
memory-reference stream.
"""

from __future__ import annotations

from ..isa.interpreter import Interpreter
from ..isa.trace import IFETCH
from .address import Segment, segment_of


class PageProfile:
    """Access counts per page, with segment attribution."""

    def __init__(self, page_size: int):
        self.page_size = page_size
        self.counts: "dict[int, int]" = {}
        self.instruction_refs = 0
        self.data_refs = 0

    def record(self, addr: int, is_ifetch: bool = False) -> None:
        page = addr // self.page_size
        self.counts[page] = self.counts.get(page, 0) + 1
        if is_ifetch:
            self.instruction_refs += 1
        else:
            self.data_refs += 1

    def pages_by_count(self) -> "list[tuple[int, int]]":
        """Pages sorted hottest first: ``[(page, count), ...]``."""
        return sorted(self.counts.items(), key=lambda item: (-item[1], item[0]))

    def hottest(self, limit: int) -> "list[int]":
        """The ``limit`` most-accessed page numbers."""
        return [page for page, _ in self.pages_by_count()[:limit]]

    def segment_of_page(self, page: int) -> Segment:
        return segment_of(page * self.page_size)

    def pages_in_segment(self, segment: Segment) -> "list[int]":
        return [p for p in self.counts if self.segment_of_page(p) is segment]

    def total_refs(self) -> int:
        return self.instruction_refs + self.data_refs


def profile_program(program, page_size: int, limit=None,
                    include_ifetch: bool = True) -> PageProfile:
    """Run ``program`` functionally and collect a page-access profile."""
    profile = PageProfile(page_size)
    interp = Interpreter(program)
    for ref in interp.mem_refs(limit=limit, include_ifetch=include_ifetch):
        profile.record(ref.addr, ref.kind == IFETCH)
    return profile
