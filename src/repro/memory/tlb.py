"""TLB model and page-table-walk timing.

Paper Section 4.2: "We also implemented address translation ... We
assume a single-level page table, locked in the low region of physical
memory."  The replicated/communicated bit and the ownership bit live in
each PTE, so every node can translate locally; a TLB miss costs one
access to the locked page-table region of local memory.
"""

from __future__ import annotations

from ..errors import ConfigError


class TLBStats:
    """Hit/miss counters."""

    __slots__ = ("hits", "misses")

    def __init__(self):
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class TLB:
    """A fully-associative LRU translation buffer.

    ``access(now, addr)`` returns the cycle translation completes:
    ``now`` on a hit (translation overlaps the cache probe), or after a
    single page-table access to local memory on a miss — the paper's
    one-level locked table needs exactly one reference.
    """

    def __init__(self, entries: int = 64, walker=None,
                 walk_latency: int = 8, name: str = "tlb"):
        if entries < 1:
            raise ConfigError("TLB needs at least one entry")
        if walk_latency < 0:
            raise ConfigError("walk_latency must be >= 0")
        self.entries = entries
        self.walker = walker  # optional BankedMemory holding the table
        self.walk_latency = walk_latency
        self.name = name
        self._pages: "dict[int, int]" = {}  # page -> LRU stamp
        self._clock = 0
        self.stats = TLBStats()

    def access(self, now: int, addr: int, page_size: int) -> int:
        """Translate ``addr``; returns the translation-ready cycle."""
        page = addr // page_size
        self._clock += 1
        if page in self._pages:
            self._pages[page] = self._clock
            self.stats.hits += 1
            return now
        self.stats.misses += 1
        if len(self._pages) >= self.entries:
            victim = min(self._pages, key=self._pages.get)
            del self._pages[victim]
        self._pages[page] = self._clock
        if self.walker is not None:
            # One reference to the locked page-table region.
            return self.walker.access(now, page * 8)
        return now + self.walk_latency

    def flush(self) -> None:
        self._pages.clear()

    def resident_pages(self) -> "frozenset[int]":
        return frozenset(self._pages)
