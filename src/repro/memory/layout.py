"""Address-space layout: replication and round-robin distribution.

Implements the paper's Section 3.2 methodology: the address space splits
into *replicated* pages (mapped at every node) and *communicated* pages,
which are distributed round-robin among the nodes in fixed-size blocks of
contiguous pages.  Larger blocks lengthen datathreads; the paper caps the
block below a fraction of both the text and the largest data segment so
no segment lands entirely on one node.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError
from .address import Segment
from .page_table import PageTable


@dataclass
class LayoutSpec:
    """Inputs to the layout builder."""

    num_nodes: int
    page_size: int
    distribution_block_pages: int = 4
    replicate_text: bool = True
    #: Explicit page numbers to replicate (profile-selected hot pages).
    replicated_pages: "frozenset[int]" = field(default_factory=frozenset)
    #: Bytes of stack to map (stack growth is bounded by this estimate).
    stack_bytes: int = 64 * 1024

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ConfigError("num_nodes must be >= 1")
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise ConfigError("page_size must be a positive power of two")
        if self.distribution_block_pages < 1:
            raise ConfigError("distribution_block_pages must be >= 1")
        if self.stack_bytes <= 0:
            raise ConfigError("stack_bytes must be positive")


@dataclass
class LayoutSummary:
    """Replication counts per segment (the middle columns of Table 2)."""

    replicated_by_segment: "dict[Segment, int]"
    communicated_pages: int
    total_pages: int

    @property
    def replicated_total(self) -> int:
        return sum(self.replicated_by_segment.values())


def _segment_pages(program, spec: LayoutSpec):
    """Yield (segment, page_number) for every page the program can touch."""
    extents = program.segment_extents(stack_bytes=spec.stack_bytes)
    for segment in (Segment.TEXT, Segment.GLOBAL, Segment.HEAP, Segment.STACK):
        low, high = extents[segment]
        first = low // spec.page_size
        last = (high - 1) // spec.page_size
        for page in range(first, last + 1):
            yield segment, page


def build_page_table(program, spec: LayoutSpec) -> "tuple[PageTable, LayoutSummary]":
    """Construct the shared page table for ``program`` under ``spec``.

    Text pages are replicated when ``spec.replicate_text`` (the paper's
    simulated implementation replicates all text, obviating an instruction
    correspondence protocol).  Pages named in ``spec.replicated_pages`` are
    replicated.  Every other page is communicated: consecutive pages are
    grouped into blocks of ``distribution_block_pages`` and blocks are dealt
    round-robin to nodes 0..N-1 in address order.
    """
    table = PageTable(spec.page_size, spec.num_nodes)
    replicated_by_segment = {segment: 0 for segment in Segment}
    communicated = []
    for segment, page in _segment_pages(program, spec):
        replicate = (segment is Segment.TEXT and spec.replicate_text) or (
            page in spec.replicated_pages
        )
        if replicate:
            table.map_page(page, replicated=True)
            replicated_by_segment[segment] += 1
        else:
            communicated.append(page)
    for position, page in enumerate(communicated):
        block = position // spec.distribution_block_pages
        table.map_page(page, replicated=False,
                       owner=block % spec.num_nodes)
    summary = LayoutSummary(
        replicated_by_segment=replicated_by_segment,
        communicated_pages=len(communicated),
        total_pages=len(table),
    )
    return table, summary


def choose_block_size(program, page_size: int, num_nodes: int,
                      stack_bytes: int = 64 * 1024) -> int:
    """Largest distribution block (in pages) that still splits every segment.

    Mirrors the paper's rule: maximize the block (to lengthen datathreads)
    while keeping it smaller than ``1/num_nodes`` of both the text segment
    and the largest data segment, so neither is wholly owned by one node.
    """
    largest_data = max(program.global_bytes, program.heap_bytes, stack_bytes)
    cap_bytes = min(program.text_bytes, largest_data) // num_nodes
    cap_pages = max(1, cap_bytes // page_size)
    block = 1
    while block * 2 <= cap_pages:
        block *= 2
    return block


def traditional_page_table(program, denom: int, page_size: int,
                           distribution_block_pages: int = 4,
                           replicate_text: bool = True,
                           replicated_pages=frozenset(),
                           stack_bytes: int = 64 * 1024) -> PageTable:
    """Page table for the traditional system of Figure 6(a).

    The traditional machine has ``1/denom`` of memory on-chip.  We reuse
    the round-robin distribution over ``denom`` pseudo-owners and declare
    owner 0 the on-chip region — giving it exactly the memory one chip of
    a ``denom``-node DataScalar system holds, which is the paper's fair
    comparison.  Pages the DataScalar system would replicate are mapped
    on-chip too (they would live in every node's memory).
    """
    spec = LayoutSpec(
        num_nodes=denom,
        page_size=page_size,
        distribution_block_pages=distribution_block_pages,
        replicate_text=replicate_text,
        replicated_pages=frozenset(replicated_pages),
        stack_bytes=stack_bytes,
    )
    table, _ = build_page_table(program, spec)
    return table
