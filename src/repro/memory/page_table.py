"""The shared page table: replicated/communicated state and ownership.

The paper keeps one bit per page-table entry for replicated-vs-communicated
and one ownership bit set at exactly one processor (Section 4.2).  We model
the global view: each mapped page is either replicated everywhere or
communicated with a single integer owner.
"""

from __future__ import annotations

from ..errors import MemoryError_


class PTE:
    """One page-table entry."""

    __slots__ = ("page", "replicated", "owner")

    def __init__(self, page: int, replicated: bool, owner):
        if replicated and owner is not None:
            raise MemoryError_("replicated pages have no owner")
        if not replicated and owner is None:
            raise MemoryError_("communicated pages need an owner")
        self.page = page
        self.replicated = replicated
        self.owner = owner

    def __repr__(self) -> str:
        kind = "repl" if self.replicated else f"node{self.owner}"
        return f"<PTE page={self.page} {kind}>"


class PageTable:
    """Maps page numbers to replication state and ownership.

    ``num_owners`` is the number of processors pages may be owned by.
    Accesses to unmapped pages (e.g. deep stack growth past the layout's
    estimate) fall back to a deterministic round-robin owner and are
    counted in :attr:`unmapped_accesses` so experiments can verify the
    layout covered the working set.
    """

    def __init__(self, page_size: int, num_owners: int):
        if page_size <= 0 or page_size & (page_size - 1):
            raise MemoryError_("page_size must be a positive power of two")
        if num_owners < 1:
            raise MemoryError_("num_owners must be >= 1")
        self.page_size = page_size
        self.num_owners = num_owners
        self._entries: "dict[int, PTE]" = {}
        self.unmapped_accesses = 0

    def page_of(self, addr: int) -> int:
        return addr // self.page_size

    def map_page(self, page: int, replicated: bool, owner=None) -> None:
        """Install an entry; remapping an existing page is an error."""
        if page in self._entries:
            raise MemoryError_(f"page {page} already mapped")
        if owner is not None and not 0 <= owner < self.num_owners:
            raise MemoryError_(f"owner {owner} out of range")
        self._entries[page] = PTE(page, replicated, owner)

    def entry_for(self, addr: int) -> PTE:
        """Entry covering ``addr``, synthesizing a fallback if unmapped."""
        page = self.page_of(addr)
        entry = self._entries.get(page)
        if entry is None:
            self.unmapped_accesses += 1
            entry = PTE(page, False, page % self.num_owners)
            self._entries[page] = entry
        return entry

    def is_replicated(self, addr: int) -> bool:
        """True when the page holding ``addr`` is replicated at every node."""
        return self.entry_for(addr).replicated

    def owner_of(self, addr: int):
        """Owning node of a communicated address (``None`` if replicated)."""
        return self.entry_for(addr).owner

    def is_local(self, addr: int, node: int) -> bool:
        """True when ``node`` can satisfy an access to ``addr`` locally."""
        entry = self.entry_for(addr)
        return entry.replicated or entry.owner == node

    def mapped_pages(self) -> "list[PTE]":
        return sorted(self._entries.values(), key=lambda e: e.page)

    def counts(self) -> "dict":
        """Summary: replicated pages, plus communicated pages per owner."""
        replicated = sum(1 for e in self._entries.values() if e.replicated)
        per_owner = [0] * self.num_owners
        for entry in self._entries.values():
            if not entry.replicated:
                per_owner[entry.owner] += 1
        return {"replicated": replicated, "per_owner": per_owner}

    def __len__(self) -> int:
        return len(self._entries)
