"""Main-memory bank timing.

The paper assumes fast on-chip DRAM banks (8 ns, sub-banked with
hierarchical word/bit lines) behind a wide on-chip bus, and slower
commodity DRAM off-chip.  This model tracks per-bank occupancy: an
access to a busy bank queues behind it.
"""

from __future__ import annotations

from ..errors import MemoryError_


class BankedMemory:
    """A set of independently-busy memory banks.

    ``access(now, addr)`` returns the cycle at which the requested line is
    available, serializing accesses that collide on a bank.
    """

    def __init__(self, latency: int, num_banks: int = 8,
                 interleave_bytes: int = 32, name: str = "mem"):
        if latency < 1:
            raise MemoryError_("memory latency must be >= 1 cycle")
        if num_banks < 1:
            raise MemoryError_("num_banks must be >= 1")
        if interleave_bytes < 1:
            raise MemoryError_("interleave_bytes must be >= 1")
        self.latency = latency
        self.num_banks = num_banks
        self.interleave_bytes = interleave_bytes
        self.name = name
        self._bank_free = [0] * num_banks
        self.accesses = 0
        self.total_wait = 0

    def bank_of(self, addr: int) -> int:
        """Bank servicing ``addr`` (line-interleaved)."""
        return (addr // self.interleave_bytes) % self.num_banks

    def access(self, now: int, addr: int) -> int:
        """Issue an access at cycle ``now``; returns the completion cycle."""
        bank = self.bank_of(addr)
        start = max(now, self._bank_free[bank])
        done = start + self.latency
        self._bank_free[bank] = done
        self.accesses += 1
        self.total_wait += start - now
        return done

    def peek(self, now: int, addr: int) -> int:
        """Completion cycle an access would see, without reserving the bank."""
        bank = self.bank_of(addr)
        return max(now, self._bank_free[bank]) + self.latency

    def reset(self) -> None:
        self._bank_free = [0] * self.num_banks
        self.accesses = 0
        self.total_wait = 0
