"""Set-associative cache model with LRU replacement.

The model serves two distinct users:

* trace-level studies (paper Sections 3.1/3.2) call :meth:`Cache.access`,
  which applies the configured write policy and returns what moved on and
  off chip; and
* the timing models call the split primitives — :meth:`Cache.lookup`
  (non-mutating probe at issue time) and :meth:`Cache.commit_access`
  (the mutating, canonical access applied in program order at commit) —
  because DataScalar's cache-correspondence protocol requires that cache
  state change only at commit (paper Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MemoryError_
from ..params import CacheConfig


@dataclass
class AccessResult:
    """Outcome of one cache access.

    ``filled`` is True when the access allocated a line; ``writeback``
    carries the line-aligned address of an evicted dirty line (write-back
    caches only), or ``None``.
    """

    hit: bool
    filled: bool
    writeback: "int | None"
    evicted: "int | None"


# Shared immutable results for the allocation-heavy common outcomes
# (plain hit, fill without eviction, write-around miss).  Consumers
# only ever read the fields, so identity reuse is safe.
_HIT = AccessResult(hit=True, filled=False, writeback=None, evicted=None)
_FILL = AccessResult(hit=False, filled=True, writeback=None, evicted=None)
_MISS = AccessResult(hit=False, filled=False, writeback=None, evicted=None)


class CacheStats:
    """Running hit/miss/writeback counters."""

    __slots__ = ("read_hits", "read_misses", "write_hits", "write_misses",
                 "writebacks", "writethroughs")

    def __init__(self):
        self.read_hits = 0
        self.read_misses = 0
        self.write_hits = 0
        self.write_misses = 0
        self.writebacks = 0
        self.writethroughs = 0

    @property
    def accesses(self) -> int:
        return (self.read_hits + self.read_misses
                + self.write_hits + self.write_misses)

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0


class Cache:
    """One cache level.  Lines are tracked by line-aligned address."""

    def __init__(self, config: CacheConfig, name: str = "cache"):
        self.config = config
        self.name = name
        self._line_shift = config.line_size.bit_length() - 1
        self._num_sets = config.num_sets
        self._set_mask = self._num_sets - 1
        # Each set is a list of [line_addr, dirty] pairs in LRU -> MRU order.
        self._sets = [[] for _ in range(self._num_sets)]
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Address helpers.
    # ------------------------------------------------------------------
    def line_addr(self, addr: int) -> int:
        """Line-aligned address containing ``addr``."""
        return (addr >> self._line_shift) << self._line_shift

    def _set_index(self, line: int) -> int:
        return (line >> self._line_shift) & self._set_mask

    # ------------------------------------------------------------------
    # Non-mutating primitives (issue-time probes).
    # ------------------------------------------------------------------
    def lookup(self, addr: int) -> bool:
        """True when the line containing ``addr`` is resident.  No state
        (not even LRU order) changes — safe for issue-time probes."""
        shift = self._line_shift
        line = (addr >> shift) << shift
        for entry in self._sets[(addr >> shift) & self._set_mask]:
            if entry[0] == line:
                return True
        return False

    def resident_lines(self) -> "frozenset[int]":
        """Snapshot of every resident line address (correspondence checks)."""
        return frozenset(
            entry[0] for ways in self._sets for entry in ways
        )

    def dirty_lines(self) -> "frozenset[int]":
        """Snapshot of resident dirty line addresses."""
        return frozenset(
            entry[0] for ways in self._sets for entry in ways if entry[1]
        )

    # ------------------------------------------------------------------
    # Mutating primitives (commit-time state updates).
    # ------------------------------------------------------------------
    def touch(self, addr: int) -> None:
        """Move the line containing ``addr`` to MRU; it must be resident."""
        line = self.line_addr(addr)
        ways = self._sets[self._set_index(line)]
        for position, entry in enumerate(ways):
            if entry[0] == line:
                ways.append(ways.pop(position))
                return
        raise MemoryError_(f"{self.name}: touch of non-resident line {line:#x}")

    def mark_dirty(self, addr: int) -> None:
        """Set the dirty bit on a resident line."""
        line = self.line_addr(addr)
        ways = self._sets[self._set_index(line)]
        for entry in ways:
            if entry[0] == line:
                entry[1] = True
                return
        raise MemoryError_(f"{self.name}: dirty-mark of non-resident {line:#x}")

    def insert(self, addr: int, dirty: bool = False):
        """Allocate the line containing ``addr`` at MRU.

        Returns ``(evicted_line, was_dirty)`` when a victim was replaced,
        else ``None``.  Inserting a resident line refreshes LRU order and
        ORs in the dirty bit.
        """
        line = self.line_addr(addr)
        ways = self._sets[self._set_index(line)]
        for position, entry in enumerate(ways):
            if entry[0] == line:
                entry[1] = entry[1] or dirty
                ways.append(ways.pop(position))
                return None
        victim = None
        if len(ways) >= self.config.assoc:
            evicted_line, was_dirty = ways.pop(0)
            victim = (evicted_line, was_dirty)
        ways.append([line, dirty])
        return victim

    def invalidate(self, addr: int) -> bool:
        """Drop the line containing ``addr``; returns True if it was dirty."""
        line = self.line_addr(addr)
        ways = self._sets[self._set_index(line)]
        for position, entry in enumerate(ways):
            if entry[0] == line:
                ways.pop(position)
                return entry[1]
        return False

    def flush(self) -> "list[int]":
        """Empty the cache; returns line addresses that were dirty."""
        dirty = [e[0] for ways in self._sets for e in ways if e[1]]
        self._sets = [[] for _ in range(self._num_sets)]
        return dirty

    # ------------------------------------------------------------------
    # Combined canonical access (commit order).
    # ------------------------------------------------------------------
    def commit_access(self, addr: int, is_write: bool) -> AccessResult:
        """Apply one access in commit order under the configured policies.

        This is *the* canonical access the correspondence protocol keys
        off: identical call sequences leave identical cache states.

        One scan of the set serves residency, LRU refresh, and
        dirty-marking together (the split ``lookup``/``touch``/
        ``mark_dirty``/``insert`` primitives each rescan; this is the
        commit hot path).
        """
        stats = self.stats
        config = self.config
        shift = self._line_shift
        line = (addr >> shift) << shift
        ways = self._sets[(addr >> shift) & self._set_mask]
        entry = None
        for position, candidate in enumerate(ways):
            if candidate[0] == line:
                entry = candidate
                break
        writeback = None
        evicted = None
        filled = False
        if entry is not None:
            ways.append(ways.pop(position))  # refresh LRU -> MRU
            if is_write:
                stats.write_hits += 1
                if config.write_policy == "writeback":
                    entry[1] = True
                else:
                    stats.writethroughs += 1
            else:
                stats.read_hits += 1
            return _HIT
        if is_write:
            stats.write_misses += 1
            if config.write_allocate:
                dirty = config.write_policy == "writeback"
                victim = None
                if len(ways) >= config.assoc:
                    victim = ways.pop(0)
                ways.append([line, dirty])
                filled = True
                if victim is not None:
                    evicted = victim[0]
                    if victim[1]:
                        writeback = victim[0]
                        stats.writebacks += 1
                if config.write_policy == "writethrough":
                    stats.writethroughs += 1
            else:
                # Write-noallocate miss: the write goes around the cache.
                stats.writethroughs += 1
        else:
            stats.read_misses += 1
            victim = None
            if len(ways) >= config.assoc:
                victim = ways.pop(0)
            ways.append([line, False])
            filled = True
            if victim is not None:
                evicted = victim[0]
                if victim[1]:
                    writeback = victim[0]
                    stats.writebacks += 1
        if evicted is None:
            return _FILL if filled else _MISS
        return AccessResult(hit=False, filled=filled, writeback=writeback,
                            evicted=evicted)

    # Convenience alias for trace-level studies.
    access = commit_access

    def __repr__(self) -> str:
        cfg = self.config
        return (f"<Cache {self.name}: {cfg.size_bytes}B {cfg.assoc}-way "
                f"{cfg.line_size}B lines>")
