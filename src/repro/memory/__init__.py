"""Memory-system substrates: caches, MSHRs, main memory, paging, layout."""

from .address import (
    GLOBAL_BASE,
    HEAP_BASE,
    INSTRUCTION_BYTES,
    STACK_BASE,
    STACK_TOP,
    TEXT_BASE,
    Segment,
    line_base,
    page_base,
    page_number,
    segment_of,
)
from .cache import AccessResult, Cache, CacheStats
from .layout import (
    LayoutSpec,
    LayoutSummary,
    build_page_table,
    choose_block_size,
    traditional_page_table,
)
from .mainmem import BankedMemory
from .mshr import MSHREntry, MSHRFile
from .page_table import PTE, PageTable
from .profile import PageProfile, profile_program

__all__ = [
    "GLOBAL_BASE",
    "HEAP_BASE",
    "INSTRUCTION_BYTES",
    "STACK_BASE",
    "STACK_TOP",
    "TEXT_BASE",
    "Segment",
    "line_base",
    "page_base",
    "page_number",
    "segment_of",
    "AccessResult",
    "Cache",
    "CacheStats",
    "LayoutSpec",
    "LayoutSummary",
    "build_page_table",
    "choose_block_size",
    "traditional_page_table",
    "BankedMemory",
    "MSHREntry",
    "MSHRFile",
    "PTE",
    "PageTable",
    "PageProfile",
    "profile_program",
]
