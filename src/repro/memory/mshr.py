"""Miss Status Holding Registers.

Track outstanding cache misses by line so secondary misses to an
in-flight line merge instead of generating duplicate memory traffic —
the paper's caches are "fully nonblocking and can support an arbitrarily
high number of outstanding requests", so the default capacity is
unbounded, but a finite capacity can be configured for studies.
"""

from __future__ import annotations

from ..errors import MemoryError_


class MSHREntry:
    """One outstanding miss: the line plus every waiting consumer."""

    __slots__ = ("line", "targets", "issued_at")

    def __init__(self, line: int, issued_at: int):
        self.line = line
        self.targets = []
        self.issued_at = issued_at

    def add_target(self, target) -> None:
        self.targets.append(target)


class MSHRFile:
    """The set of outstanding misses for one cache."""

    def __init__(self, capacity=None):
        if capacity is not None and capacity < 1:
            raise MemoryError_("MSHR capacity must be positive or None")
        self.capacity = capacity
        self._entries: "dict[int, MSHREntry]" = {}
        self.allocations = 0
        self.merges = 0

    def lookup(self, line: int):
        """Return the outstanding entry for ``line``, or ``None``."""
        return self._entries.get(line)

    def is_full(self) -> bool:
        return (self.capacity is not None
                and len(self._entries) >= self.capacity)

    def allocate(self, line: int, issued_at: int, target=None) -> MSHREntry:
        """Record a new outstanding miss for ``line``."""
        if line in self._entries:
            raise MemoryError_(f"MSHR already tracking line {line:#x}")
        if self.is_full():
            raise MemoryError_("MSHR file full")
        entry = MSHREntry(line, issued_at)
        if target is not None:
            entry.add_target(target)
        self._entries[line] = entry
        self.allocations += 1
        return entry

    def merge(self, line: int, target) -> MSHREntry:
        """Attach another consumer to an in-flight miss."""
        entry = self._entries.get(line)
        if entry is None:
            raise MemoryError_(f"no outstanding miss for line {line:#x}")
        entry.add_target(target)
        self.merges += 1
        return entry

    def retire(self, line: int) -> MSHREntry:
        """Complete a miss, returning its entry (with waiting targets)."""
        entry = self._entries.pop(line, None)
        if entry is None:
            raise MemoryError_(f"retiring unknown miss line {line:#x}")
        return entry

    def outstanding(self) -> int:
        return len(self._entries)

    def lines(self) -> "frozenset[int]":
        return frozenset(self._entries)
