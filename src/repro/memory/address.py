"""Address-space constants and helpers shared by the whole simulator.

The simulated machine uses a flat 31-bit physical address space divided
into the four segments the paper's Table 2 reports replication for:
program text, global data, heap, and stack.
"""

from __future__ import annotations

from enum import Enum


class Segment(Enum):
    """The four address-space segments tracked by the paper."""

    TEXT = "text"
    GLOBAL = "global"
    HEAP = "heap"
    STACK = "stack"


#: Base address of the program text segment.
TEXT_BASE = 0x0040_0000
#: Base address of the global (static data) segment.
GLOBAL_BASE = 0x1000_0000
#: Base address of the heap segment.
HEAP_BASE = 0x4000_0000
#: Stack top; the stack grows toward lower addresses.
STACK_TOP = 0x7FFF_F000
#: Lowest address considered part of the stack segment.
STACK_BASE = 0x7000_0000

#: Bytes occupied by one instruction in the text segment.
INSTRUCTION_BYTES = 4

_SEGMENT_BOUNDS = (
    (Segment.TEXT, TEXT_BASE, GLOBAL_BASE),
    (Segment.GLOBAL, GLOBAL_BASE, HEAP_BASE),
    (Segment.HEAP, HEAP_BASE, STACK_BASE),
    (Segment.STACK, STACK_BASE, STACK_TOP),
)


def segment_of(address: int) -> Segment:
    """Classify ``address`` into one of the four segments."""
    for segment, low, high in _SEGMENT_BOUNDS:
        if low <= address < high:
            return segment
    raise ValueError(f"address {address:#x} falls outside every segment")


def segment_bounds(segment: Segment) -> "tuple[int, int]":
    """Return the half-open ``[low, high)`` address range of ``segment``."""
    for candidate, low, high in _SEGMENT_BOUNDS:
        if candidate is segment:
            return low, high
    raise ValueError(f"unknown segment {segment!r}")


def page_number(address: int, page_size: int) -> int:
    """Return the page number containing ``address``."""
    return address // page_size


def page_base(address: int, page_size: int) -> int:
    """Return the base address of the page containing ``address``."""
    return address & ~(page_size - 1)


def line_base(address: int, line_size: int) -> int:
    """Return the base address of the cache line containing ``address``."""
    return address & ~(line_size - 1)


def is_aligned(address: int, size: int) -> bool:
    """True when ``address`` is naturally aligned for an access of ``size``."""
    return address % size == 0
