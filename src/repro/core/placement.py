"""Datathread-aware page placement.

Paper Section 3.2: "programs would benefit from special support to
increase datathread length or raise the number of datathreads executing
concurrently."  Round-robin distribution ignores reference order; this
optimizer assigns communicated pages to owners so that pages referenced
*consecutively* tend to share an owner, lengthening datathreads.

Algorithm: build a page-affinity graph from the (cache-filtered)
reference stream — edge weight = how often one page follows another —
then greedily place pages, hottest transition first, into balanced owner
bins, preferring the bin with the highest affinity to the page.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..memory.page_table import PageTable


@dataclass
class PlacementPlan:
    """The optimizer's output."""

    owner_of_page: "dict[int, int]"
    num_nodes: int
    #: Total affinity weight kept inside one owner (higher is better).
    internal_weight: int
    #: Total affinity weight crossing owners.
    cut_weight: int

    def build_page_table(self, page_size: int,
                         replicated_pages=frozenset()) -> PageTable:
        """Materialize the plan as a page table."""
        table = PageTable(page_size, self.num_nodes)
        for page in replicated_pages:
            table.map_page(page, replicated=True)
        for page, owner in sorted(self.owner_of_page.items()):
            if page in replicated_pages:
                continue
            table.map_page(page, replicated=False, owner=owner)
        return table


class AffinityGraph:
    """Page-transition counts from a reference stream."""

    def __init__(self, page_size: int):
        if page_size <= 0 or page_size & (page_size - 1):
            raise ConfigError("page_size must be a positive power of two")
        self.page_size = page_size
        self.edges: "dict[tuple[int, int], int]" = {}
        self.heat: "dict[int, int]" = {}
        self._previous = None

    def observe(self, addr: int) -> None:
        page = addr // self.page_size
        self.heat[page] = self.heat.get(page, 0) + 1
        previous = self._previous
        if previous is not None and previous != page:
            key = (previous, page) if previous < page else (page, previous)
            self.edges[key] = self.edges.get(key, 0) + 1
        self._previous = page

    def observe_stream(self, addresses) -> None:
        for addr in addresses:
            self.observe(addr)


def plan_placement(graph: AffinityGraph, num_nodes: int,
                   exclude=frozenset()) -> PlacementPlan:
    """Greedy balanced placement over the affinity graph.

    ``exclude`` pages (e.g. replicated ones) are not placed.  Bins are
    balanced to within one page of ``ceil(P / num_nodes)``.
    """
    if num_nodes < 1:
        raise ConfigError("num_nodes must be >= 1")
    pages = [p for p in graph.heat if p not in exclude]
    if not pages:
        return PlacementPlan({}, num_nodes, 0, 0)
    capacity = -(-len(pages) // num_nodes)  # ceil
    owner_of: "dict[int, int]" = {}
    load = [0] * num_nodes
    # Affinity of each unplaced page toward each bin.
    affinity: "dict[int, list]" = {p: [0] * num_nodes for p in pages}
    adjacency: "dict[int, list]" = {p: [] for p in pages}
    for (a, b), weight in graph.edges.items():
        if a in adjacency and b in adjacency:
            adjacency[a].append((b, weight))
            adjacency[b].append((a, weight))

    def place(page: int, owner: int) -> None:
        owner_of[page] = owner
        load[owner] += 1
        for neighbor, weight in adjacency[page]:
            if neighbor not in owner_of:
                affinity[neighbor][owner] += weight

    # Hottest page seeds the first bin; then repeatedly place the
    # unplaced page with the strongest pull toward any non-full bin.
    unplaced = sorted(pages, key=lambda p: -graph.heat[p])
    place(unplaced.pop(0), 0)
    while unplaced:
        best = None
        for position, page in enumerate(unplaced):
            for owner in range(num_nodes):
                if load[owner] >= capacity:
                    continue
                score = (affinity[page][owner], graph.heat[page])
                if best is None or score > best[0]:
                    best = (score, position, page, owner)
        _, position, page, owner = best
        unplaced.pop(position)
        place(page, owner)

    internal = 0
    cut = 0
    for (a, b), weight in graph.edges.items():
        if a in owner_of and b in owner_of:
            if owner_of[a] == owner_of[b]:
                internal += weight
            else:
                cut += weight
    return PlacementPlan(owner_of, num_nodes, internal, cut)


def round_robin_placement(graph: AffinityGraph, num_nodes: int,
                          block_pages: int = 1,
                          exclude=frozenset()) -> PlacementPlan:
    """The baseline layout, expressed as a plan for fair comparison."""
    pages = sorted(p for p in graph.heat if p not in exclude)
    owner_of = {}
    for position, page in enumerate(pages):
        owner_of[page] = (position // block_pages) % num_nodes
    internal = 0
    cut = 0
    for (a, b), weight in graph.edges.items():
        if a in owner_of and b in owner_of:
            if owner_of[a] == owner_of[b]:
                internal += weight
            else:
                cut += weight
    return PlacementPlan(owner_of, num_nodes, internal, cut)
