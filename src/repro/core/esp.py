"""Synchronous ESP: the Massive Memory Machine execution model.

Section 2 / Figure 1 of the paper describe the MMM's lock-step ESP: all
processors run the same program synchronously; the *lead* processor owns
the operands being accessed and broadcasts each one; when execution
reaches an operand the leader does not own, a *lead change* stalls every
processor until the new leader catches up and its operand arrives.

This model is the conceptual baseline DataScalar generalizes (asynchronous
ESP = ESP + out-of-order cores + tags on broadcasts), and reproduces the
Figure 1 schedule exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError


@dataclass
class ESPResult:
    """Outcome of a synchronous-ESP schedule."""

    #: Cycle at which every processor has received each word.
    receive_times: "list[int]"
    #: Number of lead changes incurred.
    lead_changes: int
    #: Length (in words) of each single-leader run — the MMM's one-at-a-
    #: time datathreads.
    datathreads: "list[int]" = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        return self.receive_times[-1] if self.receive_times else 0

    @property
    def mean_datathread_length(self) -> float:
        if not self.datathreads:
            return 0.0
        return sum(self.datathreads) / len(self.datathreads)


class MassiveMemoryMachine:
    """Lock-step SISD machine with a global broadcast bus.

    ``broadcast_latency`` is the bus transit per word while the leader
    stays the same (consecutive owned words pipeline at this rate);
    ``lead_change_penalty`` is the stall for a new leader to catch up and
    deliver its first word (Figure 1 shows 3 cycles: w4 at cycle 4, w5 at
    cycle 7).  Tags are unnecessary — synchronous processors infer the
    address from broadcast order (Section 3.1).
    """

    def __init__(self, num_processors: int, broadcast_latency: int = 1,
                 lead_change_penalty: int = 3):
        if num_processors < 1:
            raise ConfigError("need at least one processor")
        if broadcast_latency < 1:
            raise ConfigError("broadcast_latency must be >= 1")
        if lead_change_penalty < broadcast_latency:
            raise ConfigError(
                "a lead change cannot be cheaper than a pipelined broadcast"
            )
        self.num_processors = num_processors
        self.broadcast_latency = broadcast_latency
        self.lead_change_penalty = lead_change_penalty

    def schedule(self, owners) -> ESPResult:
        """Schedule a reference string.

        ``owners[i]`` is the processor owning word ``i``.  Returns the
        cycle each word has been received by all processors.
        """
        receive_times = []
        datathreads = []
        lead_changes = 0
        leader = None
        run_length = 0
        time = 0
        for owner in owners:
            if not 0 <= owner < self.num_processors:
                raise ConfigError(f"owner {owner} out of range")
            if owner == leader:
                time += self.broadcast_latency
                run_length += 1
            else:
                if leader is not None:
                    lead_changes += 1
                    datathreads.append(run_length)
                    time += self.lead_change_penalty
                else:
                    time += self.broadcast_latency
                leader = owner
                run_length = 1
            receive_times.append(time)
        if run_length:
            datathreads.append(run_length)
        return ESPResult(receive_times=receive_times,
                         lead_changes=lead_changes,
                         datathreads=datathreads)

    def figure1_example(self) -> ESPResult:
        """The paper's Figure 1 reference string: ten words, w5–w7 owned
        by machine 1 (zero-indexed), the rest by machine 0."""
        owners = [0, 0, 0, 0, 1, 1, 1, 0, 0]
        return self.schedule(owners)
