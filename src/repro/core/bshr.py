"""Broadcast Status Holding Registers.

Paper Section 4.2 / Figure 5: "When a broadcast arrives from the network,
the BSHR performs an associative search on that address.  If a match
occurs, the earliest entry matching that address in the queue is freed
and the data are forwarded to the processor.  If no match occurs, the
BSHR allocates the next entry in the queue and buffers the data.  In this
case, when the processor issues the request for the data, it finds them
waiting in the BSHR, and effectively sees an on-chip hit."

The processor-to-BSHR datapath squashes entries — either entries
allocated by false misses, or arrivals made superfluous by false hits
(the commit-time reconciliation schedules a discard for the broadcast
the owner sends for a canonically-missing line this node false-hit on).
"""

from __future__ import annotations

from collections import deque

from ..errors import BroadcastLostError, ProtocolError
from ..obs.events import EventKind
from ..params import BSHRConfig

_INF = float("inf")


class BSHRStats:
    """Counters behind the Table 3 columns."""

    __slots__ = ("waits", "found_in_bshr", "squashes", "arrivals",
                 "high_water", "overflows")

    def __init__(self):
        self.waits = 0
        self.found_in_bshr = 0
        self.squashes = 0
        self.arrivals = 0
        self.high_water = 0
        self.overflows = 0

    @property
    def accesses(self) -> int:
        return self.waits + self.found_in_bshr


class BSHRFile:
    """Per-node broadcast receive structures.

    Tracks, per line address: loads waiting for a broadcast, buffered
    arrivals not yet consumed, and discards scheduled by the
    correspondence protocol.  Entry count is monitored against the
    configured capacity (overflows are counted, not stalled — the paper's
    receive queues are sized to make overflow negligible).
    """

    def __init__(self, config: BSHRConfig, name: str = "bshr"):
        self.config = config
        self.name = name
        self._waiting: "dict[int, deque]" = {}
        self._arrived: "dict[int, deque]" = {}
        self._discards: "dict[int, int]" = {}
        self.stats = BSHRStats()
        #: Fault-mode wait deadline (cycles); ``None`` = unarmed, the
        #: perfect-transport default with zero per-access overhead.
        self._timeout = None
        self._deadlines: "dict[object, int]" = {}  # waiting handle -> cycle
        self._deadline_floor = _INF  # lower bound on the earliest deadline
        self._tracer = None  # observability hook (None = untraced)
        self._trace_node = 0

    def attach_tracer(self, tracer, node_id: int) -> None:
        """Emit this BSHR's events to ``tracer`` as node ``node_id``."""
        self._tracer = tracer
        self._trace_node = node_id

    # ------------------------------------------------------------------
    # Processor side.
    # ------------------------------------------------------------------
    def load(self, now: int, line: int, handle) -> None:
        """A load to an unowned communicated ``line`` reaches the BSHR.

        If a broadcast already arrived the load sees an effective on-chip
        hit; otherwise the handle waits for the matching arrival.
        """
        arrived = self._arrived.get(line)
        if arrived:
            arrival_time = arrived.popleft()
            if not arrived:
                del self._arrived[line]
            ready = max(arrival_time, now) + self.config.access_latency
            handle.found_in_bshr = arrival_time <= now
            if handle.found_in_bshr:
                self.stats.found_in_bshr += 1
            else:
                self.stats.waits += 1
            if self._tracer is not None:
                self._tracer.emit(EventKind.BSHR_FILL, now, self._trace_node,
                                  line=line, found=handle.found_in_bshr)
            handle.complete(ready)
            return
        self.stats.waits += 1
        if self._tracer is not None:
            self._tracer.emit(EventKind.BSHR_ALLOC, now, self._trace_node,
                              line=line)
        self._waiting.setdefault(line, deque()).append(handle)
        if self._timeout is not None:
            deadline = now + self._timeout
            self._deadlines[handle] = deadline
            if deadline < self._deadline_floor:
                self._deadline_floor = deadline
        self._note_occupancy()

    def schedule_discard(self, line: int) -> None:
        """Commit-time squash: one future (or buffered) arrival for
        ``line`` must be consumed without waking any load."""
        arrived = self._arrived.get(line)
        if arrived:
            arrived.popleft()
            if not arrived:
                del self._arrived[line]
            self.stats.squashes += 1
            return
        self._discards[line] = self._discards.get(line, 0) + 1

    # ------------------------------------------------------------------
    # Network side.
    # ------------------------------------------------------------------
    def arrival(self, time: int, line: int) -> None:
        """A broadcast for ``line`` arrives (fully transferred) at
        ``time``."""
        self.stats.arrivals += 1
        discards = self._discards.get(line, 0)
        if discards:
            if discards == 1:
                del self._discards[line]
            else:
                self._discards[line] = discards - 1
            self.stats.squashes += 1
            if self._tracer is not None:
                self._tracer.emit(EventKind.BCAST_CONSUME, time,
                                  self._trace_node, line=line, squashed=True)
            return
        waiting = self._waiting.get(line)
        if waiting:
            handle = waiting.popleft()
            if not waiting:
                del self._waiting[line]
            if self._deadlines:
                self._deadlines.pop(handle, None)
            ready = max(time, handle.issued_at) + self.config.access_latency
            if self._tracer is not None:
                self._tracer.emit(EventKind.BCAST_CONSUME, time,
                                  self._trace_node, line=line, squashed=False)
            handle.complete(ready)
            return
        self._arrived.setdefault(line, deque()).append(time)
        self._note_occupancy()

    # ------------------------------------------------------------------
    # Fault-mode wait deadlines.
    # ------------------------------------------------------------------
    def arm_timeout(self, deadline_cycles: int) -> None:
        """Arm the wait tripwire: a load left waiting longer than
        ``deadline_cycles`` aborts the run with a typed
        :class:`~repro.errors.BroadcastLostError` instead of spinning to
        the generic pipeline deadlock detector.

        With fault injection active every loss is detected and
        retransmitted within a bounded window, so a wait this old means
        the transport silently violated its delivery contract.
        """
        if deadline_cycles < 1:
            raise ProtocolError("BSHR wait deadline must be >= 1 cycle")
        self._timeout = deadline_cycles

    def next_deadline(self):
        """Earliest armed wait deadline, or ``None``.

        Consulted by the idle-skip scheduler so fast-forward lands *on*
        the tripwire cycle rather than jumping past it.
        """
        if not self._deadlines:
            return None
        return min(self._deadlines.values())

    def check_timeouts(self, now: int) -> None:
        """Raise if any armed wait's deadline has passed.  O(1) on the
        common no-expiry cycle via a monotone floor on the earliest
        deadline."""
        if now < self._deadline_floor:
            return
        if not self._deadlines:
            self._deadline_floor = _INF
            return
        earliest = min(self._deadlines.values())
        if now < earliest:
            self._deadline_floor = earliest
            return
        expired = {handle for handle, deadline in self._deadlines.items()
                   if deadline <= now}
        lines = sorted({hex(line) for line, queue in self._waiting.items()
                        if any(h in expired for h in queue)})
        if self._tracer is not None:
            self._tracer.emit(EventKind.BSHR_TIMEOUT, now, self._trace_node,
                              lines=lines)
        raise BroadcastLostError(
            f"{self.name}: loads waiting for lines {lines} exceeded the "
            f"{self._timeout}-cycle recovery budget at cycle {now} — the "
            f"broadcast medium lost deliveries without recovery"
        )

    # ------------------------------------------------------------------
    # Bookkeeping.
    # ------------------------------------------------------------------
    def _note_occupancy(self) -> None:
        occupancy = self.occupancy()
        if occupancy > self.stats.high_water:
            self.stats.high_water = occupancy
        if occupancy > self.config.entries:
            self.stats.overflows += 1

    def occupancy(self) -> int:
        """Entries in use: waiting loads plus buffered arrivals."""
        waiting = sum(len(q) for q in self._waiting.values())
        arrived = sum(len(q) for q in self._arrived.values())
        return waiting + arrived

    def outstanding_waits(self) -> int:
        return sum(len(q) for q in self._waiting.values())

    def assert_drained(self) -> None:
        """At end of simulation no load may still be waiting (a waiter
        with no broadcast coming is the deadlock the paper's protocol
        must prevent)."""
        if self.outstanding_waits():
            lines = [hex(line) for line in self._waiting]
            raise ProtocolError(
                f"{self.name}: loads still waiting for broadcasts of "
                f"lines {lines} — correspondence protocol failure"
            )
