"""Result communication (paper Section 5.1) — trace-level estimator.

"Because each processor executes the instructions in a different order,
it is possible for a processor to temporarily deviate from the ESP model
and execute a private computation, broadcasting only the result — not the
operands — to the other processors."

The paper proposes but does not evaluate this optimization; we provide
the analysis a compiler/hardware predictor would need: scan the dynamic
trace for *private regions* — maximal instruction windows whose loads all
touch communicated data owned by a single node — and report how many
operand broadcasts result communication would replace with a single
result broadcast per region.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.opcodes import OpClass
from ..memory.page_table import PageTable

_LOAD = int(OpClass.LOAD)


@dataclass
class PrivateRegion:
    """One candidate private computation."""

    owner: int
    start_seq: int
    end_seq: int
    owned_loads: int

    @property
    def saved_broadcasts(self) -> int:
        """Operand broadcasts replaced by one result broadcast."""
        return max(0, self.owned_loads - 1)


@dataclass
class ResultCommReport:
    """Aggregate opportunity across the trace."""

    regions: "list[PrivateRegion]"
    total_communicated_loads: int

    @property
    def saved_broadcasts(self) -> int:
        return sum(region.saved_broadcasts for region in self.regions)

    @property
    def broadcast_reduction(self) -> float:
        if not self.total_communicated_loads:
            return 0.0
        return self.saved_broadcasts / self.total_communicated_loads


class ResultCommunicationAnalyzer:
    """Finds private regions in a dynamic instruction trace.

    A region accumulates while every load touches data owned by one fixed
    node (replicated loads are neutral — local everywhere).  A load owned
    by a different node closes the region.  Only regions with at least
    ``min_loads`` owned loads are worth a result broadcast.
    """

    def __init__(self, page_table: PageTable, min_loads: int = 2):
        self.page_table = page_table
        self.min_loads = min_loads

    def analyze(self, trace) -> ResultCommReport:
        regions = []
        total = 0
        owner = None
        start = None
        owned_loads = 0
        last_seq = 0

        def close(end_seq: int) -> None:
            nonlocal owner, start, owned_loads
            if owner is not None and owned_loads >= self.min_loads:
                regions.append(PrivateRegion(owner, start, end_seq,
                                             owned_loads))
            owner = None
            start = None
            owned_loads = 0

        for dyn in trace:
            last_seq = dyn.seq
            if dyn.op_class != _LOAD:
                continue
            entry = self.page_table.entry_for(dyn.addr)
            if entry.replicated:
                continue
            total += 1
            if owner is None:
                owner = entry.owner
                start = dyn.seq
                owned_loads = 1
            elif entry.owner == owner:
                owned_loads += 1
            else:
                close(dyn.seq - 1)
                owner = entry.owner
                start = dyn.seq
                owned_loads = 1
        close(last_seq)
        return ResultCommReport(regions=regions,
                                total_communicated_loads=total)
