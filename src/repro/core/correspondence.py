"""Cache-correspondence accounting.

Dynamically-scheduled nodes probe their caches at issue time but update
them only at commit, so the issue-time outcome can disagree with the
canonical commit-order outcome (paper Section 4.1, Figure 4):

* **false hit** — hit at issue, canonical miss at commit.  The owner must
  issue a *reparative broadcast* at commit; a non-owner must squash the
  broadcast the owner sends (nobody local is waiting for it).
* **false miss** — miss at issue, canonical hit at commit.  The paper
  assigns the one real miss of a line sequence to whichever access
  actually fetched it; DCUB merging realizes this (one fetch per
  in-flight line), and the tracker's debt counters keep broadcast
  production exactly equal to canonical-miss consumption.

Per line the tracker maintains, at the owner, ``sent - canonical_misses``
(settled by sending a late broadcast whenever a canonical miss commits
unfunded) and, at non-owners, outstanding issue-time BSHR waits (a
canonical miss either consumes a wait credit or schedules a BSHR
discard).
"""

from __future__ import annotations


class CorrespondenceStats:
    """Counters for Table 3 and the ablation study."""

    __slots__ = ("true_hits", "true_misses", "false_hits", "false_misses",
                 "reparative_broadcasts", "scheduled_discards")

    def __init__(self):
        self.true_hits = 0
        self.true_misses = 0
        self.false_hits = 0
        self.false_misses = 0
        self.reparative_broadcasts = 0
        self.scheduled_discards = 0

    @property
    def classified(self) -> int:
        return (self.true_hits + self.true_misses
                + self.false_hits + self.false_misses)


class CorrespondenceTracker:
    """Per-node reconciliation state."""

    def __init__(self):
        self.stats = CorrespondenceStats()
        # Owner side: broadcasts sent minus canonical misses, per line.
        self._broadcast_credit: "dict[int, int]" = {}
        # Non-owner side: issue-time BSHR waits not yet matched to a
        # canonical miss, per line.
        self._wait_credit: "dict[int, int]" = {}

    # ------------------------------------------------------------------
    # Classification (loads that probed the cache at issue).
    # ------------------------------------------------------------------
    def classify(self, issue_hit: bool, canonical_hit: bool) -> str:
        """Record and name the issue/commit agreement for one load."""
        if issue_hit and canonical_hit:
            self.stats.true_hits += 1
            return "true_hit"
        if not issue_hit and not canonical_hit:
            self.stats.true_misses += 1
            return "true_miss"
        if issue_hit:
            self.stats.false_hits += 1
            return "false_hit"
        self.stats.false_misses += 1
        return "false_miss"

    # ------------------------------------------------------------------
    # Owner-side broadcast debt.
    # ------------------------------------------------------------------
    def note_broadcast_sent(self, line: int) -> None:
        """An eager (issue-time) broadcast of ``line`` went out."""
        self._broadcast_credit[line] = self._broadcast_credit.get(line, 0) + 1

    def settle_canonical_miss_owner(self, line: int) -> bool:
        """A canonical miss of an owned line committed.  Returns True when
        a reparative broadcast must be sent now (no eager send funded it).
        """
        credit = self._broadcast_credit.get(line, 0)
        if credit > 0:
            if credit == 1:
                del self._broadcast_credit[line]
            else:
                self._broadcast_credit[line] = credit - 1
            return False
        self.stats.reparative_broadcasts += 1
        return True

    # ------------------------------------------------------------------
    # Non-owner-side wait credit.
    # ------------------------------------------------------------------
    def note_bshr_wait(self, line: int) -> None:
        """An issue-time BSHR wait was allocated for ``line``."""
        self._wait_credit[line] = self._wait_credit.get(line, 0) + 1

    def settle_canonical_miss_nonowner(self, line: int) -> bool:
        """A canonical miss of an unowned line committed.  Returns True
        when the matching broadcast has no local consumer and must be
        squashed on arrival."""
        credit = self._wait_credit.get(line, 0)
        if credit > 0:
            if credit == 1:
                del self._wait_credit[line]
            else:
                self._wait_credit[line] = credit - 1
            return False
        self.stats.scheduled_discards += 1
        return True

    def unmatched_waits(self) -> int:
        """Waits never matched by a canonical miss (should be zero at the
        end of a run; nonzero indicates a protocol accounting leak)."""
        return sum(self._wait_credit.values())
