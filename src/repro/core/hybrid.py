"""Hybrid SPSD/SPMD execution (paper Section 5.2).

"The DataScalar execution model is a memory system optimization, not a
substitute for parallel processing.  When coarse-grain parallelism exists
and is obtainable, the system should be run as a parallel processor
(since a majority of the needed hardware is already present)."

A hybrid schedule alternates:

* **serial phases** — one program run SPSD across all nodes (the full
  DataScalar machinery: ESP broadcasts, BSHRs, correspondence); and
* **parallel phases** — one program *per node*, each run privately
  against that node's local memory (SPMD), joined by a barrier that
  exchanges each node's boundary results over the broadcast bus.

The result quantifies the paper's claim that the same hardware covers
both regimes: parallel sections get near-linear scaling, serial sections
keep DataScalar's memory-system advantage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cpu.pipeline import Pipeline
from ..errors import ConfigError, SimulationError
from ..interconnect.bus import Bus
from ..interconnect.message import Message, MessageKind
from ..isa.interpreter import Interpreter
from ..memory.layout import traditional_page_table
from ..params import SystemConfig, TraditionalConfig
from .system import DataScalarSystem


@dataclass
class SerialPhase:
    """One SPSD section: every node runs ``program`` redundantly."""

    program: object
    replicated_pages: frozenset = frozenset()


@dataclass
class ParallelPhase:
    """One SPMD section: node ``i`` runs ``programs[i]`` privately.

    ``boundary_bytes`` is what each node must publish at the closing
    barrier (partial sums, halo cells, ...), broadcast over the bus.
    """

    programs: list
    boundary_bytes: int = 64


@dataclass
class PhaseResult:
    """Timing of one phase."""

    kind: str
    cycles: int
    instructions: int
    #: Parallel phases: per-node cycle counts (imbalance diagnosis).
    node_cycles: "list[int]" = field(default_factory=list)


@dataclass
class HybridResult:
    """Outcome of a hybrid schedule."""

    phases: "list[PhaseResult]"
    barrier_cycles: int

    @property
    def total_cycles(self) -> int:
        return sum(p.cycles for p in self.phases) + self.barrier_cycles

    @property
    def total_instructions(self) -> int:
        return sum(p.instructions for p in self.phases)

    @property
    def parallel_fraction(self) -> float:
        parallel = sum(p.cycles for p in self.phases if p.kind == "spmd")
        total = self.total_cycles
        return parallel / total if total else 0.0


class HybridSystem:
    """Runs hybrid schedules on one DataScalar machine configuration."""

    def __init__(self, config: SystemConfig = None):
        self.config = config or SystemConfig()

    def run(self, phases, limit=None) -> HybridResult:
        """Execute ``phases`` in order; returns the combined timing."""
        if not phases:
            raise ConfigError("a hybrid schedule needs at least one phase")
        results = []
        barrier_cycles = 0
        for phase in phases:
            if isinstance(phase, SerialPhase):
                results.append(self._run_serial(phase, limit))
            elif isinstance(phase, ParallelPhase):
                result, barrier = self._run_parallel(phase, limit)
                results.append(result)
                barrier_cycles += barrier
            else:
                raise ConfigError(f"unknown phase type {type(phase).__name__}")
        return HybridResult(phases=results, barrier_cycles=barrier_cycles)

    # ------------------------------------------------------------------
    def _run_serial(self, phase: SerialPhase, limit) -> PhaseResult:
        result = DataScalarSystem(self.config).run(
            phase.program, replicated_pages=phase.replicated_pages,
            limit=limit)
        return PhaseResult(kind="spsd", cycles=result.cycles,
                           instructions=result.instructions)

    def _run_parallel(self, phase: ParallelPhase, limit):
        config = self.config
        if len(phase.programs) != config.num_nodes:
            raise ConfigError(
                f"parallel phase has {len(phase.programs)} programs for "
                f"{config.num_nodes} nodes"
            )
        node_cycles = []
        instructions = 0
        for program in phase.programs:
            cycles, committed = self._run_private(program, limit)
            node_cycles.append(cycles)
            instructions += committed
        # Barrier: each node broadcasts its boundary results.
        bus = Bus(config.bus)
        done = 0
        for node_id in range(config.num_nodes):
            message = Message(MessageKind.BROADCAST, src=node_id,
                              line_addr=0, payload_bytes=phase.boundary_bytes)
            _, done = bus.transfer(done, message)
        return (
            PhaseResult(kind="spmd", cycles=max(node_cycles),
                        instructions=instructions, node_cycles=node_cycles),
            done,
        )

    def _run_private(self, program, limit):
        """One node running privately: all pages local (SPMD mode keeps
        each node's partition in its own memory)."""
        from ..baseline.traditional import TraditionalMemory  # avoid cycle

        node = self.config.node
        trad_config = TraditionalConfig(
            node=node, bus=self.config.bus, onchip_fraction_denom=1,
            replicate_text=True,
        )
        page_table = traditional_page_table(
            program, denom=1, page_size=node.memory.page_size,
            replicate_text=True,
        )
        bus = Bus(self.config.bus)  # private; never used when all is local
        memory = TraditionalMemory(trad_config, page_table, bus)
        pipeline = Pipeline(node.cpu, memory,
                            Interpreter(program).trace(limit=limit),
                            icache_line=node.icache.line_size)
        cycle = 0
        while not pipeline.done:
            if cycle >= self.config.max_cycles:
                raise SimulationError("private phase exceeded max_cycles")
            pipeline.tick(cycle)
            cycle += 1
        memory.validate_final_state()
        return cycle, pipeline.stats.committed
