"""Dynamic replication at a second-level cache (the paper's footnote 4).

"It is possible to use lower levels of a multi-level cache hierarchy to
perform dynamic replication.  We chose to use only the level-one caches
because our particular solution requires a tight coupling of the cache
tags and the load/store queue."  This node builds the alternative: a
unified on-chip L2 holds the dynamically-replicated data, giving a much
larger replication pool (fewer broadcasts for re-referenced lines) at
the price of an extra on-chip level on every L1 miss.

Correspondence still holds level by level: the L1 updates only at commit,
so its canonical miss stream is identical at every node; that stream is
the L2's canonical access sequence, so L2 contents correspond too, and
the owner/consumer broadcast ledgers (same machinery as the L1-only
node) balance at L2 granularity.
"""

from __future__ import annotations

from ..cpu.interface import LoadHandle, MemoryInterface
from ..memory.cache import Cache
from ..memory.mainmem import BankedMemory
from ..memory.page_table import PageTable
from ..obs.events import EventKind
from ..params import CacheConfig, NodeConfig
from .bshr import BSHRFile
from .broadcast import Broadcaster
from .correspondence import CorrespondenceTracker
from .dcub import DCUB
from .node import _PrimaryHandle


class DataScalarL2Node(MemoryInterface):
    """A DataScalar node whose replicated level is a unified L2."""

    def __init__(self, node_id: int, config: NodeConfig,
                 l2_config: CacheConfig, page_table: PageTable, medium,
                 deliver, num_peers: int = 1):
        self.node_id = node_id
        self.config = config
        self.page_table = page_table
        self.icache = Cache(config.icache, name=f"i{node_id}")
        self.dcache = Cache(config.dcache, name=f"d{node_id}")
        self.l2 = Cache(l2_config, name=f"l2-{node_id}")
        self.l2_latency = config.memory.onchip_latency
        self.local_mem = BankedMemory(
            config.memory.onchip_latency,
            num_banks=config.memory.num_banks,
            interleave_bytes=config.dcache.line_size,
            name=f"mem{node_id}",
        )
        self.bshr = BSHRFile(config.bshr, name=f"bshr{node_id}")
        self.dcub = DCUB(name=f"dcub{node_id}")
        self.tracker = CorrespondenceTracker()
        self.broadcaster = Broadcaster(
            node_id, medium, config.broadcast_queue_latency,
            config.dcache.line_size, deliver, num_peers=num_peers,
        )
        self.l2_hits = 0
        self.l2_misses = 0
        self.remote_loads = 0
        self.local_loads = 0
        self.dropped_stores = 0
        self.local_stores = 0
        self._tracer = None  # observability hook (None = untraced)

    def attach_tracer(self, tracer) -> None:
        """Emit this node's (and its subsystems') events to ``tracer``."""
        self._tracer = tracer
        self.bshr.attach_tracer(tracer, self.node_id)
        self.dcub.attach_tracer(tracer, self.node_id)
        self.broadcaster.attach_tracer(tracer)

    # ------------------------------------------------------------------
    # Issue side.
    # ------------------------------------------------------------------
    def load_issue(self, now: int, addr: int, size: int) -> LoadHandle:
        line = self.dcache.line_addr(addr)
        hit_latency = self.config.dcache.hit_latency
        if self.dcache.lookup(addr):
            handle = LoadHandle(addr, size, now)
            handle.issue_hit = True
            handle.complete(now + hit_latency)
            return handle
        entry = self.dcub.lookup(line)
        if entry is not None:
            handle = LoadHandle(addr, size, now)
            handle.issue_hit = False
            handle.dcub_line = line
            self.dcub.merge(entry, now, handle)
            return handle
        entry = self.dcub.allocate(line, now)
        handle = _PrimaryHandle(addr, size, now, entry)
        handle.issue_hit = False
        handle.dcub_line = line
        if self.l2.lookup(addr):
            # Dynamically replicated in the L2: an on-chip hit.
            self.l2_hits += 1
            handle.complete(now + hit_latency + self.l2_latency)
            return handle
        self.l2_misses += 1
        pte = self.page_table.entry_for(addr)
        if pte.replicated or pte.owner == self.node_id:
            self.local_loads += 1
            done = self.local_mem.access(now + hit_latency, line)
            if not pte.replicated:
                self.broadcaster.broadcast(done, line, late=False)
                self.tracker.note_broadcast_sent(line)
            handle.complete(done)
        else:
            self.remote_loads += 1
            self.tracker.note_bshr_wait(line)
            self.bshr.load(now, line, handle)
        return handle

    # ------------------------------------------------------------------
    # Commit side.
    # ------------------------------------------------------------------
    def commit_mem(self, now: int, addr: int, size: int, is_store: bool,
                   handle) -> None:
        line = self.dcache.line_addr(addr)
        l1_canonical_hit = self.dcache.lookup(addr)
        result = self.dcache.commit_access(addr, is_write=is_store)
        if self._tracer is not None:
            self._tracer.emit(EventKind.CACHE_COMMIT, now, self.node_id,
                              line=line, store=is_store,
                              hit=l1_canonical_hit, filled=result.filled,
                              evicted=result.evicted)
        if result.writeback is not None:
            self._spill_to_l2(now, result.writeback)
        if handle is not None and handle.dcub_line is not None:
            if self.dcub.release(handle.dcub_line) \
                    and self._tracer is not None:
                self._tracer.emit(EventKind.DCUB_APPLY, now, self.node_id,
                                  line=handle.dcub_line)
        if not is_store and handle is not None \
                and handle.issue_hit is not None:
            self.tracker.classify(handle.issue_hit, l1_canonical_hit)
        if is_store:
            self._complete_store(now, addr, l1_canonical_hit)
        if result.filled and not l1_canonical_hit:
            # The canonical L1 fill is the L2's canonical access.
            l2_canonical_hit = self.l2.lookup(addr)
            l2_result = self.l2.commit_access(addr, is_write=False)
            if l2_result.writeback is not None:
                self._writeback_memory(now, l2_result.writeback)
            if not l2_canonical_hit:
                self._settle_l2_miss(now, addr, line)

    def _settle_l2_miss(self, now: int, addr: int, line: int) -> None:
        pte = self.page_table.entry_for(addr)
        if pte.replicated:
            return
        if pte.owner == self.node_id:
            if self.tracker.settle_canonical_miss_owner(line):
                if self._tracer is not None:
                    self._tracer.emit(EventKind.FALSE_HIT_REPAIR, now,
                                      self.node_id, line=line,
                                      action="late-broadcast")
                available = self.local_mem.access(now, line)
                self.broadcaster.broadcast(available, line, late=True)
        else:
            if self.tracker.settle_canonical_miss_nonowner(line):
                if self._tracer is not None:
                    self._tracer.emit(EventKind.FALSE_HIT_REPAIR, now,
                                      self.node_id, line=line,
                                      action="discard")
                self.bshr.schedule_discard(line)

    def _spill_to_l2(self, now: int, line: int) -> None:
        """A dirty L1 eviction lands in the L2 (canonical sequence:
        deterministic function of commits)."""
        l2_result = self.l2.commit_access(line, is_write=True)
        if l2_result.writeback is not None:
            self._writeback_memory(now, l2_result.writeback)

    def _writeback_memory(self, now: int, line: int) -> None:
        pte = self.page_table.entry_for(line)
        if pte.replicated or pte.owner == self.node_id:
            self.local_mem.access(now, line)
        else:
            self.dropped_stores += 1

    def _complete_store(self, now: int, addr: int, cached: bool) -> None:
        if cached:
            return
        pte = self.page_table.entry_for(addr)
        if pte.replicated or pte.owner == self.node_id:
            self.local_stores += 1
            self.local_mem.access(now, addr)
        else:
            self.dropped_stores += 1

    # ------------------------------------------------------------------
    def ifetch_line(self, now: int, line_addr: int) -> int:
        result = self.icache.commit_access(line_addr, is_write=False)
        if result.hit:
            return now
        return self.local_mem.access(now, line_addr)

    def drain(self, now: int) -> bool:
        return True

    def validate_final_state(self) -> None:
        from ..errors import ProtocolError

        self.bshr.assert_drained()
        self.dcub.assert_drained()
        unmatched = self.tracker.unmatched_waits()
        if unmatched:
            raise ProtocolError(
                f"L2 node {self.node_id}: {unmatched} unmatched BSHR waits"
            )
