"""Static replication policy (paper Section 3.2).

"We replicate data statically by duplicating the most heavily accessed
pages in each processor's local memory. ... We selected the pages to
replicate by running the benchmark, saving the number of accesses to each
page, sorting the pages by number of accesses, and choosing the most
heavily accessed pages."
"""

from __future__ import annotations

from dataclasses import dataclass

from ..memory.address import Segment
from ..memory.layout import choose_block_size
from ..memory.profile import PageProfile, profile_program


def select_hot_pages(profile: PageProfile, budget_pages: int,
                     segments=None) -> "frozenset[int]":
    """The ``budget_pages`` most-accessed pages, optionally restricted to
    ``segments`` (an iterable of :class:`Segment`)."""
    if budget_pages <= 0:
        return frozenset()
    wanted = None if segments is None else set(segments)
    chosen = []
    for page, _count in profile.pages_by_count():
        if wanted is not None and profile.segment_of_page(page) not in wanted:
            continue
        chosen.append(page)
        if len(chosen) >= budget_pages:
            break
    return frozenset(chosen)


@dataclass
class ReplicationPlan:
    """Everything the Table 2 methodology decides per benchmark."""

    replicated_pages: "frozenset[int]"
    distribution_block_pages: int
    profile: PageProfile

    def replicated_by_segment(self) -> "dict[Segment, int]":
        counts = {segment: 0 for segment in Segment}
        for page in self.replicated_pages:
            counts[self.profile.segment_of_page(page)] += 1
        return counts


def plan_replication(program, page_size: int, num_nodes: int,
                     budget_pages: int, limit=None,
                     include_ifetch: bool = True) -> ReplicationPlan:
    """Profile ``program`` and pick the hot pages plus a distribution
    block size, mirroring the paper's per-benchmark methodology: replicate
    the hottest pages, and maximize the block while keeping it smaller
    than ``1/num_nodes`` of the text and largest data segments."""
    profile = profile_program(program, page_size, limit=limit,
                              include_ifetch=include_ifetch)
    replicated = select_hot_pages(profile, budget_pages)
    block = choose_block_size(program, page_size, num_nodes)
    return ReplicationPlan(
        replicated_pages=replicated,
        distribution_block_pages=block,
        profile=profile,
    )
