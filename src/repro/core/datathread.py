"""Datathread-length measurement (paper Section 3.2, Table 2).

A *datathread* is a run of consecutive references local to one node.  The
paper's approximation: "count consecutive references on a node, beginning
the count upon the first reference to a communicated datum local to some
node, ending (and restarting) the count upon the next reference to
communicated data local to a different node."  References to replicated
pages extend the current run (they are local everywhere); contiguous
replicated references are also tracked separately (Table 2's right-most
column).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..memory.page_table import PageTable


@dataclass
class DatathreadReport:
    """Mean run lengths produced by one analyzer."""

    runs: int
    mean_length: float
    references: int
    replicated_runs: int
    mean_replicated_length: float


class DatathreadAnalyzer:
    """Streams references and accumulates datathread runs."""

    def __init__(self, page_table: PageTable):
        self.page_table = page_table
        self._current_node = None
        self._current_length = 0
        self._run_lengths_sum = 0
        self._run_count = 0
        self._repl_length = 0
        self._repl_sum = 0
        self._repl_count = 0
        self.references = 0

    def observe(self, addr: int) -> None:
        """Feed the next reference (typically a cache miss) in order."""
        self.references += 1
        entry = self.page_table.entry_for(addr)
        if entry.replicated:
            # Local at every node: extends the current datathread and a
            # contiguous-replicated run.
            if self._current_node is not None:
                self._current_length += 1
            self._repl_length += 1
            return
        self._end_replicated_run()
        owner = entry.owner
        if owner == self._current_node:
            self._current_length += 1
        else:
            self._end_datathread()
            self._current_node = owner
            self._current_length = 1

    def _end_datathread(self) -> None:
        if self._current_node is not None and self._current_length:
            self._run_lengths_sum += self._current_length
            self._run_count += 1
        self._current_length = 0

    def _end_replicated_run(self) -> None:
        if self._repl_length:
            self._repl_sum += self._repl_length
            self._repl_count += 1
        self._repl_length = 0

    def finish(self) -> DatathreadReport:
        """Close open runs and report the means."""
        self._end_datathread()
        self._current_node = None
        self._end_replicated_run()
        mean = (self._run_lengths_sum / self._run_count
                if self._run_count else 0.0)
        repl_mean = (self._repl_sum / self._repl_count
                     if self._repl_count else 0.0)
        return DatathreadReport(
            runs=self._run_count,
            mean_length=mean,
            references=self.references,
            replicated_runs=self._repl_count,
            mean_replicated_length=repl_mean,
        )


def analyze_stream(page_table: PageTable, addresses) -> DatathreadReport:
    """Convenience: run one analyzer over an address iterable."""
    analyzer = DatathreadAnalyzer(page_table)
    for addr in addresses:
        analyzer.observe(addr)
    return analyzer.finish()
