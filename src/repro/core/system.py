"""The multi-node DataScalar timing simulator.

Mirrors the paper's simulation platform: a multi-context simulator that
"switches contexts after executing each cycle (i.e., it simulates cycle n
for all contexts before simulating cycle n+1 for any context)".  All
nodes fetch, execute, and commit the identical dynamic stream (SPSD) at
their own pace — asynchronous ESP; one shared functional interpreter
feeds every node through :mod:`repro.isa.fanout`, and provably idle
cycle ranges are skipped (see :meth:`DataScalarSystem._advance`) without
altering any reported cycle count or statistic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..cpu.pipeline import DEADLOCK_CYCLES, Pipeline, PipelineStats
from ..errors import ProtocolError, SimulationError
from ..interconnect.medium import make_medium
from ..isa.codegen import make_trace_source
from ..isa.fanout import fan_out
from ..isa.interpreter import Interpreter
from ..memory.layout import LayoutSpec, build_page_table
from ..obs import spans
from ..obs.events import EventKind
from ..params import SystemConfig

_INF = float("inf")


@dataclass
class NodeResult:
    """Everything one node reports after a run."""

    node_id: int
    pipeline: PipelineStats
    broadcasts_sent: int
    late_broadcasts: int
    bshr_waits: int
    bshr_found: int
    bshr_squashes: int
    bshr_arrivals: int
    false_hits: int
    false_misses: int
    dcache_miss_rate: float
    remote_loads: int
    local_loads: int
    dropped_stores: int


@dataclass
class DataScalarResult:
    """Run-level outcome: IPC plus the Table 3 statistics."""

    cycles: int
    instructions: int
    nodes: "list[NodeResult]"
    bus_transactions: int
    bus_payload_bytes: int
    bus_utilization: float
    layout_summary: object = None
    extra: dict = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    # ------------------------------------------------------------------
    # Table 3 aggregates (arithmetic mean over nodes, as in the paper).
    # ------------------------------------------------------------------
    @property
    def late_broadcast_fraction(self) -> float:
        """Fraction of broadcasts issued late (at commit) — column one."""
        fractions = [
            node.late_broadcasts / node.broadcasts_sent
            for node in self.nodes if node.broadcasts_sent
        ]
        return sum(fractions) / len(fractions) if fractions else 0.0

    @property
    def bshr_squash_fraction(self) -> float:
        """BSHR entries squashed, out of BSHR accesses — column two."""
        fractions = []
        for node in self.nodes:
            accesses = node.bshr_waits + node.bshr_found + node.bshr_squashes
            if accesses:
                fractions.append(node.bshr_squashes / accesses)
        return sum(fractions) / len(fractions) if fractions else 0.0

    @property
    def found_in_bshr_fraction(self) -> float:
        """Remote accesses that found data waiting in the BSHR — column
        three (evidence of datathreading)."""
        fractions = []
        for node in self.nodes:
            remote = node.bshr_waits + node.bshr_found
            if remote:
                fractions.append(node.bshr_found / remote)
        return sum(fractions) / len(fractions) if fractions else 0.0


class DataScalarSystem:
    """N IRAM nodes on one global broadcast bus (Figure 6(b))."""

    #: Subclasses running asymmetric per-node streams (e.g. result
    #: communication) relax the commit-count equality check.
    require_equal_commits = True

    def __init__(self, config: SystemConfig = None):
        self.config = config or SystemConfig()

    def _make_trace(self, program, node_id: int, limit):
        """Build node ``node_id``'s dynamic stream (hook for subclasses)."""
        return Interpreter(program).trace(limit=limit)

    def _make_medium(self):
        """Build the broadcast transport, wrapped for fault injection
        when ``config.faults`` is set (hook for tests that substitute a
        deliberately broken medium)."""
        config = self.config
        medium = make_medium(config.interconnect, config.bus,
                             config.num_nodes)
        if config.faults is not None:
            from ..faults import FaultyMedium

            medium = FaultyMedium(medium, config.faults, config.num_nodes,
                                  config.bus)
        return medium

    def _make_traces(self, program, limit) -> "list":
        """One dynamic stream per node.

        SPSD nodes consume the identical stream, so the default runs a
        single functional front end and fans its records out to all
        nodes (O(I) interpretation instead of O(N·I)).  The front end —
        predecoded-closure interpreter or program-specialized generated
        code (:mod:`repro.isa.codegen`) — is chosen by
        ``config.engine``; both are bit-identical.  Subclasses that
        override :meth:`_make_trace` (asymmetric per-node streams, e.g.
        result communication) keep one interpreter per node.
        """
        num_nodes = self.config.num_nodes
        if type(self)._make_trace is not DataScalarSystem._make_trace:
            return [self._make_trace(program, node_id, limit)
                    for node_id in range(num_nodes)]
        source = make_trace_source(program, limit=limit,
                                   engine=self.config.engine)
        recorder = spans.active()
        if recorder is not None:
            # The front end is consumed lazily inside the timing loop,
            # so its wall time is charged to a timing-loop/frontend
            # accumulator — the number that settles how much of a run
            # the functional front end actually costs.  Disabled-path
            # runs never see the wrapper (or its clock reads).
            source = spans.timed_iter(
                source, recorder.accumulator("frontend",
                                             under="timing-loop"))
        return fan_out(source, num_nodes)

    def run(self, program, replicated_pages=frozenset(), limit=None,
            stack_bytes: int = 64 * 1024,
            observer=None, tracer=None,
            checkpoint_every=None, checkpoint_sink=None,
            resume_from=None, stop_after=None,
            warmup=None) -> "DataScalarResult | None":
        """Simulate ``program`` across all nodes to completion.

        ``replicated_pages`` are page numbers to replicate statically in
        addition to the text segment; ``limit`` bounds the dynamic
        instruction count per node (all nodes see the same prefix);
        ``observer(cycle, pipelines, nodes, medium)`` is called every
        simulated cycle (see :class:`repro.analysis.timeline`);
        ``tracer`` (a :class:`repro.obs.Tracer`) receives structured
        events from every subsystem — tracing is purely observational,
        so results are bit-identical with it on or off, fast-forward
        included (the tracer's own ``next_event`` bound is folded into
        :meth:`_advance` exactly like the fault layer's).

        Checkpointing (:mod:`repro.checkpoint`):

        * ``checkpoint_every=K`` captures a :class:`~repro.checkpoint.
          Checkpoint` each time every node has committed another K
          instructions and passes it to ``checkpoint_sink(ckpt)``;
        * ``resume_from`` continues a captured checkpoint instead of
          starting at cycle 0 (``program``/``limit``/config must match
          the checkpointed run — the snapshot carries machine state, the
          front end is rebuilt and replayed to its recorded position);
        * ``stop_after=C`` ends the run once every node has committed C
          instructions: the final state goes to ``checkpoint_sink`` and
          ``run`` returns ``None`` (a partial run has no result);
        * ``warmup=W`` skips the first W dynamic records functionally
          before timing starts (SimPoint-style sampling; the timed
          region starts with cold microarchitectural state, so results
          are *not* comparable to a full run).

        Checkpoint-enabled runs are bit-identical to plain runs but take
        the iterator-protocol front-end path (and pay a per-round commit
        scan), so the hot specialized loop is untouched when none of
        these arguments is given.  Observers and tracers hold references
        into live simulator objects and cannot be checkpointed.

        With ``config.result_communication`` set, private regions are
        auto-detected and the run delegates to
        :class:`~repro.core.resultcomm_exec.ResultCommSystem`.
        """
        if (checkpoint_every is not None or checkpoint_sink is not None
                or resume_from is not None or stop_after is not None
                or warmup):
            if observer is not None or tracer is not None:
                raise SimulationError(
                    "checkpointing is incompatible with observer/tracer "
                    "hooks — they hold references into live run state")
            return self._run_checkpointed(
                program, replicated_pages, limit, stack_bytes,
                checkpoint_every, checkpoint_sink, resume_from,
                stop_after, warmup)
        from .node import DataScalarNode  # local import to avoid cycles

        config = self.config
        if config.result_communication and type(self) is DataScalarSystem:
            import dataclasses

            from .resultcomm_exec import ResultCommSystem, \
                select_exec_regions

            plain = dataclasses.replace(config, result_communication=False)
            spec = LayoutSpec(
                num_nodes=config.num_nodes,
                page_size=config.node.memory.page_size,
                distribution_block_pages=config.distribution_block_pages,
                replicate_text=config.replicate_text,
                replicated_pages=frozenset(replicated_pages),
                stack_bytes=stack_bytes,
            )
            table, _ = build_page_table(program, spec)
            regions = select_exec_regions(program, table, limit=limit)
            return ResultCommSystem(plain, regions).run(
                program, replicated_pages=replicated_pages, limit=limit,
                stack_bytes=stack_bytes, observer=observer, tracer=tracer)
        spec = LayoutSpec(
            num_nodes=config.num_nodes,
            page_size=config.node.memory.page_size,
            distribution_block_pages=config.distribution_block_pages,
            replicate_text=config.replicate_text,
            replicated_pages=frozenset(replicated_pages),
            stack_bytes=stack_bytes,
        )
        with spans.span("layout"):
            page_table, layout_summary = build_page_table(program, spec)
        medium = self._make_medium()
        nodes: "list[DataScalarNode]" = []
        # Per-pipeline wake cycles for the selective fast-forward loop
        # (see :meth:`_run_selective`).  A broadcast delivery is the one
        # way a peer creates work for an idle node, so the deliver hook
        # zeroes the target's wake to force a re-tick and a fresh bound.
        wake = [0] * config.num_nodes

        def deliver(src: int, line: int, arrivals) -> None:
            for node in nodes:
                arrival = arrivals[node.node_id]
                if arrival is not None:
                    node.bshr.arrival(arrival, line)
                    wake[node.node_id] = 0

        if tracer is not None:
            plain_deliver = deliver

            def deliver(src: int, line: int, arrivals) -> None:
                for node in nodes:
                    arrival = arrivals[node.node_id]
                    if arrival is not None:
                        tracer.emit(EventKind.BCAST_ARRIVE, arrival,
                                    node.node_id, src=src, line=line)
                plain_deliver(src, line, arrivals)

        pipelines = []
        # Trace sources are built *outside* the setup span so the
        # codegen-compile phase (charged inside make_trace_source) and
        # the timing-loop/frontend accumulator stay direct children of
        # the point span rather than nesting under setup.
        traces = self._make_traces(program, limit)
        with spans.span("setup"):
            for node_id in range(config.num_nodes):
                if config.l2 is not None:
                    from .node_l2 import DataScalarL2Node

                    node = DataScalarL2Node(
                        node_id, config.node, config.l2, page_table,
                        medium, deliver, num_peers=config.num_nodes - 1)
                else:
                    node = DataScalarNode(
                        node_id, config.node, page_table, medium,
                        deliver, num_peers=config.num_nodes - 1)
                nodes.append(node)
                pipelines.append(
                    Pipeline(config.node.cpu, node, traces[node_id],
                             icache_line=config.node.icache.line_size))
                if tracer is not None:
                    pipelines[-1].attach_tracer(tracer, node_id)
                    node.attach_tracer(tracer)
            if tracer is not None and hasattr(medium, "attach_tracer"):
                medium.attach_tracer(tracer)

        # Fault mode arms the BSHR wait tripwire and teaches the
        # idle-skip scheduler about medium-level recovery timers; with
        # faults disabled neither hook exists and the loop is untouched.
        faulted = config.faults is not None
        extra_event = None
        if faulted:
            for node in nodes:
                node.bshr.arm_timeout(config.faults.wait_deadline)
            extra_event = self._fault_event_fn(nodes, medium)
        if tracer is not None:
            # A sampling tracer bounds idle-skip to its sample cycles;
            # a plain recording tracer returns None and leaves the skip
            # targets untouched — either way results stay bit-identical
            # because skipped and ticked idle cycles are observationally
            # identical.
            extra_event = self._chain_events(extra_event,
                                             getattr(tracer, "next_event",
                                                     None))

        # Wall-clock attribution for the fault layer's per-cycle work:
        # only armed when both faults and a span recorder are active, so
        # the plain hot loop is untouched.
        recorder = spans.active()
        fault_acc = None
        if faulted and recorder is not None:
            fault_acc = recorder.accumulator("fault-recovery",
                                             under="timing-loop")

        # Per-stage wall-time attribution for the timing loop: when a
        # span recorder is active, every pipeline charges its commit /
        # memory / issue stage time to shared timing-loop accumulators
        # and the loop drives the staged tick variant.  Without a
        # recorder the flat fast path runs untouched.
        stage_accs = None
        if recorder is not None:
            stage_accs = (
                recorder.accumulator("commit", under="timing-loop"),
                recorder.accumulator("memory", under="timing-loop"),
                recorder.accumulator("issue", under="timing-loop"),
            )
            for pipeline in pipelines:
                pipeline.attach_stage_accumulators(stage_accs)
        ticks = [p.tick_spanned if stage_accs is not None else p.tick
                 for p in pipelines]

        # Dense per-cycle ticking is required whenever an observer wants
        # to see every cycle; otherwise skip provably idle cycle ranges.
        fast_forward = config.fast_forward and observer is None
        cycle = 0
        with spans.span("timing-loop"):
            if fast_forward and not faulted and tracer is None:
                cycle = self._run_selective(pipelines, ticks, wake, config)
            else:
                while not all(p.done for p in pipelines):
                    if cycle >= config.max_cycles:
                        raise SimulationError(
                            f"DataScalar run exceeded {config.max_cycles} "
                            f"cycles"
                        )
                    if faulted:
                        if fault_acc is not None:
                            tick0 = time.perf_counter()
                            for node in nodes:
                                node.bshr.check_timeouts(cycle)
                            fault_acc.add(time.perf_counter() - tick0)
                        else:
                            for node in nodes:
                                node.bshr.check_timeouts(cycle)
                    for tick in ticks:
                        tick(cycle)
                    if observer is not None:
                        observer(cycle, pipelines, nodes, medium)
                    if fast_forward:
                        cycle = self._advance(cycle, pipelines, config,
                                              extra_event)
                    else:
                        cycle += 1

        with spans.span("analysis"):
            return self._collect(cycle, pipelines, nodes, medium,
                                 page_table, layout_summary)

    def _run_checkpointed(self, program, replicated_pages, limit,
                          stack_bytes, checkpoint_every, checkpoint_sink,
                          resume_from, stop_after, warmup):
        """The checkpoint-enabled twin of :meth:`run`.

        Same simulation, same results, two extra abilities: start from a
        :class:`~repro.checkpoint.Checkpoint` instead of cycle 0, and
        capture checkpoints at committed-instruction boundaries.  Kept
        separate so the plain path's specialized loops (queue-fast-path
        fetch, no per-round commit scans) stay byte-for-byte untouched.

        Capture happens after every tick of a cycle ``c`` and records
        ``cycle = c + 1`` — the next cycle to simulate.  On the
        selective (per-pipeline idle-skip) path, pipelines that were not
        ticked at ``c`` have their deferred stall accounting flushed
        first, so the snapshot is position-complete; the flush splits a
        ``note_skipped`` range in two, which is exact because a skipped
        pipeline's fetch state is frozen between real ticks (every
        skipped cycle classifies identically no matter when it is
        replayed).
        """
        from .node import DataScalarNode  # local import to avoid cycles

        from ..checkpoint import state as ckpt_state
        from ..isa.fanout import CountingTrace

        config = self.config
        if config.result_communication:
            raise SimulationError(
                "checkpointing does not support result-communication runs")
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise SimulationError("checkpoint_every must be >= 1")
            if checkpoint_sink is None:
                raise SimulationError(
                    "checkpoint_every requires a checkpoint_sink")
        num = config.num_nodes
        faulted = config.faults is not None

        nodes = []
        wake = [0] * num

        # Same delivery hook as the plain path; defined up front so both
        # the fresh-build and restore paths close over the *final*
        # ``nodes``/``wake`` bindings (closures read the enclosing
        # locals at call time).
        def deliver(src: int, line: int, arrivals) -> None:
            for node in nodes:
                arrival = arrivals[node.node_id]
                if arrival is not None:
                    node.bshr.arrival(arrival, line)
                    wake[node.node_id] = 0

        if resume_from is not None:
            ckpt = resume_from
            if ckpt.kind != "datascalar":
                raise SimulationError(
                    f"cannot resume a {ckpt.kind!r} checkpoint on a "
                    f"DataScalar system")
            state = ckpt_state.materialize(ckpt)
            pipelines = state["pipelines"]
            nodes = state["nodes"]
            medium = state["medium"]
            page_table = state["page_table"]
            layout_summary = state["layout_summary"]
            wake = state["wake"]
            last_tick = state["last_tick"]
            cycle = ckpt.cycle
            # Rebuild the functional front end exactly as a fresh run
            # would (same engine, same fan-out) and replay it to the
            # recorded per-node positions; this also reconstructs the
            # fan-out tee queues record for record.
            traces = [CountingTrace(t)
                      for t in self._make_traces(program, limit)]
            with spans.span("frontend-replay"):
                for trace, count in zip(traces, ckpt.consumed):
                    ckpt_state.advance_trace(trace, count)
            for pipeline, trace in zip(pipelines, traces):
                pipeline.rebind_trace(trace)
            for node in nodes:
                node.broadcaster.rebind_deliver(deliver)
        else:
            spec = LayoutSpec(
                num_nodes=num,
                page_size=config.node.memory.page_size,
                distribution_block_pages=config.distribution_block_pages,
                replicate_text=config.replicate_text,
                replicated_pages=frozenset(replicated_pages),
                stack_bytes=stack_bytes,
            )
            with spans.span("layout"):
                page_table, layout_summary = build_page_table(program, spec)
            medium = self._make_medium()
            traces = [CountingTrace(t)
                      for t in self._make_traces(program, limit)]
            if warmup:
                with spans.span("warmup"):
                    for trace in traces:
                        ckpt_state.advance_trace(trace, warmup)
            pipelines = []
            with spans.span("setup"):
                for node_id in range(num):
                    if config.l2 is not None:
                        from .node_l2 import DataScalarL2Node

                        node = DataScalarL2Node(
                            node_id, config.node, config.l2, page_table,
                            medium, deliver, num_peers=num - 1)
                    else:
                        node = DataScalarNode(
                            node_id, config.node, page_table, medium,
                            deliver, num_peers=num - 1)
                    nodes.append(node)
                    pipelines.append(
                        Pipeline(config.node.cpu, node, traces[node_id],
                                 icache_line=config.node.icache.line_size))
            cycle = 0
            last_tick = [0] * num
            if faulted:
                for node in nodes:
                    node.bshr.arm_timeout(config.faults.wait_deadline)

        extra_event = None
        if faulted:
            extra_event = self._fault_event_fn(nodes, medium)

        recorder = spans.active()
        fault_acc = None
        if faulted and recorder is not None:
            fault_acc = recorder.accumulator("fault-recovery",
                                             under="timing-loop")
        stage_accs = None
        if recorder is not None:
            stage_accs = (
                recorder.accumulator("commit", under="timing-loop"),
                recorder.accumulator("memory", under="timing-loop"),
                recorder.accumulator("issue", under="timing-loop"),
            )
            for pipeline in pipelines:
                pipeline.attach_stage_accumulators(stage_accs)
        ticks = [p.tick_spanned if stage_accs is not None else p.tick
                 for p in pipelines]

        next_boundary = None
        if checkpoint_every is not None:
            start_committed = min(p.stats.committed for p in pipelines)
            next_boundary = ((start_committed // checkpoint_every + 1)
                             * checkpoint_every)

        def take_checkpoint(cycle_pos: int, boundary: int):
            tree = {
                "pipelines": pipelines, "nodes": nodes, "medium": medium,
                "page_table": page_table, "layout_summary": layout_summary,
                "wake": list(wake), "last_tick": list(last_tick),
            }
            return ckpt_state.capture(
                "datascalar", cycle_pos,
                min(p.stats.committed for p in pipelines), tree,
                cut=ckpt_state.datascalar_cut_edges(pipelines, nodes),
                consumed=[t.consumed for t in traces],
                meta={"boundary": boundary})

        def emit_checkpoints(cycle_pos: int, min_committed: int) -> bool:
            """Deliver every boundary the run just crossed (wide commit
            rounds can cross several at once — each nominal boundary
            gets its own capture so warm-start lookups by boundary
            always land); True = ``stop_after`` reached."""
            nonlocal next_boundary
            while next_boundary is not None and min_committed >= next_boundary:
                checkpoint_sink(take_checkpoint(cycle_pos, next_boundary))
                next_boundary += checkpoint_every
            if stop_after is not None and min_committed >= stop_after:
                checkpoint_sink(take_checkpoint(cycle_pos, stop_after))
                return True
            return False

        watching = next_boundary is not None or stop_after is not None
        max_cycles = config.max_cycles
        stop_requested = False
        with spans.span("timing-loop"):
            if config.fast_forward and not faulted:
                # The selective per-pipeline idle-skip loop
                # (:meth:`_run_selective`) with a boundary check per
                # round.
                running = sum(1 for p in pipelines if not p.done)
                while running:
                    if cycle >= max_cycles:
                        raise SimulationError(
                            f"DataScalar run exceeded {max_cycles} cycles"
                        )
                    for i in range(num):
                        pipeline = pipelines[i]
                        if pipeline.done or wake[i] > cycle:
                            continue
                        start = last_tick[i]
                        if start < cycle:
                            pipeline.note_skipped(start, cycle)
                        ticks[i](cycle)
                        last_tick[i] = cycle + 1
                        if pipeline.done:
                            running -= 1
                        else:
                            wake[i] = pipeline.next_event(cycle)
                    if watching:
                        min_committed = min(p.stats.committed
                                            for p in pipelines)
                        crossed = (
                            (next_boundary is not None
                             and min_committed >= next_boundary)
                            or (stop_after is not None
                                and min_committed >= stop_after))
                        if crossed:
                            # Flush deferred stall accounting for the
                            # pipelines that were not ticked this round
                            # so the snapshot's position is complete.
                            for i in range(num):
                                pipeline = pipelines[i]
                                if not pipeline.done \
                                        and last_tick[i] <= cycle:
                                    pipeline.note_skipped(last_tick[i],
                                                          cycle + 1)
                                    last_tick[i] = cycle + 1
                            if emit_checkpoints(cycle + 1, min_committed):
                                stop_requested = True
                                break
                    if not running:
                        # Match the dense loop's exit value (one advance
                        # past the finishing tick).
                        cycle += 1
                        break
                    nxt = cycle + 1
                    target = _INF
                    for i in range(num):
                        if pipelines[i].done:
                            continue
                        event = wake[i]
                        if event <= nxt:
                            target = nxt
                            break
                        if event < target:
                            target = event
                    if target == _INF:
                        target = min(p._last_commit_cycle
                                     + DEADLOCK_CYCLES + 1
                                     for p in pipelines if not p.done)
                        for i in range(num):
                            if not pipelines[i].done and wake[i] > target:
                                wake[i] = target
                    if target > max_cycles:
                        target = max_cycles
                    if target < nxt:
                        target = nxt
                    cycle = int(target)
            else:
                # The dense / fault-mode loop.  ``_advance`` replays
                # stall accounting eagerly at jump time, so positions
                # are always complete after a tick round — no flush
                # needed before capture.
                while not all(p.done for p in pipelines):
                    if cycle >= max_cycles:
                        raise SimulationError(
                            f"DataScalar run exceeded {max_cycles} cycles"
                        )
                    if faulted:
                        if fault_acc is not None:
                            tick0 = time.perf_counter()
                            for node in nodes:
                                node.bshr.check_timeouts(cycle)
                            fault_acc.add(time.perf_counter() - tick0)
                        else:
                            for node in nodes:
                                node.bshr.check_timeouts(cycle)
                    for tick in ticks:
                        tick(cycle)
                    if watching:
                        for i in range(num):
                            last_tick[i] = cycle + 1
                        min_committed = min(p.stats.committed
                                            for p in pipelines)
                        if emit_checkpoints(cycle + 1, min_committed):
                            stop_requested = True
                            break
                    if config.fast_forward:
                        cycle = self._advance(cycle, pipelines, config,
                                              extra_event)
                    else:
                        cycle += 1

        if stop_requested:
            return None
        with spans.span("analysis"):
            return self._collect(cycle, pipelines, nodes, medium,
                                 page_table, layout_summary)

    @staticmethod
    def _chain_events(first, second):
        """Combine two optional ``f(now) -> cycle | None`` event bounds
        into their minimum (for folding a tracer's ``next_event`` into
        the idle-skip scheduler alongside the fault layer's)."""
        if second is None:
            return first
        if first is None:
            return second

        def chained(now):
            a = first(now)
            b = second(now)
            if a is None:
                return b
            if b is None:
                return a
            return min(a, b)

        return chained

    @staticmethod
    def _fault_event_fn(nodes, medium):
        """Self-generated event bound for the fault layer: the earliest
        outstanding recovery delivery or armed BSHR wait deadline.  The
        idle-skip scheduler folds this in so a jump can never cross a
        scheduled recovery action or overshoot the wait tripwire."""
        medium_next = getattr(medium, "next_event", None)

        def fault_event(now):
            bound = None
            if medium_next is not None:
                bound = medium_next(now)
            for node in nodes:
                deadline = node.bshr.next_deadline()
                if deadline is not None and (bound is None
                                             or deadline < bound):
                    bound = deadline
            return bound

        return fault_event

    @staticmethod
    def _run_selective(pipelines, ticks, wake, config) -> int:
        """Drive the timing loop with *per-pipeline* idle skipping (the
        plain fast-forward path: no faults, no tracer, no observer).

        Classic fast-forward (:meth:`_advance`) only skips cycles where
        *every* node is idle, so one busy node forces all of its idle
        peers to tick every cycle.  Here each pipeline carries its own
        wake cycle — the :meth:`Pipeline.next_event` bound computed
        right after its last tick — and simply is not ticked before it.
        The quiescence argument is unchanged: ticks before a pipeline's
        own bound do nothing but stall bookkeeping, and that bookkeeping
        is replayed exactly by one :meth:`Pipeline.note_skipped` call
        just before the next real tick (the pipeline's fetch state is
        frozen in between, so deferred replay classifies every skipped
        cycle identically).

        The one way a peer creates work for an idle pipeline is a
        broadcast delivery, and deliveries are materialized eagerly (at
        broadcast time, with absolute arrival cycles): the system's
        ``deliver`` hook zeroes the target's ``wake`` entry, forcing a
        re-tick and a fresh bound.  A pipeline with no self-generated
        event at all (``next_event`` = inf — wedged waiting on a peer)
        is woken at its deadlock-detection tick once no peer has an
        earlier event, so protocol hangs still surface as typed errors.
        """
        max_cycles = config.max_cycles
        num = len(pipelines)
        last_tick = [0] * num  # first cycle not yet stall-accounted
        running = num
        cycle = 0
        while running:
            if cycle >= max_cycles:
                raise SimulationError(
                    f"DataScalar run exceeded {max_cycles} cycles"
                )
            for i in range(num):
                pipeline = pipelines[i]
                if pipeline.done or wake[i] > cycle:
                    continue
                start = last_tick[i]
                if start < cycle:
                    pipeline.note_skipped(start, cycle)
                ticks[i](cycle)
                last_tick[i] = cycle + 1
                if pipeline.done:
                    running -= 1
                else:
                    wake[i] = pipeline.next_event(cycle)
            if not running:
                # Match the dense loop's exit value: it advances once
                # more after the tick that finished the last pipeline.
                return cycle + 1
            nxt = cycle + 1
            target = _INF
            for i in range(num):
                if pipelines[i].done:
                    continue
                event = wake[i]
                if event <= nxt:
                    target = nxt
                    break
                if event < target:
                    target = event
            if target == _INF:
                # No pipeline has a self-generated event: jump straight
                # to the earliest deadlock-detector tick and force the
                # stuck pipelines awake there so the error surfaces.
                target = min(p._last_commit_cycle + DEADLOCK_CYCLES + 1
                             for p in pipelines if not p.done)
                for i in range(num):
                    if not pipelines[i].done and wake[i] > target:
                        wake[i] = target
            if target > max_cycles:
                target = max_cycles
            if target < nxt:
                target = nxt
            cycle = int(target)
        return cycle

    @staticmethod
    def _advance(cycle: int, pipelines, config, extra_event=None) -> int:
        """Next cycle to simulate: ``cycle + 1``, or the earliest future
        event when every pipeline is provably idle until then.

        Skipped cycles are observationally idle for every node — no
        commit, issue, resolve, fetch, or interconnect activity can
        occur, only per-cycle stall counting, which
        :meth:`Pipeline.note_skipped` replays exactly.  ``extra_event``
        (fault mode) contributes pending recovery deliveries and BSHR
        wait deadlines, so idle-skip never jumps past a scheduled
        recovery action.
        """
        nxt = cycle + 1
        target = _INF
        active = False
        for pipeline in pipelines:
            if pipeline.done:
                continue
            active = True
            event = pipeline.next_event(cycle)
            if event <= nxt:
                return nxt
            if event < target:
                target = event
        if not active:
            # Everything finished this cycle: the run's cycle count must
            # not be inflated by extra_event bounds (e.g. a sampling
            # tracer's next wake-up) that lie past completion.
            return nxt
        if extra_event is not None:
            event = extra_event(cycle)
            if event is not None:
                if event <= nxt:
                    return nxt
                if event < target:
                    target = event
        if target is _INF:
            # No node has a self-generated event: the dense loop would
            # spin until a pipeline's deadlock detector fires (or the
            # cycle budget runs out) — jump straight to that tick so the
            # same error surfaces at the same cycle.
            target = min(p._last_commit_cycle + DEADLOCK_CYCLES + 1
                         for p in pipelines if not p.done)
        if target > config.max_cycles:
            target = config.max_cycles
        if target <= nxt:
            return nxt
        target = int(target)
        for pipeline in pipelines:
            pipeline.note_skipped(nxt, target)
        return target

    def _collect(self, cycles, pipelines, nodes, medium, page_table,
                 layout_summary) -> DataScalarResult:
        committed = {p.stats.committed for p in pipelines}
        if self.require_equal_commits and len(committed) != 1:
            raise ProtocolError(
                f"nodes committed different instruction counts: {committed}"
            )
        committed = {max(committed)}
        for node in nodes:
            node.validate_final_state()
        node_results = []
        for pipeline, node in zip(pipelines, nodes):
            node_results.append(NodeResult(
                node_id=node.node_id,
                pipeline=pipeline.stats,
                broadcasts_sent=node.broadcaster.stats.sent,
                late_broadcasts=node.broadcaster.stats.late,
                bshr_waits=node.bshr.stats.waits,
                bshr_found=node.bshr.stats.found_in_bshr,
                bshr_squashes=node.bshr.stats.squashes,
                bshr_arrivals=node.bshr.stats.arrivals,
                false_hits=node.tracker.stats.false_hits,
                false_misses=node.tracker.stats.false_misses,
                dcache_miss_rate=node.dcache.stats.miss_rate(),
                remote_loads=node.remote_loads,
                local_loads=node.local_loads,
                dropped_stores=node.dropped_stores,
            ))
        extra = {"unmapped_pages": page_table.unmapped_accesses}
        if hasattr(medium, "fault_stats"):
            # Fault-injected run: the medium's integrity ledger must
            # balance (every sequenced broadcast delivered, every
            # detected fault repaired) or the run is not trustworthy.
            medium.validate_final_state()
            extra["faults"] = medium.snapshot()
        l2_hits = sum(getattr(node, "l2_hits", 0) for node in nodes)
        l2_misses = sum(getattr(node, "l2_misses", 0) for node in nodes)
        if l2_hits or l2_misses:
            extra["l2_hits"] = l2_hits
            extra["l2_misses"] = l2_misses
        return DataScalarResult(
            cycles=cycles,
            instructions=committed.pop(),
            nodes=node_results,
            bus_transactions=medium.transactions,
            bus_payload_bytes=medium.payload_bytes,
            bus_utilization=medium.utilization(cycles),
            layout_summary=layout_summary,
            extra=extra,
        )
