"""Outbound broadcast path: queue -> broadcast medium -> every other node.

Paper Section 4.2: "We use a simple queue to buffer broadcasts being
placed on the global bus" with a two-cycle access penalty before the data
reach the interconnect.  The interconnect itself is pluggable (bus, ring,
or optical — see :mod:`repro.interconnect.medium`).
"""

from __future__ import annotations

from ..interconnect.medium import BroadcastMedium
from ..interconnect.queueing import LatencyQueue
from ..obs.events import EventKind


class BroadcastStats:
    """Counters behind Table 3's broadcast columns."""

    __slots__ = ("sent", "late", "payload_bytes")

    def __init__(self):
        self.sent = 0
        self.late = 0
        self.payload_bytes = 0

    @property
    def late_fraction(self) -> float:
        return self.late / self.sent if self.sent else 0.0


class Broadcaster:
    """One node's transmit side."""

    def __init__(self, node_id: int, medium: BroadcastMedium,
                 queue_latency: int, line_size: int, deliver,
                 num_peers: int = 1):
        """``deliver(src, line, arrivals)`` hands the finished broadcast
        to the other nodes (``arrivals[i]`` is node i's receive cycle,
        ``None`` for the sender).  With zero peers nothing is sent."""
        self.node_id = node_id
        self.medium = medium
        self.queue = LatencyQueue(queue_latency, name=f"bq{node_id}")
        self.line_size = line_size
        self._deliver = deliver
        self.num_peers = num_peers
        self.stats = BroadcastStats()
        self._tracer = None  # observability hook (None = untraced)

    def attach_tracer(self, tracer) -> None:
        """Emit BCAST_SEND events to ``tracer`` as this node."""
        self._tracer = tracer

    def rebind_deliver(self, deliver) -> None:
        """Point the transmit side at a new delivery hook (checkpoint
        restore: the hook is a closure over the live node list and wake
        array, so it is cut from snapshots and rewired here against the
        materialized clones)."""
        self._deliver = deliver

    def broadcast(self, now: int, line: int, late: bool = False) -> int:
        """Send ``line`` to all other nodes starting at ``now`` (the cycle
        the data are available on-chip).  Returns the last arrival cycle."""
        if self.num_peers == 0:
            return now
        queued = self.queue.enqueue(now)
        arrivals = self.medium.broadcast(queued, self.node_id, line,
                                         self.line_size)
        self.stats.sent += 1
        self.stats.payload_bytes += self.line_size
        if late:
            self.stats.late += 1
        if self._tracer is not None:
            # Emitted before delivery so each send immediately precedes
            # its arrivals in the stream (the Chrome exporter pairs
            # send -> arrival flow arrows by that ordering).
            self._tracer.emit(EventKind.BCAST_SEND, queued, self.node_id,
                              line=line, late=late, seq=self.stats.sent)
        self._deliver(self.node_id, line, arrivals)
        return max(a for a in arrivals if a is not None)
