"""The Data Commit Update Buffer.

Paper Section 4.1: "When a cache miss returns, rather than loading the
data into the cache, the line is placed into an entry of the DCUB ...
Memory operations to the same line are serviced by the data in the DCUB
... When a memory operation is committed, the cache tags are updated,
and, if necessary, the line is loaded from the DCUB into the cache.  A
DCUB entry is deallocated when the last entry in the load/store queue
that uses that line is committed."

The DCUB is what makes commit-time-only cache updates workable: issue-time
misses land here, later issue-time accesses to the same in-flight line
merge here (so one line-episode generates exactly one fetch), and commits
drain lines from here into the cache.
"""

from __future__ import annotations

from ..errors import ProtocolError
from ..obs.events import EventKind


class DCUBEntry:
    """One in-flight line."""

    __slots__ = ("line", "ready", "refs", "merged_handles", "created_at")

    def __init__(self, line: int, created_at: int):
        self.line = line
        self.ready = None
        self.refs = 0
        self.merged_handles = []
        self.created_at = created_at

    def resolve(self, cycle: int) -> None:
        """The line's data became available at ``cycle``; wake merged
        accesses."""
        self.ready = cycle
        for handle, merge_cycle in self.merged_handles:
            handle.complete(max(cycle, merge_cycle + 1))
        self.merged_handles = []


class DCUB:
    """Per-node commit update buffer, indexed by line address."""

    def __init__(self, name: str = "dcub"):
        self.name = name
        self._entries: "dict[int, DCUBEntry]" = {}
        self.allocations = 0
        self.merges = 0
        self.high_water = 0
        self._tracer = None  # observability hook (None = untraced)
        self._trace_node = 0

    def attach_tracer(self, tracer, node_id: int) -> None:
        """Emit this DCUB's events to ``tracer`` as node ``node_id``."""
        self._tracer = tracer
        self._trace_node = node_id

    def lookup(self, line: int):
        return self._entries.get(line)

    def allocate(self, line: int, now: int) -> DCUBEntry:
        """Track a new in-flight line (issue-time miss)."""
        if line in self._entries:
            raise ProtocolError(f"{self.name}: line {line:#x} already in DCUB")
        entry = DCUBEntry(line, now)
        entry.refs = 1
        self._entries[line] = entry
        self.allocations += 1
        if self._tracer is not None:
            self._tracer.emit(EventKind.DCUB_STAGE, now, self._trace_node,
                              line=line)
        if len(self._entries) > self.high_water:
            self.high_water = len(self._entries)
        return entry

    def merge(self, entry: DCUBEntry, now: int, handle) -> None:
        """A later access to an in-flight line is serviced by the DCUB."""
        entry.refs += 1
        self.merges += 1
        if entry.ready is not None:
            handle.complete(max(entry.ready, now + 1))
        else:
            entry.merged_handles.append((handle, now))

    def release(self, line: int) -> bool:
        """One referencing memory operation committed; returns True when
        the entry was deallocated (last reference gone)."""
        entry = self._entries.get(line)
        if entry is None:
            raise ProtocolError(f"{self.name}: release of unknown {line:#x}")
        entry.refs -= 1
        if entry.refs <= 0:
            if entry.merged_handles:
                raise ProtocolError(
                    f"{self.name}: deallocating line {line:#x} with "
                    f"unresolved merged accesses"
                )
            del self._entries[line]
            return True
        return False

    def occupancy(self) -> int:
        return len(self._entries)

    def assert_drained(self) -> None:
        if self._entries:
            raise ProtocolError(
                f"{self.name}: DCUB not empty at end of run: "
                f"{[hex(line) for line in self._entries]}"
            )
