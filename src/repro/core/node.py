"""One DataScalar node: the Figure 5 datapath.

A node couples an out-of-order core with split L1 caches, fast on-chip
main memory holding its fraction of the program's data, BSHRs on the
receive side, a broadcast queue on the transmit side, a DCUB realizing
commit-time cache updates, and the correspondence tracker that reconciles
issue-time and commit-time cache outcomes.

Memory behaviour per the execution model:

* replicated pages — loads and stores complete locally; no traffic.
* owned communicated pages — a canonical load miss reads local memory and
  *broadcasts* the line (eagerly at issue, or reparatively at commit after
  a false hit); stores complete locally and are never sent.
* unowned communicated pages — a load miss waits in the BSHR for the
  owner's broadcast (no request is ever sent); stores are dropped.
"""

from __future__ import annotations

from ..cpu.interface import LoadHandle, MemoryInterface
from ..memory.cache import Cache
from ..memory.mainmem import BankedMemory
from ..memory.page_table import PageTable
from ..obs.events import EventKind
from ..params import NodeConfig
from .bshr import BSHRFile
from .broadcast import Broadcaster
from .correspondence import CorrespondenceTracker
from .dcub import DCUB


class _PrimaryHandle(LoadHandle):
    """The load that initiates a line fetch; resolving it resolves the
    DCUB entry (waking every merged access)."""

    __slots__ = ("entry",)

    def __init__(self, addr, size, issued_at, entry):
        super().__init__(addr, size, issued_at)
        self.entry = entry

    def complete(self, cycle: int) -> None:
        super().complete(cycle)
        self.entry.resolve(cycle)


class DataScalarNode(MemoryInterface):
    """The per-chip memory system behind one core."""

    def __init__(self, node_id: int, config: NodeConfig,
                 page_table: PageTable, medium, deliver,
                 num_peers: int = 1):
        self.node_id = node_id
        self.config = config
        self.page_table = page_table
        self.icache = Cache(config.icache, name=f"i{node_id}")
        self.dcache = Cache(config.dcache, name=f"d{node_id}")
        self.local_mem = BankedMemory(
            config.memory.onchip_latency,
            num_banks=config.memory.num_banks,
            interleave_bytes=config.dcache.line_size,
            name=f"mem{node_id}",
        )
        self.bshr = BSHRFile(config.bshr, name=f"bshr{node_id}")
        self.dcub = DCUB(name=f"dcub{node_id}")
        if config.tlb_entries:
            from ..memory.tlb import TLB

            # TLB misses walk the locked page table in local memory.
            self.dtlb = TLB(config.tlb_entries, walker=self.local_mem,
                            name=f"dtlb{node_id}")
        else:
            self.dtlb = None
        self.tracker = CorrespondenceTracker()
        self.broadcaster = Broadcaster(
            node_id, medium, config.broadcast_queue_latency,
            config.dcache.line_size, deliver, num_peers=num_peers,
        )
        # Hot-path constants (load_issue runs once per load issue).
        self._d_hit_latency = config.dcache.hit_latency
        self._page_size = config.memory.page_size
        #: Loads that bypassed the cache but still update it at commit.
        self.remote_loads = 0
        self.local_loads = 0
        self.dropped_stores = 0
        self.local_stores = 0
        self._tracer = None  # observability hook (None = untraced)

    def attach_tracer(self, tracer) -> None:
        """Emit this node's (and its subsystems') events to ``tracer``.

        Tracing is purely observational: no architectural state or
        reported statistic changes."""
        self._tracer = tracer
        self.bshr.attach_tracer(tracer, self.node_id)
        self.dcub.attach_tracer(tracer, self.node_id)
        self.broadcaster.attach_tracer(tracer)

    # ------------------------------------------------------------------
    # Issue side.
    # ------------------------------------------------------------------
    def load_issue(self, now: int, addr: int, size: int) -> LoadHandle:
        if self.dtlb is not None:
            now = self.dtlb.access(now, addr, self._page_size)
        line = self.dcache.line_addr(addr)
        hit_latency = self._d_hit_latency
        if self.dcache.lookup(addr):
            handle = LoadHandle(addr, size, now)
            handle.issue_hit = True
            handle.complete(now + hit_latency)
            return handle
        entry = self.dcub.lookup(line)
        if entry is not None:
            handle = LoadHandle(addr, size, now)
            handle.issue_hit = False
            handle.dcub_line = line
            self.dcub.merge(entry, now, handle)
            return handle
        entry = self.dcub.allocate(line, now)  # refs=1 for the primary
        handle = _PrimaryHandle(addr, size, now, entry)
        handle.issue_hit = False
        handle.dcub_line = line
        pte = self.page_table.entry_for(addr)
        if pte.replicated or pte.owner == self.node_id:
            self.local_loads += 1
            done = self.local_mem.access(now + hit_latency, line)
            if not pte.replicated and not self.config.commit_time_broadcasts:
                # Owner of a communicated line: eager ESP broadcast.
                # (With commit_time_broadcasts the send is deferred to
                # commit — the conservative speculative-broadcast mode —
                # and happens via the canonical-miss settlement path.)
                self.broadcaster.broadcast(done, line, late=False)
                self.tracker.note_broadcast_sent(line)
            handle.complete(done)
        else:
            self.remote_loads += 1
            self.tracker.note_bshr_wait(line)
            self.bshr.load(now, line, handle)
        return handle

    def private_load_issue(self, now: int, addr: int,
                           size: int) -> LoadHandle:
        """Section 5.1 private load: local memory, no protocol activity.

        Private loads exist only at the region's owner (other nodes skip
        the region), so they must not touch the correspondence-managed
        cache state — otherwise caches would diverge."""
        handle = LoadHandle(addr, size, now)
        handle.complete(self.local_mem.access(now, addr))
        self.local_loads += 1
        return handle

    # ------------------------------------------------------------------
    # Commit side: canonical cache update + correspondence settlement.
    # ------------------------------------------------------------------
    def commit_mem(self, now: int, addr: int, size: int, is_store: bool,
                   handle) -> None:
        dcache = self.dcache
        result = dcache.commit_access(addr, is_write=is_store)
        # ``commit_access`` evaluates residency before mutating, so its
        # ``hit`` is exactly the canonical (pre-access) outcome — no
        # separate ``lookup`` probe needed.
        canonical_hit = result.hit
        if self._tracer is not None:
            self._tracer.emit(EventKind.CACHE_COMMIT, now, self.node_id,
                              line=dcache.line_addr(addr), store=is_store,
                              hit=canonical_hit, filled=result.filled,
                              evicted=result.evicted)
        if result.writeback is not None:
            self._complete_writeback(now, result.writeback)
        if handle is not None and handle.dcub_line is not None:
            if self.dcub.release(handle.dcub_line) \
                    and self._tracer is not None:
                self._tracer.emit(EventKind.DCUB_APPLY, now, self.node_id,
                                  line=handle.dcub_line)
        if not is_store and handle is not None and handle.issue_hit is not None:
            self.tracker.classify(handle.issue_hit, canonical_hit)
        if is_store:
            self._complete_store(now, addr, size, canonical_hit)
        if result.filled and not canonical_hit:
            self._settle_canonical_miss(now, addr, dcache.line_addr(addr))

    def _settle_canonical_miss(self, now: int, addr: int, line: int) -> None:
        """A canonical line fetch committed: balance broadcasts against
        waits so every broadcast has exactly one consumer per node."""
        pte = self.page_table.entry_for(addr)
        if pte.replicated:
            return
        if pte.owner == self.node_id:
            if self.tracker.settle_canonical_miss_owner(line):
                if self._tracer is not None:
                    self._tracer.emit(EventKind.FALSE_HIT_REPAIR, now,
                                      self.node_id, line=line,
                                      action="late-broadcast")
                available = self.local_mem.access(now, line)
                self.broadcaster.broadcast(available, line, late=True)
        else:
            if self.tracker.settle_canonical_miss_nonowner(line):
                if self._tracer is not None:
                    self._tracer.emit(EventKind.FALSE_HIT_REPAIR, now,
                                      self.node_id, line=line,
                                      action="discard")
                self.bshr.schedule_discard(line)

    def _complete_store(self, now: int, addr: int, size: int,
                        cached: bool) -> None:
        """Stores complete only where the data lives (paper Section 2);
        they never generate interconnect traffic."""
        if cached:
            return  # completes in the cache; write-back handles memory
        pte = self.page_table.entry_for(addr)
        if pte.replicated or pte.owner == self.node_id:
            self.local_stores += 1
            self.local_mem.access(now, addr)  # occupies a bank, no stall
        else:
            self.dropped_stores += 1

    def _complete_writeback(self, now: int, line: int) -> None:
        """Dirty evictions: written to local memory at the owner (or
        everywhere for replicated lines), dropped at non-owners."""
        pte = self.page_table.entry_for(line)
        if pte.replicated or pte.owner == self.node_id:
            self.local_mem.access(now, line)
        else:
            self.dropped_stores += 1

    # ------------------------------------------------------------------
    # Instruction fetch (text replicated at every node).
    # ------------------------------------------------------------------
    def ifetch_line(self, now: int, line_addr: int) -> int:
        result = self.icache.commit_access(line_addr, is_write=False)
        if result.hit:
            return now
        return self.local_mem.access(now, line_addr)

    # ------------------------------------------------------------------
    # End-of-run validation.
    # ------------------------------------------------------------------
    def drain(self, now: int) -> bool:
        return True

    def validate_final_state(self) -> None:
        """Raise :class:`ProtocolError` if the protocol leaked state."""
        from ..errors import ProtocolError

        self.bshr.assert_drained()
        self.dcub.assert_drained()
        unmatched = self.tracker.unmatched_waits()
        if unmatched:
            raise ProtocolError(
                f"node {self.node_id}: {unmatched} BSHR waits never matched "
                f"a canonical miss — correspondence accounting leak"
            )
