"""Executing result communication in the timing simulator (Section 5.1).

"It is possible for a processor to temporarily deviate from the ESP
model and execute a private computation, broadcasting only the result —
not the operands — to the other processors."

Given the private regions found by
:class:`~repro.core.resultcomm.ResultCommunicationAnalyzer`, the
:class:`ResultCommSystem` runs the program with those regions executed
*only at their owner*:

* the owner's in-region memory operations become **private** — they read
  local memory directly and bypass the correspondence-managed cache, so
  cache states stay identical across nodes;
* the other nodes **skip** the region's instructions entirely; and
* at the region boundary every node executes a synthetic *mailbox load*
  to a per-region address owned by the region's owner — the owner's
  canonical miss broadcasts the line (the "result"), and the other
  nodes' BSHR waits consume it.  The existing ESP/ledger machinery thus
  carries the result with full protocol balance.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.interpreter import Interpreter
from ..isa.opcodes import OpClass
from ..isa.trace import DynInstr
from .resultcomm import ResultCommunicationAnalyzer
from .system import DataScalarSystem

_LOAD = int(OpClass.LOAD)
_STORE = int(OpClass.STORE)

#: Mailbox pages start here — far above every program segment; the page
#: table's deterministic fallback (owner = page % num_nodes) maps them.
MAILBOX_BASE = 0x8000_0000


@dataclass(frozen=True)
class ExecRegion:
    """One region scheduled for private execution."""

    start_seq: int
    end_seq: int
    owner: int

    def __post_init__(self):
        if self.end_seq < self.start_seq:
            raise ValueError("region ends before it starts")


def mailbox_address(region_index: int, owner: int, num_nodes: int,
                    page_size: int) -> int:
    """A unique address on a page the fallback maps to ``owner``."""
    page = (MAILBOX_BASE // page_size) + region_index * num_nodes
    page += (owner - page) % num_nodes
    return page * page_size


def select_exec_regions(program, page_table, min_loads: int = 8,
                        limit=None) -> "list[ExecRegion]":
    """Find analyzer regions worth private execution."""
    analyzer = ResultCommunicationAnalyzer(page_table, min_loads=min_loads)
    report = analyzer.analyze(Interpreter(program).trace(limit=limit))
    return [ExecRegion(r.start_seq, r.end_seq, r.owner)
            for r in report.regions]


def filter_trace(trace, regions, node_id: int, num_nodes: int,
                 page_size: int):
    """Rewrite one node's stream for private-region execution.

    In-region records: kept (memory ops marked private) at the owner,
    dropped elsewhere.  After each region, a synthetic mailbox load is
    appended at every node; at the owner it carries a dependence on the
    region's last produced register so the "result" broadcast waits for
    the computation.
    """
    regions = sorted(regions, key=lambda r: r.start_seq)
    region_index = 0
    new_seq = 0
    last_dest = None
    for dyn in trace:
        while (region_index < len(regions)
               and dyn.seq > regions[region_index].end_seq):
            region_index += 1  # limit may end a region early
        region = regions[region_index] if region_index < len(regions) \
            else None
        in_region = (region is not None
                     and region.start_seq <= dyn.seq <= region.end_seq)
        emit_mailbox = in_region and dyn.seq == region.end_seq
        if in_region:
            if node_id == region.owner:
                if dyn.dest is not None:
                    last_dest = dyn.dest
                if dyn.op_class in (_LOAD, _STORE):
                    dyn.private = True
                dyn.seq = new_seq
                new_seq += 1
                yield dyn
        else:
            dyn.seq = new_seq
            new_seq += 1
            yield dyn
        if emit_mailbox:
            srcs = ()
            if node_id == region.owner and last_dest is not None:
                srcs = (last_dest,)
            mailbox = DynInstr(
                new_seq,
                dyn.pc,
                _LOAD,
                None,
                srcs,
                mailbox_address(region_index, region.owner, num_nodes,
                                page_size),
                4,
            )
            new_seq += 1
            yield mailbox
            region_index += 1
            last_dest = None


class ResultCommSystem(DataScalarSystem):
    """DataScalar with Section 5.1 result communication enabled.

    Nodes commit different instruction counts (non-owners skip regions),
    so the SPSD equality check is relaxed; protocol-ledger validation
    still applies in full.
    """

    require_equal_commits = False

    def __init__(self, config=None, regions=None):
        super().__init__(config)
        self.regions = list(regions or [])

    def _make_trace(self, program, node_id: int, limit):
        trace = Interpreter(program).trace(limit=limit)
        if not self.regions:
            return trace
        return filter_trace(trace, self.regions, node_id,
                            self.config.num_nodes,
                            self.config.node.memory.page_size)


def run_with_result_communication(program, config, min_loads: int = 8,
                                  limit=None):
    """Convenience: analyze, then run with and without the optimization.

    Returns ``(baseline_result, resultcomm_result, regions)``.
    """
    from ..memory.layout import LayoutSpec, build_page_table

    spec = LayoutSpec(
        num_nodes=config.num_nodes,
        page_size=config.node.memory.page_size,
        distribution_block_pages=config.distribution_block_pages,
        replicate_text=config.replicate_text,
    )
    table, _ = build_page_table(program, spec)
    regions = select_exec_regions(program, table, min_loads=min_loads,
                                  limit=limit)
    baseline = DataScalarSystem(config).run(program, limit=limit)
    optimized = ResultCommSystem(config, regions).run(program, limit=limit)
    return baseline, optimized, regions
