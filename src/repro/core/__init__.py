"""The DataScalar execution model: ESP, BSHR, DCUB, correspondence."""

from .bshr import BSHRFile, BSHRStats
from .broadcast import Broadcaster, BroadcastStats
from .correspondence import CorrespondenceStats, CorrespondenceTracker
from .datathread import DatathreadAnalyzer, DatathreadReport, analyze_stream
from .dcub import DCUB, DCUBEntry
from .esp import ESPResult, MassiveMemoryMachine
from .hybrid import (
    HybridResult,
    HybridSystem,
    ParallelPhase,
    PhaseResult,
    SerialPhase,
)
from .node import DataScalarNode
from .placement import (
    AffinityGraph,
    PlacementPlan,
    plan_placement,
    round_robin_placement,
)
from .replication import ReplicationPlan, plan_replication, select_hot_pages
from .resultcomm import (
    PrivateRegion,
    ResultCommReport,
    ResultCommunicationAnalyzer,
)
from .resultcomm_exec import (
    ExecRegion,
    ResultCommSystem,
    run_with_result_communication,
    select_exec_regions,
)
from .system import DataScalarResult, DataScalarSystem, NodeResult

__all__ = [
    "BSHRFile",
    "BSHRStats",
    "Broadcaster",
    "BroadcastStats",
    "CorrespondenceStats",
    "CorrespondenceTracker",
    "DatathreadAnalyzer",
    "DatathreadReport",
    "analyze_stream",
    "DCUB",
    "DCUBEntry",
    "ESPResult",
    "MassiveMemoryMachine",
    "HybridResult",
    "HybridSystem",
    "ParallelPhase",
    "PhaseResult",
    "SerialPhase",
    "AffinityGraph",
    "PlacementPlan",
    "plan_placement",
    "round_robin_placement",
    "DataScalarNode",
    "ReplicationPlan",
    "plan_replication",
    "select_hot_pages",
    "PrivateRegion",
    "ResultCommReport",
    "ResultCommunicationAnalyzer",
    "ExecRegion",
    "ResultCommSystem",
    "run_with_result_communication",
    "select_exec_regions",
    "DataScalarResult",
    "DataScalarSystem",
    "NodeResult",
]
