"""Message types carried by the global interconnect.

Asynchronous ESP broadcasts must carry an address/tag because different
nodes issue broadcasts in an unpredictable order (paper Section 3.1); the
tag overhead is charged by :meth:`BusConfig.transfer_cycles`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from types import MappingProxyType


class MessageKind(Enum):
    """Every transaction the simulated interconnects carry."""

    #: ESP data broadcast: owner pushes a cache line to all other nodes.
    BROADCAST = "broadcast"
    #: Traditional-system read request (address only).
    REQUEST = "request"
    #: Traditional-system read response (a cache line).
    RESPONSE = "response"
    #: Traditional-system write-back of a dirty line to off-chip memory.
    WRITEBACK = "writeback"
    #: Recovery-only NACK: a receiver rejects an ECC-corrupt broadcast.
    NACK = "nack"
    #: Recovery-only retransmit request (the ESP-forbidden request path,
    #: permitted solely on the recovery slow path — see docs/protocol.md).
    RETRANSMIT_REQUEST = "retransmit_request"
    #: Recovery-only unicast retransmission of a lost/corrupt line.
    RETRANSMIT = "retransmit"


@dataclass(frozen=True)
class Message:
    """One interconnect transaction."""

    kind: MessageKind
    src: int
    line_addr: int
    payload_bytes: int
    #: Sequence tag distinguishing repeated broadcasts of one address.
    tag: int = 0
    #: Extra annotations (e.g. ``late=True`` for reparative broadcasts).
    #: Snapshotted into a read-only mapping at construction: one Message
    #: fans out to every receiver, so in-flight mutation (e.g. fault
    #: metadata attached at one hop) would alias across receivers.
    #: Excluded from compare/hash — annotations describe a transfer, they
    #: do not identify it.
    meta: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError("payload_bytes must be >= 0")
        object.__setattr__(self, "meta", MappingProxyType(dict(self.meta)))

    @property
    def is_data(self) -> bool:
        """True when the message carries a data payload."""
        return self.kind in (MessageKind.BROADCAST, MessageKind.RESPONSE,
                             MessageKind.WRITEBACK)
