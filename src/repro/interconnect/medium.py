"""Pluggable broadcast media for the DataScalar transmit path.

Paper Section 4.4 weighs three ways to deliver ESP broadcasts:

* a **bus** — "broadcasts on a bus are free, since every bus transaction
  is an implicit broadcast", but it serializes and won't scale;
* a **ring** (e.g. SCI) — "operations are observed by all nodes if the
  sender is responsible for removing its own message"; links pipeline,
  so arrival times stagger around the ring; and
* **free-space optics** — "extremely cheap (essentially free)
  broadcasts" for large systems.

Each medium implements ``broadcast(now, src, line, payload_bytes) ->
arrivals`` where ``arrivals[i]`` is the cycle node ``i`` has the data
(``None`` for the sender) — the DataScalar system feeds these straight
into the receivers' BSHRs.

Every medium here delivers perfectly.  Unreliable transport is layered
on top: :class:`repro.faults.FaultyMedium` wraps any of these and
injects seeded drops/corruption/jitter, returning *recovered* arrival
cycles for faulted deliveries (see ``docs/protocol.md``, "Failure model
and recovery").
"""

from __future__ import annotations

from ..errors import ConfigError
from ..obs.events import EventKind
from ..params import BusConfig
from .bus import Bus
from .message import Message, MessageKind
from .ring import Ring


class BroadcastMedium:
    """Interface shared by every broadcast transport."""

    #: Observability hook (``None`` = untraced, zero overhead).
    tracer = None

    def attach_tracer(self, tracer) -> None:
        """Emit MEDIUM_XFER events to ``tracer`` (node = source)."""
        self.tracer = tracer

    def broadcast(self, now: int, src: int, line: int,
                  payload_bytes: int) -> "list":
        raise NotImplementedError

    @property
    def transactions(self) -> int:
        raise NotImplementedError

    @property
    def payload_bytes(self) -> int:
        raise NotImplementedError

    def utilization(self, cycles: int) -> float:
        return 0.0

    def next_event(self, now: int):
        """Earliest medium-generated future event after ``now``, or
        ``None``.  The perfect media materialize every delivery as an
        absolute arrival cycle at broadcast time, so they never hold
        deferred events; media with deferred actions (e.g. the fault
        layer's recovery deliveries) override this so the idle-skip
        scheduler cannot jump past them.
        """
        return None

    def state_key(self, horizon: int = 0) -> tuple:
        """Deterministic transport-state fingerprint for checkpoint
        summaries.  ``horizon`` is the cycle the snapshot was taken at;
        media whose deferred state is lazily garbage-collected (the
        fault layer) use it to count only still-live events."""
        return (type(self).__name__, self.transactions, self.payload_bytes)


class BusMedium(BroadcastMedium):
    """The paper's evaluated transport: one serializing bus."""

    def __init__(self, config: BusConfig, num_nodes: int):
        self.bus = Bus(config)
        self.num_nodes = num_nodes
        self._tag = 0

    def broadcast(self, now, src, line, payload_bytes):
        self._tag += 1
        message = Message(MessageKind.BROADCAST, src=src, line_addr=line,
                          payload_bytes=payload_bytes, tag=self._tag)
        start, done = self.bus.transfer(now, message)
        if self.tracer is not None:
            self.tracer.emit(EventKind.MEDIUM_XFER, now, src, line=line,
                             start=start, done=done,
                             payload_bytes=payload_bytes)
        return [None if node == src else done
                for node in range(self.num_nodes)]

    @property
    def transactions(self):
        return self.bus.stats.transactions

    @property
    def payload_bytes(self):
        return self.bus.stats.payload_bytes

    def utilization(self, cycles):
        return self.bus.stats.utilization(cycles)

    def state_key(self, horizon: int = 0) -> tuple:
        return super().state_key(horizon) + (
            self.bus.next_free(), self.bus.stats.busy_cycles, self._tag)


class RingMedium(BroadcastMedium):
    """A unidirectional ring: staggered arrivals, pipelined links.

    Point-to-point links need no arbitration and clock much faster than
    a shared multi-drop bus (the paper cites SCI's "high-performance
    capability"), so by default each link runs at the processor clock;
    pass ``link_divisor`` to slow it.
    """

    def __init__(self, config: BusConfig, num_nodes: int,
                 hop_latency: int = 1, link_divisor: int = 1):
        import dataclasses

        link_config = dataclasses.replace(
            config,
            cycles_per_bus_cycle=link_divisor,
            arbitration_bus_cycles=0,
        )
        self.ring = Ring(link_config, num_nodes, hop_latency=hop_latency)
        self.num_nodes = num_nodes
        self._tag = 0
        self._payload = 0

    def broadcast(self, now, src, line, payload_bytes):
        self._tag += 1
        message = Message(MessageKind.BROADCAST, src=src, line_addr=line,
                          payload_bytes=payload_bytes, tag=self._tag)
        arrivals = self.ring.broadcast(now, message)
        self._payload += payload_bytes
        if self.tracer is not None:
            last = max(arrivals[node] for node in range(self.num_nodes)
                       if node != src)
            self.tracer.emit(EventKind.MEDIUM_XFER, now, src, line=line,
                             start=now, done=last,
                             payload_bytes=payload_bytes)
        return [None if node == src else arrivals[node]
                for node in range(self.num_nodes)]

    @property
    def transactions(self):
        return self.ring.messages

    @property
    def payload_bytes(self):
        return self._payload

    def state_key(self, horizon: int = 0) -> tuple:
        return super().state_key(horizon) + (self._tag,)


class OpticalMedium(BroadcastMedium):
    """Free-space optics: constant latency, no contention.

    Every broadcast reaches every node ``latency`` cycles after the data
    are ready — the paper's "essentially free" broadcasts.
    """

    def __init__(self, num_nodes: int, latency: int = 4):
        if latency < 0:
            raise ConfigError("optical latency must be >= 0")
        self.num_nodes = num_nodes
        self.latency = latency
        self._transactions = 0
        self._payload = 0

    def broadcast(self, now, src, line, payload_bytes):
        self._transactions += 1
        self._payload += payload_bytes
        arrival = now + self.latency
        if self.tracer is not None:
            self.tracer.emit(EventKind.MEDIUM_XFER, now, src, line=line,
                             start=now, done=arrival,
                             payload_bytes=payload_bytes)
        return [None if node == src else arrival
                for node in range(self.num_nodes)]

    @property
    def transactions(self):
        return self._transactions

    @property
    def payload_bytes(self):
        return self._payload


def make_medium(kind: str, config: BusConfig, num_nodes: int,
                **kwargs) -> BroadcastMedium:
    """Factory: ``"bus"``, ``"ring"``, or ``"optical"``."""
    if kind == "bus":
        return BusMedium(config, num_nodes)
    if kind == "ring":
        return RingMedium(config, num_nodes, **kwargs)
    if kind == "optical":
        return OpticalMedium(num_nodes, **kwargs)
    raise ConfigError(f"unknown broadcast medium {kind!r}")
