"""Simple queue timing models.

The paper charges a two-cycle penalty in the broadcast queue before data
reach the global bus, and the same penalty at the traditional system's
network interface.  :class:`LatencyQueue` models a FIFO with a fixed
service latency and single-item-per-cycle drain.
"""

from __future__ import annotations

from ..errors import ConfigError


class LatencyQueue:
    """FIFO with fixed latency and unit drain bandwidth.

    ``enqueue(now)`` returns the cycle the item emerges: at least
    ``now + latency``, and at least one cycle after the previous item.
    """

    def __init__(self, latency: int, name: str = "queue"):
        if latency < 0:
            raise ConfigError("queue latency must be >= 0")
        self.latency = latency
        self.name = name
        self._last_out = -1
        self.items = 0
        self.total_delay = 0

    def enqueue(self, now: int) -> int:
        out = max(now + self.latency, self._last_out + 1)
        self._last_out = out
        self.items += 1
        self.total_delay += out - now
        return out

    def mean_delay(self) -> float:
        return self.total_delay / self.items if self.items else 0.0

    def reset(self) -> None:
        self._last_out = -1
        self.items = 0
        self.total_delay = 0


class BoundedQueue(LatencyQueue):
    """A :class:`LatencyQueue` that also tracks occupancy high-water mark.

    Occupancy is approximated from enqueue/drain times; the DataScalar
    receive path uses it to flag BSHR-style queue pressure.
    """

    def __init__(self, latency: int, capacity: int, name: str = "queue"):
        super().__init__(latency, name)
        if capacity < 1:
            raise ConfigError("queue capacity must be >= 1")
        self.capacity = capacity
        self._in_flight: "list[int]" = []
        self.high_water = 0
        self.overflows = 0

    def enqueue(self, now: int) -> int:
        self._in_flight = [t for t in self._in_flight if t > now]
        if len(self._in_flight) >= self.capacity:
            self.overflows += 1
        out = super().enqueue(now)
        self._in_flight.append(out)
        self.high_water = max(self.high_water, len(self._in_flight))
        return out
