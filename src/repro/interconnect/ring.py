"""A point-to-point ring interconnect.

The paper envisions rings (e.g. the SCI standard) as a higher-performance
alternative to the bus: "on a ring, operations are observed by all nodes
if the sender is responsible for removing its own message" (Section 4.4).
A broadcast therefore circulates the whole ring; per-link transfers of
different messages may overlap, unlike the bus.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..params import BusConfig
from .message import Message


class Ring:
    """A unidirectional slotted ring of ``num_nodes`` stations.

    Each hop moves a message one station in
    ``hop_latency + serialization`` cycles, where serialization comes from
    the link width/clock in ``config``.  Each outbound link is busy while
    a message crosses it, so independent messages pipeline around the
    ring.  ``broadcast`` returns the arrival time at every station.
    """

    def __init__(self, config: BusConfig, num_nodes: int, hop_latency: int = 1):
        if num_nodes < 1:
            raise ConfigError("ring needs at least one node")
        if hop_latency < 0:
            raise ConfigError("hop_latency must be >= 0")
        self.config = config
        self.num_nodes = num_nodes
        self.hop_latency = hop_latency
        self._link_free = [0] * num_nodes
        self.messages = 0

    def _hop_cycles(self, payload_bytes: int) -> int:
        return self.hop_latency + self.config.transfer_cycles(payload_bytes)

    def broadcast(self, now: int, message: Message) -> "list[int]":
        """Send from ``message.src`` around the ring; returns per-node
        arrival cycles (the source's own slot holds the removal time)."""
        arrivals = [0] * self.num_nodes
        hop = self._hop_cycles(message.payload_bytes)
        time = now
        station = message.src
        for _ in range(self.num_nodes):
            start = max(time, self._link_free[station])
            done = start + hop
            self._link_free[station] = done
            station = (station + 1) % self.num_nodes
            arrivals[station] = done
            time = done
        self.messages += 1
        return arrivals

    def send(self, now: int, message: Message, dest: int) -> int:
        """Point-to-point send; returns arrival time at ``dest``."""
        hop = self._hop_cycles(message.payload_bytes)
        time = now
        station = message.src
        while station != dest:
            start = max(time, self._link_free[station])
            done = start + hop
            self._link_free[station] = done
            station = (station + 1) % self.num_nodes
            time = done
        self.messages += 1
        return time

    def reset(self) -> None:
        self._link_free = [0] * self.num_nodes
        self.messages = 0
