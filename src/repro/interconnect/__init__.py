"""Interconnect substrates: messages, queues, broadcast bus, ring."""

from .bus import Bus, BusStats
from .medium import (
    BroadcastMedium,
    BusMedium,
    OpticalMedium,
    RingMedium,
    make_medium,
)
from .message import Message, MessageKind
from .queueing import BoundedQueue, LatencyQueue
from .ring import Ring

__all__ = [
    "Bus",
    "BusStats",
    "BroadcastMedium",
    "BusMedium",
    "OpticalMedium",
    "RingMedium",
    "make_medium",
    "Message",
    "MessageKind",
    "BoundedQueue",
    "LatencyQueue",
    "Ring",
]
