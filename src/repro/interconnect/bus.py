"""The global broadcast bus.

"Broadcasts on a bus are free, since every bus transaction is an implicit
broadcast" (paper Section 4.4) — so one shared bus carries both ESP
broadcasts (DataScalar) and request/response/write-back transactions
(traditional baseline), arbitrated first-come first-served.
"""

from __future__ import annotations

from ..params import BusConfig
from .message import Message, MessageKind


class BusStats:
    """Traffic accounting: transactions, payload bytes, busy cycles."""

    __slots__ = ("transactions", "payload_bytes", "wire_bytes", "busy_cycles",
                 "by_kind")

    def __init__(self):
        self.transactions = 0
        self.payload_bytes = 0
        self.wire_bytes = 0
        self.busy_cycles = 0
        self.by_kind = {kind: 0 for kind in MessageKind}

    def utilization(self, total_cycles: int) -> float:
        return self.busy_cycles / total_cycles if total_cycles else 0.0


class Bus:
    """A single split-transaction bus shared by every node.

    ``transfer(now, message)`` arbitrates (FCFS behind the previous
    transaction), occupies the bus for the message's transfer time, and
    returns ``(start, done)``: ``done`` is when the payload has fully
    arrived at every other node.
    """

    def __init__(self, config: BusConfig):
        self.config = config
        self._next_free = 0
        self.stats = BusStats()

    def transfer(self, now: int, message: Message) -> "tuple[int, int]":
        start = max(now, self._next_free)
        cycles = self.config.transfer_cycles(message.payload_bytes)
        done = start + cycles
        self._next_free = done
        stats = self.stats
        stats.transactions += 1
        stats.payload_bytes += message.payload_bytes
        stats.wire_bytes += message.payload_bytes + self.config.tag_bytes
        stats.busy_cycles += cycles
        stats.by_kind[message.kind] += 1
        return start, done

    def next_free(self) -> int:
        """Earliest cycle a new transaction could begin arbitration."""
        return self._next_free

    def reset(self) -> None:
        self._next_free = 0
        self.stats = BusStats()
