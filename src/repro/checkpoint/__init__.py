"""Checkpoint/restore for the timing simulator.

See :mod:`repro.checkpoint.state` for the capture model and
:class:`repro.runner.sharded.ShardedRun` for the executor that fans a
single long run's shards across the sweep process pool.
"""

from .state import (CHECKPOINT_VERSION, Checkpoint, advance_trace, capture,
                    datascalar_cut_edges, materialize, pipeline_cut_edges)

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "advance_trace",
    "capture",
    "datascalar_cut_edges",
    "materialize",
    "pipeline_cut_edges",
]
