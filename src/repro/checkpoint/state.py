"""Serializable full-simulator state: capture, materialize, advance.

The timing simulator's state is an object graph of plain data — RUU
windows, LSQ entries, free lists, branch-predictor tables, cache tag
arrays, BSHR/DCUB queues, TLBs, the page table, interconnect timing
state, and the fault layer's pending retransmits.  The one thing that
cannot be serialized is *code position*: the functional front end is a
running generator (the predecoded interpreter or a program-specialized
stepper), and generators neither deep-copy nor pickle.

A :class:`Checkpoint` therefore splits a run into two parts:

* the **machine state** — deep-copied in *one* pass with a shared memo,
  so every cross-structure reference (a ``LoadHandle`` shared by a
  pipeline's pending-load list and a BSHR waiter queue, a ``DCUBEntry``
  named by several merged handles, a TLB's walker pointing at its
  node's memory banks) stays one object in the snapshot exactly as it
  is one object live; and
* the **front-end position** — how many dynamic records each node's
  trace view has consumed (:class:`repro.isa.fanout.CountingTrace`).
  Restore rebuilds the functional front end from the program — the
  same engine the original run chose — and fast-forwards it by that
  count, which also reconstructs the fan-out tee queues record for
  record (the view that produced the newest source record always has
  an empty pending queue, so per-view replay counts determine the
  whole tee state).

Edges that must *not* be followed into the snapshot — the live trace
iterators, the broadcast-delivery closure, span accumulators, tracers —
are cut by seeding the deepcopy memo: ``copy.deepcopy`` consults the
memo *before* type dispatch, so a pre-seeded ``id(obj) -> None`` entry
excises the edge (even for otherwise-uncopyable objects like
generators) without mutating the live simulator.  Restore rewires each
cut edge against the materialized clones.

Snapshots are fully picklable, which is what lets
:class:`repro.runner.sharded.ShardedRun` ship them through the
content-addressed result cache to pool workers.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from ..errors import SimulationError
from ..obs import spans

#: Stamp of the snapshot layout.  Folded into every checkpoint digest
#: (:func:`repro.runner.digest.checkpoint_digest`), so cached blobs can
#: never alias across format changes.  Bump when the ``state`` tree's
#: shape changes.
CHECKPOINT_VERSION = "1"


@dataclass
class Checkpoint:
    """One resumable position of a timing simulation.

    ``cycle`` is the next cycle to simulate (capture happens after
    every tick of cycle ``cycle - 1``); ``committed`` is the minimum
    per-node committed-instruction count at capture; ``consumed`` is
    the per-node count of dynamic records the front end has delivered
    (fetch buffer included).  ``state`` is the deep-copied machine
    state; its keys depend on ``kind`` (``"datascalar"``,
    ``"traditional"``, or ``"perfect"``).
    """

    kind: str
    cycle: int
    committed: int
    consumed: "list[int]"
    state: dict
    version: str = CHECKPOINT_VERSION
    meta: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Deterministic structural summaries (shard stitching verification).
    # ------------------------------------------------------------------
    def summary(self) -> tuple:
        """A deterministic tuple over every externally visible number in
        the snapshot — committed counts, stall counters, occupancies,
        interconnect and fault-layer state.  Two checkpoints of the same
        simulation position always summarize identically, regardless of
        which process produced them; :class:`~repro.runner.sharded.
        ShardedRun` compares a shard's end state against the cached next
        checkpoint through this."""
        state = self.state
        head = (self.kind, self.version, self.cycle, self.committed,
                tuple(self.consumed))
        if self.kind == "datascalar":
            pipelines = state["pipelines"]
            nodes = state["nodes"]
            medium = state["medium"]
            page_table = state["page_table"]
            return head + (
                tuple(_pipeline_summary(p) for p in pipelines),
                tuple(_node_summary(n) for n in nodes),
                medium.state_key(self.cycle),
                (page_table.unmapped_accesses, len(page_table._entries)),
                tuple(state["wake"]),
                tuple(state["last_tick"]),
            )
        if self.kind == "traditional":
            memory = state["memory"]
            return head + (
                _pipeline_summary(state["pipeline"]),
                (memory.requests, memory.onchip_fills,
                 memory.writethroughs_offchip, memory.writebacks_offchip,
                 memory.bus.stats.transactions,
                 memory.bus.stats.payload_bytes,
                 memory.dcub.occupancy()),
            )
        if self.kind == "perfect":
            memory = state["memory"]
            return head + (
                _pipeline_summary(state["pipeline"]),
                (memory.loads, memory.stores),
            )
        raise SimulationError(f"unknown checkpoint kind {self.kind!r}")

    def describe(self) -> dict:
        """Small human-readable digest for logs and the CLI."""
        return {
            "kind": self.kind,
            "cycle": self.cycle,
            "committed": self.committed,
            "consumed": list(self.consumed),
            "version": self.version,
            **self.meta,
        }


def _pipeline_summary(pipeline) -> tuple:
    stats = pipeline.stats
    return (
        stats.committed, stats.loads, stats.stores, stats.cycles,
        stats.fetch_stalls, stats.window_stalls, stats.lsq_stalls,
        stats.branches, stats.mispredicts,
        pipeline.ruu.state_summary(),
        pipeline.lsq.state_summary(),
        len(pipeline._pending_loads),
        pipeline._fetch_ready,
        pipeline._fetched_line,
        pipeline._last_commit_cycle,
        pipeline._trace_done,
        pipeline._fetch_buffer is not None,
        pipeline.done,
    )


def _node_summary(node) -> tuple:
    return (
        node.bshr.occupancy(), node.bshr.stats.waits,
        node.bshr.stats.found_in_bshr, node.bshr.stats.squashes,
        node.bshr.stats.arrivals,
        node.dcub.occupancy(), node.dcub.allocations, node.dcub.merges,
        node.broadcaster.stats.sent, node.broadcaster.stats.late,
        node.remote_loads, node.local_loads,
        node.dropped_stores, node.local_stores,
        node.tracker.stats.false_hits, node.tracker.stats.false_misses,
    )


# ----------------------------------------------------------------------
# Capture / materialize.
# ----------------------------------------------------------------------
def capture(kind: str, cycle: int, committed: int, tree: dict,
            cut=(), consumed=(), meta: "dict | None" = None) -> Checkpoint:
    """Deep-copy ``tree`` into a checkpoint, excising every edge in
    ``cut``.

    Purely observational for the running simulation: the live objects
    are only read.  Charged to a ``checkpoint-save`` span when a
    recorder is active."""
    memo = {}
    for obj in cut:
        if obj is not None:
            memo[id(obj)] = None
    with spans.span("checkpoint-save"):
        state = copy.deepcopy(tree, memo)
    return Checkpoint(kind=kind, cycle=cycle, committed=committed,
                      consumed=list(consumed), state=state,
                      meta=dict(meta or {}))


def materialize(checkpoint: Checkpoint) -> dict:
    """A fresh, independent copy of the snapshot's state tree.

    The checkpoint itself stays pristine (it may be resumed any number
    of times, from this process or — via pickle — another)."""
    if checkpoint.version != CHECKPOINT_VERSION:
        raise SimulationError(
            f"checkpoint format {checkpoint.version!r} does not match "
            f"this simulator's {CHECKPOINT_VERSION!r}")
    with spans.span("checkpoint-restore"):
        return copy.deepcopy(checkpoint.state)


def pipeline_cut_edges(pipeline):
    """The per-pipeline edges a snapshot must not follow: the live
    trace iterator (a generator or fan-out view), its pre-bound
    ``__next__``, the fan-out pending queue (shared with the tee, which
    is reconstructed from consumed counts instead), and the
    observability hooks."""
    yield pipeline._trace
    yield pipeline._trace_next
    yield pipeline._trace_queue
    yield pipeline._tracer
    yield pipeline._stage_accs


def datascalar_cut_edges(pipelines, nodes):
    """Every cut edge of a full DataScalar system: per-pipeline trace
    and observability edges plus each broadcaster's delivery closure
    (it closes over the live node list and wake array; restore rewires
    it against the clones)."""
    for pipeline in pipelines:
        yield from pipeline_cut_edges(pipeline)
    for node in nodes:
        yield node.broadcaster._deliver


def drive_single_pipeline(kind, pipeline, cycle, max_cycles,
                          checkpoint_every, checkpoint_sink, stop_after,
                          tree_fn, trace, overflow_msg):
    """Checkpoint-enabled dense tick loop for the single-pipeline
    baseline systems (``traditional`` and ``perfect``).

    ``tree_fn()`` builds the state tree to snapshot; ``trace`` is the
    run's :class:`~repro.isa.fanout.CountingTrace`.  Returns
    ``(stop_requested, cycle)`` where ``cycle`` is the next cycle to
    simulate — the same convention the multi-node system uses."""
    if checkpoint_every is not None:
        if checkpoint_every < 1:
            raise SimulationError("checkpoint_every must be >= 1")
        if checkpoint_sink is None:
            raise SimulationError(
                "checkpoint_every requires a checkpoint_sink")
        next_boundary = ((pipeline.stats.committed // checkpoint_every + 1)
                         * checkpoint_every)
    else:
        next_boundary = None
    watching = next_boundary is not None or stop_after is not None
    tick = pipeline.tick
    while not pipeline.done:
        if cycle >= max_cycles:
            raise SimulationError(overflow_msg)
        tick(cycle)
        cycle += 1
        if watching:
            committed = pipeline.stats.committed
            while next_boundary is not None and committed >= next_boundary:
                checkpoint_sink(capture(
                    kind, cycle, committed, tree_fn(),
                    cut=pipeline_cut_edges(pipeline),
                    consumed=[trace.consumed],
                    meta={"boundary": next_boundary}))
                next_boundary += checkpoint_every
            if stop_after is not None and committed >= stop_after:
                checkpoint_sink(capture(
                    kind, cycle, committed, tree_fn(),
                    cut=pipeline_cut_edges(pipeline),
                    consumed=[trace.consumed],
                    meta={"boundary": stop_after}))
                return True, cycle
    return False, cycle


def advance_trace(trace, count: int) -> None:
    """Fast-forward a rebuilt front end by ``count`` records
    (functional warm-up: the records are re-derived and discarded; the
    restored machine state already accounts for them)."""
    step = trace.__next__
    try:
        for _ in range(count):
            step()
    except StopIteration:
        raise SimulationError(
            f"front end exhausted after fewer than {count} records while "
            f"advancing to a checkpoint — program or limit does not match "
            f"the checkpointed run") from None
