"""Unit tests for the out-of-order pipeline against a perfect memory."""

import pytest

from repro.baseline.perfect import PerfectMemory, PerfectSystem
from repro.cpu.func_units import FUPool
from repro.cpu.interface import LoadHandle
from repro.cpu.lsq import LSQ
from repro.cpu.pipeline import Pipeline
from repro.cpu.ruu import RUU
from repro.errors import SimulationError
from repro.isa import Interpreter, ProgramBuilder
from repro.isa.opcodes import OpClass
from repro.isa.trace import DynInstr
from repro.params import CPUConfig


def _pipeline(program, cpu=None, mem=None):
    trace = Interpreter(program).trace()
    return Pipeline(cpu or CPUConfig(), mem or PerfectMemory(), trace)


def _linear_program(n_adds=32):
    b = ProgramBuilder()
    b.li("r1", 0)
    for _ in range(n_adds):
        b.addi("r1", "r1", 1)
    b.halt()
    return b.build()


def _independent_program(n=32):
    b = ProgramBuilder()
    for i in range(n):
        b.li(f"r{1 + (i % 24)}", i)
    b.halt()
    return b.build()


# ----------------------------------------------------------------------
# RUU mechanics.
# ----------------------------------------------------------------------
def _dyn(seq, op_class=OpClass.IALU, dest=None, srcs=(), addr=None, size=0):
    return DynInstr(seq, 0x400000 + 4 * seq, int(op_class), dest, srcs,
                    addr, size)


def test_ruu_dependency_wakeup():
    ruu = RUU(capacity=8)
    producer = ruu.dispatch(_dyn(0, dest=1), now=0)
    consumer = ruu.dispatch(_dyn(1, srcs=(1,)), now=0)
    assert consumer.unresolved == 1
    assert [e.seq for e in ruu.schedulable(0)] == [0]
    ruu.resolve(producer, result_time=5)
    assert consumer.unresolved == 0
    batch = ruu.schedulable(10)
    assert [e.seq for e in batch] == [1]
    assert consumer.operand_time == 5


def test_ruu_known_producer_time_used_at_dispatch():
    ruu = RUU(capacity=8)
    producer = ruu.dispatch(_dyn(0, dest=1), now=0)
    ruu.resolve(producer, result_time=7)
    consumer = ruu.dispatch(_dyn(1, srcs=(1,)), now=1)
    assert consumer.unresolved == 0
    assert consumer.operand_time == 7


def test_ruu_capacity():
    ruu = RUU(capacity=2)
    ruu.dispatch(_dyn(0), 0)
    assert not ruu.is_full()
    ruu.dispatch(_dyn(1), 0)
    assert ruu.is_full()


def test_ruu_schedulable_is_oldest_first():
    ruu = RUU(capacity=8)
    ruu.dispatch(_dyn(0), 0)
    ruu.dispatch(_dyn(1), 0)
    ruu.dispatch(_dyn(2), 0)
    assert [e.seq for e in ruu.schedulable(0)] == [0, 1, 2]


# ----------------------------------------------------------------------
# LSQ mechanics.
# ----------------------------------------------------------------------
def _mem_entry(ruu, seq, op_class, addr, size=4):
    return ruu.dispatch(_dyn(seq, op_class=op_class, addr=addr, size=size), 0)


def test_lsq_forwarding_from_issued_store():
    ruu, lsq = RUU(64), LSQ(16)
    store = _mem_entry(ruu, 0, OpClass.STORE, 0x100)
    lsq.insert(store)
    store.issued = True
    store.issued_at = 3
    load = _mem_entry(ruu, 1, OpClass.LOAD, 0x100)
    lsq.insert(load)
    found, resolved = lsq.forwarding_store(load)
    assert found is store and resolved
    assert lsq.forwards == 1


def test_lsq_blocks_on_unissued_same_address_store():
    ruu, lsq = RUU(64), LSQ(16)
    store = _mem_entry(ruu, 0, OpClass.STORE, 0x100)
    lsq.insert(store)
    load = _mem_entry(ruu, 1, OpClass.LOAD, 0x100)
    lsq.insert(load)
    found, resolved = lsq.forwarding_store(load)
    assert found is store and not resolved


def test_lsq_different_address_does_not_forward():
    ruu, lsq = RUU(64), LSQ(16)
    store = _mem_entry(ruu, 0, OpClass.STORE, 0x200)
    lsq.insert(store)
    load = _mem_entry(ruu, 1, OpClass.LOAD, 0x100)
    lsq.insert(load)
    found, _ = lsq.forwarding_store(load)
    assert found is None


def test_lsq_partial_overlap_detected():
    ruu, lsq = RUU(64), LSQ(16)
    store = _mem_entry(ruu, 0, OpClass.STORE, 0x100, size=8)
    lsq.insert(store)
    store.issued = True
    load = _mem_entry(ruu, 1, OpClass.LOAD, 0x104, size=4)
    lsq.insert(load)
    found, _ = lsq.forwarding_store(load)
    assert found is store


def test_lsq_release_out_of_order_rejected():
    ruu, lsq = RUU(64), LSQ(16)
    a = _mem_entry(ruu, 0, OpClass.STORE, 0x100)
    b = _mem_entry(ruu, 1, OpClass.LOAD, 0x200)
    lsq.insert(a)
    lsq.insert(b)
    with pytest.raises(SimulationError):
        lsq.release_head(b)


# ----------------------------------------------------------------------
# FU pool.
# ----------------------------------------------------------------------
def test_fu_pool_limits_per_cycle_and_resets():
    pool = FUPool(CPUConfig())
    fmult = int(OpClass.FMULT)
    assert pool.try_claim(0, fmult)
    assert pool.try_claim(0, fmult)
    assert not pool.try_claim(0, fmult)  # only 2 FMULT units
    assert pool.try_claim(1, fmult)  # fresh cycle


def test_fu_pool_latencies_match_config():
    cfg = CPUConfig()
    pool = FUPool(cfg)
    assert pool.latency(int(OpClass.IALU)) == 1
    assert pool.latency(int(OpClass.FDIV)) == cfg.fu_latencies["FDIV"]
    assert pool.latency(int(OpClass.LOAD)) == cfg.fu_latencies["AGEN"]


# ----------------------------------------------------------------------
# Whole-pipeline behaviour.
# ----------------------------------------------------------------------
def test_serial_chain_commits_in_order_with_low_ipc():
    pipeline = _pipeline(_linear_program(64))
    stats = pipeline.run(max_cycles=100_000)
    assert stats.committed == 66  # li + 64 addi + halt
    # A fully serial chain cannot exceed 1 IPC by much.
    assert stats.ipc <= 1.5


def test_independent_instructions_reach_high_ipc():
    stats = _pipeline(_independent_program(256)).run(100_000)
    serial = _pipeline(_linear_program(256)).run(100_000)
    assert stats.ipc > 2.0
    assert stats.ipc > serial.ipc


def test_issue_width_bounds_ipc():
    narrow = CPUConfig(fetch_width=1, issue_width=1, commit_width=1,
                       ruu_entries=32, lsq_entries=16)
    stats = _pipeline(_independent_program(128), cpu=narrow).run(100_000)
    assert stats.ipc <= 1.0


def test_load_dependent_chain_waits_for_memory():
    class Slow(PerfectMemory):
        def load_issue(self, now, addr, size):
            handle = LoadHandle(addr, size, now)
            handle.complete(now + 50)
            return handle

    b = ProgramBuilder()
    base = b.alloc_global_words("p", 4, init=[0, 0, 0, 0])
    b.li("r1", base)
    b.lw("r2", "r1", 0)
    b.add("r3", "r2", "r1")
    b.halt()
    stats = Pipeline(CPUConfig(), Slow(),
                     Interpreter(b.build()).trace()).run(100_000)
    assert stats.cycles >= 50


def test_store_then_load_forwards_quickly():
    b = ProgramBuilder()
    base = b.alloc_global_words("x", 2)
    b.li("r1", base)
    b.li("r2", 42)
    b.sw("r2", "r1", 0)
    b.lw("r3", "r1", 0)
    b.halt()

    class NeverLoad(PerfectMemory):
        def load_issue(self, now, addr, size):
            raise AssertionError("load should have been forwarded")

    stats = Pipeline(CPUConfig(), NeverLoad(),
                     Interpreter(b.build()).trace()).run(100_000)
    assert stats.loads == 1


def test_pipeline_counts_loads_and_stores():
    b = ProgramBuilder()
    base = b.alloc_global_words("x", 8)
    b.li("r1", base)
    b.sw("r1", "r1", 0)
    b.lw("r2", "r1", 4)
    b.lw("r3", "r1", 0)
    b.halt()
    stats = _pipeline(b.build()).run(100_000)
    assert stats.stores == 1
    assert stats.loads == 2


def test_run_raises_if_out_of_cycles():
    with pytest.raises(SimulationError):
        _pipeline(_linear_program(64)).run(max_cycles=3)


def test_perfect_system_end_to_end():
    system = PerfectSystem()
    stats = system.run(_independent_program(64))
    assert stats.committed == 65
    assert 0 < stats.ipc <= system.cpu_config.issue_width
