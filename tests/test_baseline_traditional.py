"""Unit tests for the traditional system's memory paths."""

import pytest

from repro.baseline.traditional import TraditionalMemory
from repro.interconnect import Bus, MessageKind
from repro.memory import PageTable
from repro.params import (
    BusConfig,
    CacheConfig,
    MemoryConfig,
    NodeConfig,
    TraditionalConfig,
)

PAGE = 4096
LINE = 32

ONCHIP = 0x100          # page 0 -> owner 0 = on-chip
OFFCHIP = PAGE + 0x100  # page 1 -> owner 1 = off-chip


def _memory(write_allocate=False):
    table = PageTable(PAGE, num_owners=2)
    table.map_page(0, replicated=False, owner=0)
    table.map_page(1, replicated=False, owner=1)
    node = NodeConfig(
        icache=CacheConfig(size_bytes=1024, assoc=1, line_size=LINE),
        dcache=CacheConfig(size_bytes=1024, assoc=1, line_size=LINE,
                           write_allocate=write_allocate),
        memory=MemoryConfig(onchip_latency=8, offchip_latency=8,
                            page_size=PAGE),
    )
    config = TraditionalConfig(node=node, onchip_fraction_denom=2)
    bus = Bus(config.bus)
    return TraditionalMemory(config, table, bus), bus


def test_onchip_miss_never_uses_the_bus():
    memory, bus = _memory()
    handle = memory.load_issue(0, ONCHIP, 4)
    assert handle.ready is not None
    assert bus.stats.transactions == 0
    assert memory.onchip_fills == 1


def test_offchip_miss_pays_request_and_response():
    memory, bus = _memory()
    handle = memory.load_issue(0, OFFCHIP, 4)
    assert handle.ready is not None
    assert memory.requests == 1
    assert bus.stats.by_kind[MessageKind.REQUEST] == 1
    assert bus.stats.by_kind[MessageKind.RESPONSE] == 1


def test_offchip_latency_exceeds_onchip():
    memory, _ = _memory()
    onchip = memory.load_issue(0, ONCHIP, 4)
    offchip = memory.load_issue(0, OFFCHIP, 4)
    assert offchip.ready > onchip.ready


def test_inflight_line_merges_without_second_request():
    memory, _ = _memory()
    first = memory.load_issue(0, OFFCHIP, 4)
    second = memory.load_issue(1, OFFCHIP + 4, 4)
    assert memory.requests == 1
    assert second.ready is not None


def test_commit_fills_cache_for_later_hits():
    memory, _ = _memory()
    handle = memory.load_issue(0, OFFCHIP, 4)
    memory.commit_mem(100, OFFCHIP, 4, is_store=False, handle=handle)
    later = memory.load_issue(200, OFFCHIP, 4)
    assert later.issue_hit is True


def test_store_miss_writes_through_offchip():
    memory, bus = _memory()
    memory.commit_mem(0, OFFCHIP, 4, is_store=True, handle=None)
    assert memory.writethroughs_offchip == 1
    assert bus.stats.by_kind[MessageKind.WRITEBACK] == 1


def test_store_miss_onchip_stays_local():
    memory, bus = _memory()
    memory.commit_mem(0, ONCHIP, 4, is_store=True, handle=None)
    assert memory.writethroughs_offchip == 0
    assert bus.stats.transactions == 0


def test_dirty_offchip_eviction_generates_writeback():
    memory, bus = _memory()
    # Fill + dirty the off-chip line.
    handle = memory.load_issue(0, OFFCHIP, 4)
    memory.commit_mem(10, OFFCHIP, 4, is_store=False, handle=handle)
    memory.commit_mem(20, OFFCHIP, 4, is_store=True, handle=None)
    # Evict it with a conflicting line (1KB direct-mapped).
    conflict = OFFCHIP + 1024
    handle2 = memory.load_issue(30, conflict, 4)
    memory.commit_mem(90, conflict, 4, is_store=False, handle=handle2)
    assert memory.writebacks_offchip == 1


def test_write_allocate_store_miss_fetches_line():
    memory, _ = _memory(write_allocate=True)
    memory.commit_mem(0, OFFCHIP, 4, is_store=True, handle=None)
    assert memory.requests == 1  # the fetch-for-write went off-chip


def test_ifetch_offchip_uses_bus():
    memory, bus = _memory()
    ready = memory.ifetch_line(0, PAGE + 0x40)
    assert ready > 8
    assert memory.requests == 1


def test_validate_final_state_catches_leaked_dcub():
    memory, _ = _memory()
    memory.load_issue(0, OFFCHIP, 4)
    from repro.errors import ProtocolError
    with pytest.raises(ProtocolError):
        memory.validate_final_state()
