"""Worker-loss recovery: pool rebuilds, blame attribution, quarantine,
and spool hygiene on abort paths."""

from __future__ import annotations

import glob
import os
import pathlib
import tempfile
import time

import pytest

from repro.errors import (PointQuarantinedError, PointTimeoutError,
                          RunnerError)
from repro.runner import SweepPoint, SweepRunner, result_fingerprint
from repro.runner.executors import executor


# Registered at import time so fork-based pool workers inherit them.
@executor("death-probe")
def _run_probe(point):
    return {"tripled": point.knob("x", 0) * 3}


@executor("death-crash-once")
def _run_crash_once(point):
    """Kills its worker the first time, succeeds ever after — the
    sentinel file survives the ``os._exit`` precisely because worker
    death cannot unlink what was already durably created."""
    sentinel = pathlib.Path(point.knob("sentinel"))
    if not sentinel.exists():
        sentinel.write_text("died once")
        os._exit(86)
    return {"tripled": point.knob("x", 0) * 3}


@executor("death-always-crash")
def _run_always_crash(point):
    os._exit(86)


@executor("death-hang")
def _run_hang(point):
    time.sleep(30.0)
    return "never"


def _points(n=6):
    return [SweepPoint.make("death-probe", label=f"alive-{i}", x=i)
            for i in range(n)]


def test_worker_death_recovers_bit_identically(tmp_path):
    points = _points()
    crasher = SweepPoint.make("death-crash-once", label="crasher", x=2,
                              sentinel=str(tmp_path / "sentinel"))
    points.insert(2, crasher)
    baseline = [{"tripled": i * 3} for i in range(2)] + [{"tripled": 6}] \
        + [{"tripled": i * 3} for i in range(2, 6)]

    runner = SweepRunner(jobs=2, crash_backoff=0.0)
    results = runner.run(points)
    for a, b in zip(results, baseline):
        assert result_fingerprint(a) == result_fingerprint(b)
    assert runner.registry.counter("runner.pool.rebuilds").value >= 1
    assert runner.registry.counter("runner.points.quarantined").value == 0
    assert runner.registry.counter("runner.points.failed").value == 0


def test_deterministic_killer_is_quarantined_sweep_drains():
    points = _points(4)
    points.insert(1, SweepPoint.make("death-always-crash", label="killer"))
    runner = SweepRunner(jobs=2, worker_death_budget=2, crash_backoff=0.0)
    with pytest.raises(RunnerError, match="killer") as excinfo:
        runner.run(points)
    cause = excinfo.value.__cause__
    assert isinstance(cause, PointQuarantinedError)
    assert "worker_death_budget=2" in str(cause)
    registry = runner.registry
    assert registry.counter("runner.points.quarantined").value == 1
    # The innocent points all completed despite the rebuilds.
    assert registry.counter("runner.points.executed").value == 4
    assert registry.counter("runner.pool.rebuilds").value >= 2


def test_crash_backoff_is_seeded_and_bounded():
    runner = SweepRunner(jobs=2, crash_backoff=0.01, backoff_seed=3)
    t0 = time.perf_counter()
    runner._crash_pause(1)
    runner._crash_pause(2)
    elapsed = time.perf_counter() - t0
    assert 0.0 < elapsed < 1.0
    # Same seed, same pauses: the schedule is reproducible.
    a = SweepRunner(jobs=2, crash_backoff=0.01, backoff_seed=3)
    b = SweepRunner(jobs=2, crash_backoff=0.01, backoff_seed=3)
    assert [a._crash_rng.random() for _ in range(4)] == \
        [b._crash_rng.random() for _ in range(4)]


def _spool_dirs():
    return set(glob.glob(os.path.join(tempfile.gettempdir(),
                                      "repro-sweep-spool-*")))


def test_timeout_abort_leaves_no_spool_files():
    before = _spool_dirs()
    runner = SweepRunner(jobs=2, timeout=0.3, telemetry=True)
    with pytest.raises(PointTimeoutError):
        runner.run([SweepPoint.make("death-hang", label="hung")])
    assert _spool_dirs() == before


def test_worker_death_leaves_no_spool_files(tmp_path):
    before = _spool_dirs()
    points = _points(3)
    points.append(SweepPoint.make("death-crash-once", label="crasher", x=1,
                                  sentinel=str(tmp_path / "sentinel")))
    runner = SweepRunner(jobs=2, telemetry=True, crash_backoff=0.0)
    runner.run(points)
    assert _spool_dirs() == before
