"""Unit tests for the replication policy and result-communication analyzer."""

from repro.core import (
    ResultCommunicationAnalyzer,
    plan_replication,
    select_hot_pages,
)
from repro.isa import Interpreter, ProgramBuilder
from repro.memory import GLOBAL_BASE, PageTable, Segment, profile_program

PAGE = 4096


def _skewed_program():
    """Hammers one page, touches three others once per word."""
    b = ProgramBuilder("skewed")
    hot = b.alloc_global("hot", PAGE)
    cold = b.alloc_global("cold", 3 * PAGE)
    b.li("r1", hot)
    with b.repeat(50, "r5"):
        b.li("r2", 0)
        with b.repeat(64, "r3"):
            b.lw("r4", "r1", 0)
            b.addi("r2", "r2", 1)
    b.li("r1", cold)
    with b.repeat(3 * PAGE // 4, "r3"):
        b.lw("r4", "r1", 0)
        b.addi("r1", "r1", 4)
    b.halt()
    return b.build()


def test_select_hot_pages_prefers_hammered_page():
    program = _skewed_program()
    profile = profile_program(program, PAGE, include_ifetch=False)
    hot_page = GLOBAL_BASE // PAGE
    chosen = select_hot_pages(profile, budget_pages=1)
    assert chosen == frozenset({hot_page})


def test_select_hot_pages_budget_zero():
    program = _skewed_program()
    profile = profile_program(program, PAGE, include_ifetch=False)
    assert select_hot_pages(profile, 0) == frozenset()


def test_select_hot_pages_segment_filter():
    program = _skewed_program()
    profile = profile_program(program, PAGE, include_ifetch=True)
    text_only = select_hot_pages(profile, 100, segments={Segment.TEXT})
    assert text_only
    assert all(profile.segment_of_page(p) is Segment.TEXT for p in text_only)


def test_plan_replication_produces_consistent_plan():
    program = _skewed_program()
    plan = plan_replication(program, PAGE, num_nodes=4, budget_pages=2)
    assert len(plan.replicated_pages) == 2
    assert plan.distribution_block_pages >= 1
    by_segment = plan.replicated_by_segment()
    assert sum(by_segment.values()) == 2


# ----------------------------------------------------------------------
# Result communication.
# ----------------------------------------------------------------------
def _table_two_owners():
    table = PageTable(PAGE, num_owners=2)
    table.map_page(GLOBAL_BASE // PAGE, replicated=False, owner=0)
    table.map_page(GLOBAL_BASE // PAGE + 1, replicated=False, owner=1)
    return table


def _chain_program(words_per_page=16):
    """A run of loads on owner-0's page, then a run on owner-1's page."""
    b = ProgramBuilder("chain")
    arr = b.alloc_global("arr", 2 * PAGE)
    b.li("r1", arr)
    with b.repeat(words_per_page, "r3"):
        b.lw("r4", "r1", 0)
        b.addi("r1", "r1", 4)
    b.li("r1", arr + PAGE)
    with b.repeat(words_per_page, "r3"):
        b.lw("r4", "r1", 0)
        b.addi("r1", "r1", 4)
    b.halt()
    return b.build()


def test_private_regions_found_per_owner():
    program = _chain_program()
    analyzer = ResultCommunicationAnalyzer(_table_two_owners())
    report = analyzer.analyze(Interpreter(program).trace())
    assert len(report.regions) == 2
    owners = {region.owner for region in report.regions}
    assert owners == {0, 1}
    assert report.total_communicated_loads == 32
    # Each 16-load region collapses to one result broadcast.
    assert report.saved_broadcasts == 30
    assert report.broadcast_reduction > 0.9


def test_short_regions_below_threshold_ignored():
    program = _chain_program(words_per_page=1)
    analyzer = ResultCommunicationAnalyzer(_table_two_owners(), min_loads=2)
    report = analyzer.analyze(Interpreter(program).trace())
    assert report.regions == []
    assert report.saved_broadcasts == 0


def test_replicated_loads_are_neutral():
    table = PageTable(PAGE, num_owners=2)
    table.map_page(GLOBAL_BASE // PAGE, replicated=False, owner=0)
    table.map_page(GLOBAL_BASE // PAGE + 1, replicated=True)
    program = _chain_program()
    report = ResultCommunicationAnalyzer(table).analyze(
        Interpreter(program).trace())
    assert len(report.regions) == 1
    assert report.total_communicated_loads == 16
