"""Tests for the pluggable broadcast media and the system-level
interconnect choice (paper Section 4.4)."""

import pytest

from repro.core import DataScalarSystem
from repro.errors import ConfigError
from repro.experiments import datascalar_config, timing_node_config
from repro.interconnect import (
    BusMedium,
    OpticalMedium,
    RingMedium,
    make_medium,
)
from repro.params import BusConfig, SystemConfig
from repro.workloads import build_program


def _cfg():
    return BusConfig()


def test_make_medium_factory():
    assert isinstance(make_medium("bus", _cfg(), 4), BusMedium)
    assert isinstance(make_medium("ring", _cfg(), 4), RingMedium)
    assert isinstance(make_medium("optical", _cfg(), 4), OpticalMedium)
    with pytest.raises(ConfigError):
        make_medium("telepathy", _cfg(), 4)


def test_bus_medium_uniform_arrivals():
    medium = BusMedium(_cfg(), num_nodes=4)
    arrivals = medium.broadcast(0, src=1, line=0x100, payload_bytes=32)
    assert arrivals[1] is None
    others = [a for i, a in enumerate(arrivals) if i != 1]
    assert len(set(others)) == 1  # a bus delivers to all simultaneously
    assert medium.transactions == 1
    assert medium.payload_bytes == 32


def test_ring_medium_staggered_arrivals():
    medium = RingMedium(_cfg(), num_nodes=4)
    arrivals = medium.broadcast(0, src=0, line=0x100, payload_bytes=32)
    assert arrivals[0] is None
    assert arrivals[1] < arrivals[2] < arrivals[3]


def test_optical_medium_constant_latency_no_contention():
    medium = OpticalMedium(num_nodes=4, latency=5)
    first = medium.broadcast(10, src=0, line=0x100, payload_bytes=32)
    second = medium.broadcast(10, src=2, line=0x200, payload_bytes=32)
    assert first[1] == 15
    assert second[0] == 15  # concurrent broadcasts don't queue
    assert medium.transactions == 2


def test_optical_validation():
    with pytest.raises(ConfigError):
        OpticalMedium(num_nodes=2, latency=-1)


def test_system_config_validates_interconnect():
    with pytest.raises(ConfigError):
        SystemConfig(interconnect="carrier-pigeon")


@pytest.mark.parametrize("kind", ["bus", "ring", "optical"])
def test_datascalar_runs_on_every_medium(kind):
    import dataclasses
    program = build_program("compress")
    config = dataclasses.replace(
        datascalar_config(2, node=timing_node_config()), interconnect=kind)
    result = DataScalarSystem(config).run(program, limit=5000)
    assert result.instructions == 5000
    assert result.bus_transactions > 0


def test_optical_beats_bus_when_broadcasts_dominate():
    """Free broadcasts are the paper's best case for ESP."""
    import dataclasses
    program = build_program("wave5")
    base = datascalar_config(4, node=timing_node_config())
    bus = DataScalarSystem(base).run(program, limit=8000)
    optical = DataScalarSystem(dataclasses.replace(
        base, interconnect="optical")).run(program, limit=8000)
    assert optical.ipc > bus.ipc


def test_ring_not_slower_than_bus_with_parallel_senders():
    """Ring links pipeline; with four senders it should at least match
    the serializing bus."""
    import dataclasses
    program = build_program("wave5")
    base = datascalar_config(4, node=timing_node_config())
    bus = DataScalarSystem(base).run(program, limit=8000)
    ring = DataScalarSystem(dataclasses.replace(
        base, interconnect="ring")).run(program, limit=8000)
    assert ring.ipc > bus.ipc * 0.8
