"""Failure injection: break the protocol's preconditions on purpose and
check the machinery detects the damage instead of silently mis-simulating.
"""

import pytest

from repro.core import DataScalarSystem
from repro.core.node import DataScalarNode
from repro.core.system import DataScalarSystem as _System
from repro.errors import ProtocolError, ReproError, SimulationError
from repro.experiments import datascalar_config, timing_node_config
from repro.isa import ProgramBuilder
from repro.workloads import build_program


_ORIGINAL_LOAD_ISSUE = DataScalarNode.load_issue


def _issue_updating_load_issue(self, now, addr, size):
    """A deliberately broken issue path that fills the cache at *issue*
    time — the discipline the paper shows destroys correspondence
    (Section 4.1: 'If two loads to different lines in the same cache set
    are issued in a different order at two processors, that set will
    replace different lines, and the caches will cease to be
    correspondent')."""
    handle = _ORIGINAL_LOAD_ISSUE(self, now, addr, size)
    if not self.dcache.lookup(addr):
        self.dcache.insert(addr)  # the forbidden issue-time update
    return handle


class _BrokenSystem(_System):
    """DataScalarSystem that builds issue-updating nodes."""

    def run(self, program, **kwargs):
        DataScalarNode.load_issue = _issue_updating_load_issue
        try:
            return super().run(program, **kwargs)
        finally:
            DataScalarNode.load_issue = _ORIGINAL_LOAD_ISSUE


def test_issue_time_cache_updates_are_detected():
    """With issue-time fills, issue-state and canonical state diverge;
    the run must end in a detected protocol violation (ledger imbalance,
    BSHR deadlock, or a commit-count divergence) — never a silent pass."""
    program = build_program("turb3d")
    config = datascalar_config(2, node=timing_node_config(
        dcache_bytes=1024))
    with pytest.raises((ProtocolError, SimulationError)):
        _BrokenSystem(config).run(program, limit=8000)


def test_mismatched_traces_are_detected():
    """SPSD requires every node to run the same program; feeding nodes
    different instruction counts must be caught at collection."""
    import dataclasses

    from repro.core.system import DataScalarSystem as S

    class TwoProgramSystem(S):
        def run(self, program, **kwargs):
            # Run normally, then corrupt one pipeline's committed count
            # to simulate divergent streams.
            result = super().run(program, **kwargs)
            return result

    # Direct unit check on the guard itself:
    from repro.cpu.pipeline import PipelineStats
    system = S(datascalar_config(2))

    class FakePipe:
        def __init__(self, committed):
            self.stats = PipelineStats()
            self.stats.committed = committed

    class FakeNode:
        node_id = 0

        def validate_final_state(self):
            pass

    with pytest.raises(ProtocolError):
        system._collect(
            cycles=10,
            pipelines=[FakePipe(5), FakePipe(6)],
            nodes=[],
            medium=_DummyMedium(),
            page_table=_DummyTable(),
            layout_summary=None,
        )


class _DummyMedium:
    transactions = 0
    payload_bytes = 0

    def utilization(self, cycles):
        return 0.0


class _DummyTable:
    unmapped_accesses = 0


def test_program_without_halt_cannot_enter_the_system():
    b = ProgramBuilder()
    b.nop()
    with pytest.raises(ReproError):
        b.build()


def test_runaway_program_hits_max_cycles_guard():
    import dataclasses

    b = ProgramBuilder()
    b.label("spin")
    b.j("spin")
    b.halt()
    config = dataclasses.replace(datascalar_config(2), max_cycles=2000)
    with pytest.raises(SimulationError):
        DataScalarSystem(config).run(b.build())
