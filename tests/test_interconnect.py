"""Unit tests for the interconnect substrates."""

import pytest

from repro.errors import ConfigError
from repro.interconnect import (
    BoundedQueue,
    Bus,
    LatencyQueue,
    Message,
    MessageKind,
    Ring,
)
from repro.params import BusConfig


def _msg(kind=MessageKind.BROADCAST, src=0, payload=32, tag=0):
    return Message(kind=kind, src=src, line_addr=0x100, payload_bytes=payload,
                   tag=tag)


def _bus_config(**kw):
    defaults = dict(width_bytes=8, cycles_per_bus_cycle=4,
                    interface_latency=2, arbitration_bus_cycles=1,
                    tag_bytes=8)
    defaults.update(kw)
    return BusConfig(**defaults)


# ----------------------------------------------------------------------
# BusConfig timing math.
# ----------------------------------------------------------------------
def test_transfer_cycles_formula():
    cfg = _bus_config()
    # 32B payload + 8B tag = 40B over 8B wires -> 5 beats + 1 arb = 6 bus
    # cycles * 4 processor cycles each.
    assert cfg.transfer_cycles(32) == 24


def test_transfer_cycles_rounds_up_partial_beat():
    cfg = _bus_config(tag_bytes=0, arbitration_bus_cycles=0)
    assert cfg.transfer_cycles(9) == 2 * 4


def test_wider_bus_is_faster():
    narrow = _bus_config(width_bytes=4)
    wide = _bus_config(width_bytes=16)
    assert wide.transfer_cycles(32) < narrow.transfer_cycles(32)


# ----------------------------------------------------------------------
# Bus.
# ----------------------------------------------------------------------
def test_bus_single_transfer_timing():
    bus = Bus(_bus_config())
    start, done = bus.transfer(10, _msg())
    assert start == 10
    assert done == 10 + 24


def test_bus_serializes_transactions():
    bus = Bus(_bus_config())
    _, first_done = bus.transfer(0, _msg())
    start, _ = bus.transfer(0, _msg(src=1))
    assert start == first_done


def test_bus_idle_gap_not_charged():
    bus = Bus(_bus_config())
    _, done = bus.transfer(0, _msg())
    start, _ = bus.transfer(done + 100, _msg())
    assert start == done + 100


def test_bus_stats_accumulate():
    bus = Bus(_bus_config())
    bus.transfer(0, _msg(kind=MessageKind.BROADCAST, payload=32))
    bus.transfer(0, _msg(kind=MessageKind.REQUEST, payload=0))
    stats = bus.stats
    assert stats.transactions == 2
    assert stats.payload_bytes == 32
    assert stats.wire_bytes == 32 + 8 + 0 + 8
    assert stats.by_kind[MessageKind.BROADCAST] == 1
    assert stats.by_kind[MessageKind.REQUEST] == 1
    assert 0 < stats.utilization(1000) < 1


def test_bus_reset():
    bus = Bus(_bus_config())
    bus.transfer(0, _msg())
    bus.reset()
    assert bus.next_free() == 0
    assert bus.stats.transactions == 0


# ----------------------------------------------------------------------
# Message.
# ----------------------------------------------------------------------
def test_message_is_data():
    assert _msg(kind=MessageKind.BROADCAST).is_data
    assert _msg(kind=MessageKind.RESPONSE).is_data
    assert not _msg(kind=MessageKind.REQUEST, payload=0).is_data


def test_message_negative_payload_rejected():
    with pytest.raises(ValueError):
        Message(MessageKind.BROADCAST, 0, 0, payload_bytes=-1)


# ----------------------------------------------------------------------
# Queues.
# ----------------------------------------------------------------------
def test_latency_queue_adds_fixed_latency():
    q = LatencyQueue(latency=2)
    assert q.enqueue(10) == 12


def test_latency_queue_drains_one_per_cycle():
    q = LatencyQueue(latency=2)
    first = q.enqueue(0)
    second = q.enqueue(0)
    assert first == 2 and second == 3
    assert q.mean_delay() == 2.5


def test_latency_queue_validation_and_reset():
    with pytest.raises(ConfigError):
        LatencyQueue(latency=-1)
    q = LatencyQueue(latency=1)
    q.enqueue(0)
    q.reset()
    assert q.items == 0 and q.mean_delay() == 0.0


def test_bounded_queue_tracks_high_water_and_overflow():
    q = BoundedQueue(latency=5, capacity=2)
    q.enqueue(0)
    q.enqueue(0)
    assert q.high_water == 2
    q.enqueue(0)  # third while two are still in flight
    assert q.overflows == 1


def test_bounded_queue_capacity_validation():
    with pytest.raises(ConfigError):
        BoundedQueue(latency=0, capacity=0)


# ----------------------------------------------------------------------
# Ring.
# ----------------------------------------------------------------------
def test_ring_broadcast_reaches_all_nodes_in_order():
    ring = Ring(_bus_config(), num_nodes=4, hop_latency=1)
    arrivals = ring.broadcast(0, _msg(src=0))
    # Node 1 hears it first, then 2, then 3, then back at the source.
    assert arrivals[1] < arrivals[2] < arrivals[3] <= arrivals[0]


def test_ring_point_to_point_shorter_than_full_loop():
    ring = Ring(_bus_config(), num_nodes=4, hop_latency=1)
    t_near = ring.send(0, _msg(src=0), dest=1)
    ring.reset()
    t_far = ring.send(0, _msg(src=0), dest=3)
    assert t_near < t_far


def test_ring_links_pipeline_independent_messages():
    cfg = _bus_config()
    ring = Ring(cfg, num_nodes=4, hop_latency=1)
    a = ring.broadcast(0, _msg(src=0))
    b = ring.broadcast(0, _msg(src=2))
    # Messages from different sources share only some links, so the second
    # broadcast finishes earlier than strict serialization would allow.
    serialized_finish = max(a) + (max(a) - 0)
    assert max(b) < serialized_finish


def test_ring_validation():
    with pytest.raises(ConfigError):
        Ring(_bus_config(), num_nodes=0)
    with pytest.raises(ConfigError):
        Ring(_bus_config(), num_nodes=2, hop_latency=-1)


def test_ring_send_to_self_is_immediate():
    ring = Ring(_bus_config(), num_nodes=4)
    assert ring.send(7, _msg(src=2), dest=2) == 7
