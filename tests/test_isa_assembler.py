"""Unit tests for the text assembler."""

import pytest

from repro.errors import AssemblyError
from repro.isa import assemble
from repro.isa.interpreter import Interpreter


def _run(text):
    interp = Interpreter(assemble(text))
    interp.run()
    return interp


def test_simple_arithmetic_program():
    interp = _run(
        """
        li   r1, 6
        li   r2, 7
        mul  r3, r1, r2
        halt
        """
    )
    assert interp.registers[3] == 42


def test_labels_and_branches():
    interp = _run(
        """
        li r1, 0
        li r2, 10
        loop:
        addi r1, r1, 1
        blt  r1, r2, loop
        halt
        """
    )
    assert interp.registers[1] == 10


def test_comments_and_blank_lines_ignored():
    interp = _run(
        """
        ; leading comment
        li r1, 5   # trailing comment

        halt
        """
    )
    assert interp.registers[1] == 5


def test_alloc_and_word_directives():
    interp = _run(
        """
        .alloc buf 16
        .word  buf+4 99
        li r1, buf
        lw r2, r1, 4
        halt
        """
    )
    assert interp.registers[2] == 99


def test_double_directive_and_fp():
    interp = _run(
        """
        .alloc d 16
        .double d 1.5
        .double d+8 2.0
        li r1, d
        ld f1, r1, 0
        ld f2, r1, 8
        fmul f3, f1, f2
        halt
        """
    )
    assert interp.registers[32 + 3] == 3.0


def test_allocation_name_as_immediate():
    interp = _run(
        """
        .alloc tbl 8 heap
        li r1, tbl
        addi r2, r1, 0
        halt
        """
    )
    assert interp.registers[1] == interp.registers[2]
    assert interp.registers[1] >= 0x4000_0000  # heap segment


def test_memory_operand_default_offset():
    interp = _run(
        """
        .alloc buf 8
        li r1, buf
        li r2, 77
        sw r2, r1
        lw r3, r1
        halt
        """
    )
    assert interp.registers[3] == 77


def test_jal_jr_roundtrip():
    interp = _run(
        """
        li r1, 2
        jal fn
        halt
        fn:
        add r1, r1, r1
        jr r31
        """
    )
    assert interp.registers[1] == 4


def test_hex_immediates():
    interp = _run(
        """
        li r1, 0x10
        halt
        """
    )
    assert interp.registers[1] == 16


def test_error_reports_line_number():
    with pytest.raises(AssemblyError, match="line 3"):
        assemble("li r1, 1\nli r2, 2\nfrobnicate r1\nhalt\n")


@pytest.mark.parametrize(
    "bad",
    [
        "add r1, r2\nhalt",  # wrong operand count
        "lw r1\nhalt",  # missing base register
        ".alloc\nhalt",  # malformed directive
        ".word nope 3\nhalt",  # unknown allocation
        "li r1, banana\nhalt",  # unresolvable immediate
        ".frob x\nhalt",  # unknown directive
    ],
)
def test_malformed_lines_rejected(bad):
    with pytest.raises(AssemblyError):
        assemble(bad)
