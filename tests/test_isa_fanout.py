"""Tests for the shared dynamic-trace fan-out (`repro.isa.fanout`)."""

import itertools

import pytest

from repro.errors import SimulationError
from repro.isa import Interpreter, TraceFanout, fan_out
from repro.workloads import build_program


def test_views_see_identical_records_by_reference():
    fanout = TraceFanout(iter(range(100)), 3)
    a, b, c = fanout.views()
    assert list(a) == list(b) == list(c) == list(range(100))


def test_interleaved_consumption_preserves_order():
    fanout = TraceFanout(iter(range(50)), 2)
    a, b = fanout.views()
    got_a, got_b = [], []
    # a sprints ahead in bursts of 5 while b trails one at a time.
    for _ in range(10):
        got_a.extend(itertools.islice(a, 5))
        got_b.append(next(b))
    got_b.extend(b)
    assert got_a == list(range(50))
    assert got_b == list(range(50))


def test_laggard_queue_tracks_fastest_slowest_gap():
    fanout = TraceFanout(iter(range(1000)), 2)
    a, b = fanout.views()
    for _ in range(10):
        next(a)
    assert fanout.lags() == [0, 10]
    for _ in range(9):
        next(b)
    # The laggard advanced: consumed records leave its queue.
    assert fanout.lags() == [0, 1]
    assert fanout.high_water == 10


def test_capacity_bound_raises_loudly():
    fanout = TraceFanout(iter(range(1000)), 2, capacity=8)
    a, _b = fanout.views()
    with pytest.raises(SimulationError, match="wedged"):
        for _ in range(9):
            next(a)


def test_exhaustion_is_per_view():
    fanout = TraceFanout(iter(range(3)), 2)
    a, b = fanout.views()
    assert list(a) == [0, 1, 2]
    with pytest.raises(StopIteration):
        next(a)
    # b still drains the buffered tail after the source is exhausted.
    assert list(b) == [0, 1, 2]


def test_single_view_bypasses_ring():
    source = iter(range(5))
    (view,) = fan_out(source, 1)
    assert view is source


def test_invalid_arguments_rejected():
    with pytest.raises(SimulationError):
        TraceFanout(iter([]), 0)
    with pytest.raises(SimulationError):
        TraceFanout(iter([]), 2, capacity=0)


def test_fanned_trace_matches_per_node_interpreters():
    program = build_program("compress")
    views = fan_out(Interpreter(program).trace(limit=400), 3)
    reference = list(Interpreter(program).trace(limit=400))
    for view in views:
        records = list(view)
        assert len(records) == len(reference)
        for shared, fresh in zip(records, reference):
            assert shared.seq == fresh.seq
            assert shared.pc == fresh.pc
            assert shared.op_class == fresh.op_class
            assert shared.addr == fresh.addr
            assert shared.taken == fresh.taken
