"""Unit tests for DataScalarNode's issue/commit memory paths."""

import pytest

from repro.core.node import DataScalarNode
from repro.errors import ProtocolError
from repro.interconnect.medium import BusMedium
from repro.memory import PageTable
from repro.params import BusConfig, CacheConfig, MemoryConfig, NodeConfig

PAGE = 4096
LINE = 32


class Delivered:
    """Captures broadcasts the node sends (as (src, line, last_arrival))."""

    def __init__(self):
        self.events = []

    def __call__(self, src, line, arrivals):
        arrival = max(a for a in arrivals if a is not None)
        self.events.append((src, line, arrival))


def _node(node_id=0, write_allocate=False):
    table = PageTable(PAGE, num_owners=2)
    table.map_page(0, replicated=True)             # page 0: replicated
    table.map_page(1, replicated=False, owner=0)   # page 1: owned by n0
    table.map_page(2, replicated=False, owner=1)   # page 2: owned by n1
    config = NodeConfig(
        icache=CacheConfig(size_bytes=1024, assoc=1, line_size=LINE),
        dcache=CacheConfig(size_bytes=1024, assoc=1, line_size=LINE,
                           write_allocate=write_allocate),
        memory=MemoryConfig(onchip_latency=8, page_size=PAGE),
    )
    delivered = Delivered()
    medium = BusMedium(BusConfig(), num_nodes=2)
    node = DataScalarNode(node_id, config, table, medium,
                          delivered, num_peers=1)
    return node, delivered, table


REPL = 0x100           # in replicated page 0
OWNED = PAGE + 0x100   # in page 1 (owned by node 0)
REMOTE = 2 * PAGE + 0x100  # in page 2 (owned by node 1)


def test_replicated_load_completes_locally_without_broadcast():
    node, delivered, _ = _node()
    handle = node.load_issue(0, REPL, 4)
    assert handle.ready is not None
    assert handle.issue_hit is False  # cold miss, served by local memory
    assert delivered.events == []


def test_owned_load_broadcasts_eagerly():
    node, delivered, _ = _node()
    handle = node.load_issue(0, OWNED, 4)
    assert handle.ready is not None
    assert len(delivered.events) == 1
    src, line, arrival = delivered.events[0]
    assert src == 0
    assert line == node.dcache.line_addr(OWNED)
    assert arrival > handle.ready  # bus transfer happens after local read
    assert node.broadcaster.stats.late == 0


def test_remote_load_waits_in_bshr():
    node, delivered, _ = _node()
    handle = node.load_issue(0, REMOTE, 4)
    assert handle.ready is None
    assert node.bshr.stats.waits == 1
    node.bshr.arrival(50, node.dcache.line_addr(REMOTE))
    assert handle.ready is not None
    assert delivered.events == []  # non-owners never send


def test_second_load_to_inflight_line_merges_in_dcub():
    node, delivered, _ = _node()
    first = node.load_issue(0, REMOTE, 4)
    second = node.load_issue(1, REMOTE + 4, 4)
    assert node.bshr.stats.waits == 1  # only one BSHR entry per line
    assert node.dcub.merges == 1
    node.bshr.arrival(60, node.dcache.line_addr(REMOTE))
    assert first.ready is not None and second.ready is not None


def test_issue_hit_after_commit_fill():
    node, _, _ = _node()
    handle = node.load_issue(0, OWNED, 4)
    node.commit_mem(20, OWNED, 4, is_store=False, handle=handle)
    later = node.load_issue(30, OWNED, 4)
    assert later.issue_hit is True
    assert later.ready == 31  # single-cycle cache hit


def test_commit_releases_dcub():
    node, _, _ = _node()
    handle = node.load_issue(0, OWNED, 4)
    assert node.dcub.occupancy() == 1
    node.commit_mem(20, OWNED, 4, is_store=False, handle=handle)
    assert node.dcub.occupancy() == 0


def test_false_hit_triggers_reparative_broadcast_at_owner():
    """Load issue-hits, but a conflicting committed eviction makes the
    canonical outcome a miss -> the owner must broadcast late."""
    node, delivered, _ = _node()
    # Fill the line, then issue a load that hits.
    fill = node.load_issue(0, OWNED, 4)
    node.commit_mem(10, OWNED, 4, is_store=False, handle=fill)
    victim = node.load_issue(20, OWNED, 4)
    assert victim.issue_hit is True
    # A conflicting line (same set: +1024 in a 1KB direct-mapped cache)
    # commits first and evicts OWNED.
    conflict_addr = OWNED + 1024
    conflict = node.load_issue(21, conflict_addr, 4)
    node.commit_mem(30, conflict_addr, 4, is_store=False, handle=conflict)
    before = node.broadcaster.stats.late
    node.commit_mem(40, OWNED, 4, is_store=False, handle=victim)
    assert node.tracker.stats.false_hits == 1
    assert node.broadcaster.stats.late == before + 1


def test_false_hit_at_nonowner_schedules_squash():
    node, _, _ = _node()
    # Bring the remote line in and commit it.
    first = node.load_issue(0, REMOTE, 4)
    node.bshr.arrival(5, node.dcache.line_addr(REMOTE))
    node.commit_mem(10, REMOTE, 4, is_store=False, handle=first)
    # Issue-hit on it, then evict via a conflicting commit.
    victim = node.load_issue(20, REMOTE, 4)
    conflict_addr = REMOTE + 1024
    conflict = node.load_issue(21, conflict_addr, 4)
    node.bshr.arrival(25, node.dcache.line_addr(conflict_addr))
    node.commit_mem(30, conflict_addr, 4, is_store=False, handle=conflict)
    node.commit_mem(40, REMOTE, 4, is_store=False, handle=victim)
    # The owner will broadcast for this canonical miss; we must squash it.
    node.bshr.arrival(50, node.dcache.line_addr(REMOTE))
    assert node.bshr.stats.squashes == 1


def test_store_to_owned_page_completes_locally():
    node, delivered, _ = _node()
    node.commit_mem(0, OWNED, 4, is_store=True, handle=None)
    assert node.local_stores == 1
    assert delivered.events == []


def test_store_to_remote_page_dropped():
    node, delivered, _ = _node()
    node.commit_mem(0, REMOTE, 4, is_store=True, handle=None)
    assert node.dropped_stores == 1
    assert delivered.events == []


def test_store_write_allocate_settles_canonical_miss():
    """With write-allocate, a store miss fetches the line: the owner
    must fund a broadcast (late), the non-owner schedules a discard."""
    owner, delivered, _ = _node(node_id=0, write_allocate=True)
    owner.commit_mem(0, OWNED, 4, is_store=True, handle=None)
    assert owner.broadcaster.stats.late == 1
    nonowner, delivered2, _ = _node(node_id=1, write_allocate=True)
    nonowner.commit_mem(0, OWNED, 4, is_store=True, handle=None)
    assert nonowner.tracker.stats.scheduled_discards == 1


def test_ifetch_hits_after_first_line_fill():
    node, _, _ = _node()
    pc_line = 0x400000
    first = node.ifetch_line(0, pc_line)
    assert first > 0  # miss: local memory latency
    again = node.ifetch_line(first, pc_line)
    assert again == first  # hit: same cycle


def test_validate_final_state_catches_stranded_wait():
    node, _, _ = _node()
    node.load_issue(0, REMOTE, 4)
    with pytest.raises(ProtocolError):
        node.validate_final_state()
