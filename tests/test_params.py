"""Validation tests for every configuration dataclass."""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.params import (
    BSHRConfig,
    BusConfig,
    CacheConfig,
    CPUConfig,
    MemoryConfig,
    NodeConfig,
    SystemConfig,
    TraditionalConfig,
)


# ----------------------------------------------------------------------
# CPUConfig.
# ----------------------------------------------------------------------
def test_cpu_defaults_match_paper():
    cpu = CPUConfig()
    assert cpu.issue_width == 8
    assert cpu.ruu_entries == 256
    assert cpu.lsq_entries == cpu.ruu_entries // 2
    assert cpu.clock_ghz == 1.0
    assert cpu.branch_predictor == "perfect"


@pytest.mark.parametrize("kwargs", [
    {"fetch_width": 0},
    {"issue_width": -1},
    {"commit_width": 0},
    {"ruu_entries": 0},
    {"lsq_entries": 0},
    {"ruu_entries": 8, "lsq_entries": 16},
    {"clock_ghz": 0},
    {"branch_predictor": "psychic"},
    {"misprediction_penalty": -1},
])
def test_cpu_validation(kwargs):
    with pytest.raises(ConfigError):
        CPUConfig(**kwargs)


def test_cpu_ns_to_cycles():
    cpu = CPUConfig(clock_ghz=1.0)
    assert cpu.ns_to_cycles(8) == 8
    assert cpu.ns_to_cycles(0.2) == 1  # floors at one cycle
    fast = CPUConfig(clock_ghz=2.0)
    assert fast.ns_to_cycles(8) == 16


def test_cpu_scaled_keeps_lsq_ratio():
    scaled = CPUConfig().scaled(64)
    assert scaled.ruu_entries == 64
    assert scaled.lsq_entries == 32


def test_cpu_missing_fu_latency_rejected_by_pool():
    from repro.cpu import FUPool
    cpu = dataclasses.replace(CPUConfig(), fu_latencies={"IALU": 1})
    with pytest.raises(ConfigError):
        FUPool(cpu)


# ----------------------------------------------------------------------
# CacheConfig.
# ----------------------------------------------------------------------
def test_cache_num_sets():
    cache = CacheConfig(size_bytes=1024, assoc=2, line_size=32)
    assert cache.num_sets == 16


@pytest.mark.parametrize("kwargs", [
    {"line_size": 24},
    {"assoc": 3},
    {"size_bytes": 999},
    {"size_bytes": 96, "assoc": 1, "line_size": 32},  # 3 sets: not pow2
    {"hit_latency": 0},
    {"write_policy": "mystery"},
])
def test_cache_validation(kwargs):
    with pytest.raises(ConfigError):
        CacheConfig(**kwargs)


# ----------------------------------------------------------------------
# MemoryConfig / BusConfig / BSHRConfig.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kwargs", [
    {"onchip_latency": 0},
    {"offchip_latency": 0},
    {"num_banks": 0},
    {"page_size": 1000},
])
def test_memory_validation(kwargs):
    with pytest.raises(ConfigError):
        MemoryConfig(**kwargs)


@pytest.mark.parametrize("kwargs", [
    {"width_bytes": 3},
    {"cycles_per_bus_cycle": 0},
    {"interface_latency": -1},
    {"arbitration_bus_cycles": -1},
    {"tag_bytes": -1},
])
def test_bus_validation(kwargs):
    with pytest.raises(ConfigError):
        BusConfig(**kwargs)


def test_bshr_validation():
    with pytest.raises(ConfigError):
        BSHRConfig(entries=0)
    with pytest.raises(ConfigError):
        BSHRConfig(access_latency=-1)


# ----------------------------------------------------------------------
# NodeConfig / SystemConfig / TraditionalConfig.
# ----------------------------------------------------------------------
def test_node_validation():
    with pytest.raises(ConfigError):
        NodeConfig(broadcast_queue_latency=-1)


@pytest.mark.parametrize("kwargs", [
    {"num_nodes": 0},
    {"distribution_block_pages": 0},
    {"max_cycles": 0},
    {"interconnect": "pigeon"},
])
def test_system_validation(kwargs):
    with pytest.raises(ConfigError):
        SystemConfig(**kwargs)


@pytest.mark.parametrize("kwargs", [
    {"onchip_fraction_denom": 0},
    {"distribution_block_pages": 0},
    {"max_cycles": 0},
])
def test_traditional_validation(kwargs):
    with pytest.raises(ConfigError):
        TraditionalConfig(**kwargs)


def test_configs_are_frozen():
    cpu = CPUConfig()
    with pytest.raises(dataclasses.FrozenInstanceError):
        cpu.issue_width = 4


def test_bus_transfer_cycles_monotone_in_payload():
    bus = BusConfig()
    previous = 0
    for payload in (0, 8, 16, 64, 256):
        cycles = bus.transfer_cycles(payload)
        assert cycles >= previous
        previous = cycles
