"""Fast-forward must be invisible: bit-identical results vs. dense ticking.

The scheduler in :mod:`repro.core.system` skips cycle ranges that are
provably idle for every node and shares one functional interpreter
across all nodes (:mod:`repro.isa.fanout`).  Neither is allowed to
change a single reported number: these tests run the same workload with
``fast_forward`` on and off — the off runs also forced back onto
per-node interpreters, reproducing the original dense scheduler exactly
— across every interconnect medium and node count, and compare full
result snapshots.
"""

import dataclasses

import pytest

from repro.core import DataScalarSystem
from repro.experiments.config import datascalar_config
from repro.isa.interpreter import Interpreter
from repro.workloads import build_program

WORKLOADS = ["compress", "mgrid"]
MEDIA = ["bus", "ring", "optical"]
NODE_COUNTS = [1, 2, 4]
LIMIT = 2_500


class _DenseSystem(DataScalarSystem):
    """The pre-optimization scheduler: one interpreter per node (the
    ``_make_trace`` override disables the shared-trace fan-out) and, via
    ``fast_forward=False`` in its config, dense per-cycle ticking."""

    def _make_trace(self, program, node_id, limit):
        return Interpreter(program).trace(limit=limit)


def _snapshot(result):
    """Every externally-visible number in a :class:`DataScalarResult`."""
    nodes = []
    for node in result.nodes:
        stats = node.pipeline
        pipeline = {
            slot: getattr(stats, slot) for slot in stats.__slots__
        }
        node_fields = dataclasses.asdict(node)
        node_fields["pipeline"] = pipeline
        nodes.append(node_fields)
    return {
        "cycles": result.cycles,
        "instructions": result.instructions,
        "bus_transactions": result.bus_transactions,
        "bus_payload_bytes": result.bus_payload_bytes,
        "bus_utilization": result.bus_utilization,
        "nodes": nodes,
    }


def _config(num_nodes, interconnect):
    return dataclasses.replace(
        datascalar_config(num_nodes=num_nodes), interconnect=interconnect)


@pytest.mark.parametrize("interconnect", MEDIA)
@pytest.mark.parametrize("num_nodes", NODE_COUNTS)
@pytest.mark.parametrize("workload", WORKLOADS)
def test_fast_forward_matches_dense(workload, num_nodes, interconnect):
    program = build_program(workload)

    fast_cfg = _config(num_nodes, interconnect)
    assert fast_cfg.fast_forward  # the default path under test
    fast = DataScalarSystem(fast_cfg).run(program, limit=LIMIT)

    dense_cfg = dataclasses.replace(fast_cfg, fast_forward=False)
    dense = _DenseSystem(dense_cfg).run(program, limit=LIMIT)

    assert _snapshot(fast) == _snapshot(dense)


def test_observer_forces_dense_and_sees_every_cycle():
    """An installed observer disables skipping: it must be called for
    cycles 0..N-1 with no gaps, and the result still matches."""
    program = build_program("compress")
    config = _config(2, "bus")
    seen = []
    observed = DataScalarSystem(config).run(
        program, limit=LIMIT,
        observer=lambda cycle, pipelines, nodes, medium: seen.append(cycle))
    assert seen == list(range(observed.cycles))
    plain = DataScalarSystem(config).run(program, limit=LIMIT)
    assert _snapshot(observed) == _snapshot(plain)


@pytest.mark.parametrize("interconnect", ["bus", "ring"])
def test_fast_forward_matches_dense_under_faults(interconnect):
    """The faulty medium adds pending recovery timers and BSHR wait
    deadlines; ``next_event`` must fold them in so skipping stays
    invisible — including the seeded fault schedule itself."""
    from repro.params import FaultConfig

    program = build_program("compress")
    faults = FaultConfig(seed=17, receiver_drop_prob=1e-2,
                         corrupt_prob=5e-3, jitter_prob=2e-2,
                         stall_prob=5e-3)
    fast_cfg = dataclasses.replace(_config(4, interconnect), faults=faults)
    assert fast_cfg.fast_forward
    fast = DataScalarSystem(fast_cfg).run(program, limit=LIMIT)

    dense_cfg = dataclasses.replace(fast_cfg, fast_forward=False)
    dense = _DenseSystem(dense_cfg).run(program, limit=LIMIT)

    assert _snapshot(fast) == _snapshot(dense)
    assert fast.extra["faults"] == dense.extra["faults"]
    assert fast.extra["faults"]["recovery"]["recovered"] > 0


@pytest.mark.parametrize("num_nodes", [2, 4])
@pytest.mark.parametrize("workload", WORKLOADS)
def test_tracing_is_bit_identical(workload, num_nodes):
    """Tracing is purely observational: a fully-traced fast-forwarded
    run must report exactly the numbers of the untraced run (and of the
    dense untraced run, by transitivity with the tests above)."""
    from repro.obs import EventTracer, SamplingTracer

    program = build_program(workload)
    config = _config(num_nodes, "bus")
    plain = DataScalarSystem(config).run(program, limit=LIMIT)
    traced = DataScalarSystem(config).run(program, limit=LIMIT,
                                          tracer=EventTracer())
    assert _snapshot(traced) == _snapshot(plain)

    # A scheduled tracer bounds idle-skips to its sample cycles; the
    # skipped-vs-ticked split changes, the numbers must not.
    sampled = DataScalarSystem(config).run(program, limit=LIMIT,
                                           tracer=SamplingTracer(128))
    assert _snapshot(sampled) == _snapshot(plain)


def test_tracing_is_bit_identical_under_faults():
    """The faulty row: tracing must not perturb the seeded fault
    schedule, the recovery ledger, or the cycle count."""
    from repro.obs import EventKind, EventTracer
    from repro.params import FaultConfig

    program = build_program("compress")
    faults = FaultConfig(seed=17, receiver_drop_prob=1e-2,
                         corrupt_prob=5e-3, jitter_prob=2e-2,
                         stall_prob=5e-3)
    config = dataclasses.replace(_config(4, "bus"), faults=faults)
    plain = DataScalarSystem(config).run(program, limit=LIMIT)
    tracer = EventTracer()
    traced = DataScalarSystem(config).run(program, limit=LIMIT,
                                          tracer=tracer)
    assert _snapshot(traced) == _snapshot(plain)
    assert traced.extra["faults"] == plain.extra["faults"]
    injected = plain.extra["faults"]["injected"]["injected"]
    recover_events = tracer.counts.get(EventKind.FAULT_RECOVER, 0)
    assert recover_events == injected > 0


def test_fast_forward_flag_disables_skipping():
    """``fast_forward=False`` alone (shared fan-out still active) must
    also be bit-identical — the two optimizations are independent."""
    program = build_program("mgrid")
    config = _config(4, "bus")
    fast = DataScalarSystem(config).run(program, limit=LIMIT)
    dense = DataScalarSystem(
        dataclasses.replace(config, fast_forward=False)).run(
            program, limit=LIMIT)
    assert _snapshot(fast) == _snapshot(dense)


# ----------------------------------------------------------------------
# The codegen rows: the generated-code front end (engine="codegen",
# repro.isa.codegen) must be exactly as invisible as fast-forward —
# against the interpreter, the dense scheduler, faults, and tracing.
# ----------------------------------------------------------------------
def _engine(config, engine):
    return dataclasses.replace(config, engine=engine)


@pytest.mark.parametrize("num_nodes", NODE_COUNTS)
@pytest.mark.parametrize("workload", WORKLOADS)
def test_codegen_matches_interpreter(workload, num_nodes):
    """Same fast-forwarded system, only the front end differs."""
    program = build_program(workload)
    config = _config(num_nodes, "bus")
    generated = DataScalarSystem(
        _engine(config, "codegen")).run(program, limit=LIMIT)
    interpreted = DataScalarSystem(
        _engine(config, "interpreter")).run(program, limit=LIMIT)
    assert _snapshot(generated) == _snapshot(interpreted)


@pytest.mark.parametrize("workload", WORKLOADS)
def test_codegen_matches_dense(workload):
    """codegen + fast-forward vs the original dense per-node
    interpreters: the two optimization layers compose invisibly."""
    program = build_program(workload)
    config = _config(2, "bus")
    generated = DataScalarSystem(
        _engine(config, "codegen")).run(program, limit=LIMIT)
    dense = _DenseSystem(
        dataclasses.replace(config, fast_forward=False)).run(
            program, limit=LIMIT)
    assert _snapshot(generated) == _snapshot(dense)


def test_codegen_matches_interpreter_under_faults():
    """The faulty row: the engine choice must not perturb the seeded
    fault schedule or the recovery ledger."""
    from repro.params import FaultConfig

    program = build_program("compress")
    faults = FaultConfig(seed=17, receiver_drop_prob=1e-2,
                         corrupt_prob=5e-3, jitter_prob=2e-2,
                         stall_prob=5e-3)
    config = dataclasses.replace(_config(4, "bus"), faults=faults)
    generated = DataScalarSystem(
        _engine(config, "codegen")).run(program, limit=LIMIT)
    interpreted = DataScalarSystem(
        _engine(config, "interpreter")).run(program, limit=LIMIT)
    assert _snapshot(generated) == _snapshot(interpreted)
    assert generated.extra["faults"] == interpreted.extra["faults"]
    assert generated.extra["faults"]["recovery"]["recovered"] > 0


def test_codegen_tracing_is_bit_identical():
    """The traced row: tracing a codegen-fed run reports exactly the
    untraced interpreter-fed numbers."""
    from repro.obs import EventTracer

    program = build_program("mgrid")
    config = _config(2, "bus")
    traced = DataScalarSystem(_engine(config, "codegen")).run(
        program, limit=LIMIT, tracer=EventTracer())
    plain = DataScalarSystem(_engine(config, "interpreter")).run(
        program, limit=LIMIT)
    assert _snapshot(traced) == _snapshot(plain)


# ----------------------------------------------------------------------
# The checkpoint rows: save at a (seeded-random) committed-instruction
# boundary -> serialize -> restore in a fresh system -> continue, and
# the result must be bit-identical to the straight-through run — over
# engines {interpreter, codegen}, clean and faulty transport, and the
# fast-forward vs dense schedulers (repro.checkpoint).
# ----------------------------------------------------------------------
import pickle
import random


def _fault_config():
    from repro.params import FaultConfig

    return FaultConfig(seed=17, receiver_drop_prob=1e-2,
                       corrupt_prob=5e-3, jitter_prob=2e-2,
                       stall_prob=5e-3)


@pytest.mark.parametrize("fast_forward", [True, False],
                         ids=["fast-forward", "dense"])
@pytest.mark.parametrize("faulty", [False, True],
                         ids=["clean", "faulty"])
@pytest.mark.parametrize("engine", ["interpreter", "codegen"])
def test_checkpoint_restore_matches_straight_through(engine, faulty,
                                                     fast_forward):
    program = build_program("compress")
    config = dataclasses.replace(_config(4, "bus"), engine=engine,
                                 fast_forward=fast_forward)
    if faulty:
        config = dataclasses.replace(config, faults=_fault_config())

    straight = DataScalarSystem(config).run(program, limit=LIMIT)

    # A seeded-random save point (different per row, stable per run of
    # the suite) — the restore path must work from *any* boundary, not
    # just round numbers.
    rng = random.Random(hash((engine, faulty, fast_forward)) & 0xFFFF)
    boundary = rng.randrange(200, LIMIT - 200)
    saved = []
    checkpointed = DataScalarSystem(config).run(
        program, limit=LIMIT, checkpoint_every=boundary,
        checkpoint_sink=saved.append)
    # Emitting checkpoints must itself be invisible.
    assert _snapshot(checkpointed) == _snapshot(straight)
    assert saved and saved[0].committed >= boundary

    # Serialize -> restore in a *fresh* system -> continue.
    blob = pickle.dumps(saved[0])
    resumed = DataScalarSystem(config).run(
        program, limit=LIMIT, resume_from=pickle.loads(blob))
    assert _snapshot(resumed) == _snapshot(straight)
    if faulty:
        assert resumed.extra["faults"] == straight.extra["faults"]
        assert straight.extra["faults"]["recovery"]["recovered"] > 0


def test_checkpoint_restore_baselines_match_straight_through():
    """The traditional and perfect baselines share the checkpoint
    protocol (kind-tagged snapshots, CountingTrace replay)."""
    from repro.baseline.perfect import PerfectSystem
    from repro.baseline.traditional import TraditionalSystem
    from repro.experiments.config import traditional_config
    from repro.runner.digest import result_fingerprint

    program = build_program("compress")

    tconfig = traditional_config(denom=4)
    straight = TraditionalSystem(tconfig).run(program, limit=LIMIT)
    saved = []
    TraditionalSystem(tconfig).run(program, limit=LIMIT,
                                   checkpoint_every=900,
                                   checkpoint_sink=saved.append)
    resumed = TraditionalSystem(tconfig).run(
        program, limit=LIMIT,
        resume_from=pickle.loads(pickle.dumps(saved[0])))
    assert result_fingerprint(resumed) == result_fingerprint(straight)

    pstraight = PerfectSystem().run(program, limit=LIMIT)
    saved = []
    PerfectSystem().run(program, limit=LIMIT, checkpoint_every=900,
                        checkpoint_sink=saved.append)
    presumed = PerfectSystem().run(
        program, limit=LIMIT,
        resume_from=pickle.loads(pickle.dumps(saved[0])))
    assert result_fingerprint(presumed) == result_fingerprint(pstraight)
