"""Tests for the branch-predictor substrate."""

import pytest

from repro.cpu import (
    BimodalPredictor,
    GSharePredictor,
    StaticTakenPredictor,
    measure_predictor,
    survey_predictors,
)
from repro.errors import ConfigError
from repro.isa import ProgramBuilder
from repro.workloads import build_program


def _loop_program(iterations=100):
    b = ProgramBuilder()
    b.li("r1", 0)
    b.li("r2", iterations)
    with b.while_cond("lt", "r1", "r2"):
        b.addi("r1", "r1", 1)
    b.halt()
    return b.build()


def test_static_taken_predictor():
    predictor = StaticTakenPredictor()
    assert predictor.predict(0x400000) is True
    predictor.train(0x400000, False)
    assert predictor.predict(0x400000) is True


def test_bimodal_learns_a_biased_branch():
    predictor = BimodalPredictor(entries=64)
    pc = 0x400100
    for _ in range(4):
        predictor.train(pc, False)
    assert predictor.predict(pc) is False
    for _ in range(4):
        predictor.train(pc, True)
    assert predictor.predict(pc) is True


def test_bimodal_counters_saturate():
    predictor = BimodalPredictor(entries=64)
    pc = 0x400100
    for _ in range(100):
        predictor.train(pc, True)
    predictor.train(pc, False)  # one blip must not flip a saturated entry
    assert predictor.predict(pc) is True


def test_gshare_distinguishes_history_patterns():
    """An alternating branch is near-perfect for gshare, hopeless for
    bimodal."""
    gshare = GSharePredictor(entries=256, history_bits=4)
    pc = 0x400200
    correct = 0
    taken = True
    for i in range(200):
        if gshare.predict(pc) == taken:
            correct += 1
        gshare.train(pc, taken)
        taken = not taken
    assert correct / 200 > 0.9


@pytest.mark.parametrize("cls,kwargs", [
    (BimodalPredictor, {"entries": 100}),
    (GSharePredictor, {"entries": 100}),
    (GSharePredictor, {"entries": 64, "history_bits": 0}),
])
def test_predictor_validation(cls, kwargs):
    with pytest.raises(ConfigError):
        cls(**kwargs)


def test_measure_predictor_on_tight_loop():
    """A counted loop's branch is taken N-1 times then falls through;
    every predictor should be nearly perfect."""
    program = _loop_program(200)
    report = measure_predictor(program, BimodalPredictor(), name="bimodal")
    assert report.predictor == "bimodal"
    assert report.branches == 201  # 200 iterations + the exit test
    assert report.accuracy > 0.95


def test_survey_orders_sensibly_on_real_kernel():
    """On branchy integer code, learned predictors beat static-taken —
    quantifying what the paper's perfect-prediction assumption covers."""
    program = build_program("go")
    reports = {r.predictor: r for r in survey_predictors(program,
                                                         limit=20000)}
    assert reports["bimodal-2k"].accuracy >= reports["static-taken"].accuracy
    assert reports["bimodal-2k"].branches == reports["gshare-4k"].branches
    assert all(0.0 <= r.accuracy <= 1.0 for r in reports.values())
    assert reports["bimodal-2k"].accuracy > 0.6


def test_mispredictions_complement_correct():
    report = measure_predictor(_loop_program(50), StaticTakenPredictor())
    assert report.correct + report.mispredictions == report.branches
