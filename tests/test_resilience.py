"""Resilience sweep tests — also the CI fault-matrix entry point.

The CI workflow runs this file across a matrix of seeds and media
(``FAULT_SEED`` × ``FAULT_MEDIUM`` environment variables) so any
nondeterminism or medium-specific breakage in the fault path is caught
on every change.  Unset, the defaults exercise seed 11 on the bus.
"""

import os

import pytest

from repro.experiments import (
    DROP_PROBS,
    fault_config_for,
    format_resilience,
    run_resilience,
)

SEED = int(os.environ.get("FAULT_SEED", "11"))
MEDIUM = os.environ.get("FAULT_MEDIUM", "bus")
LIMIT = 1_500


@pytest.fixture(scope="module")
def sweep():
    return run_resilience(limit=LIMIT, num_nodes=4, seeds=(SEED,),
                          drop_probs=(0.0, 1e-3, 1e-2),
                          interconnect=MEDIUM)


def test_sweep_shape(sweep):
    assert [p.drop_prob for p in sweep] == [0.0, 1e-3, 1e-2]
    assert all(p.interconnect == MEDIUM for p in sweep)
    assert sweep[0].seed == 0 and sweep[0].slowdown == 1.0
    assert all(p.seed == SEED for p in sweep[1:])


def test_architecture_identical_at_every_point(sweep):
    """Graceful degradation: committed work never changes, only timing
    and recovery traffic."""
    assert all(p.identical_architecture for p in sweep)


def test_faults_are_injected_and_recovered(sweep):
    faulty = [p for p in sweep if p.drop_prob > 0]
    assert sum(p.injected for p in faulty) > 0
    assert all(p.recovered == p.injected for p in faulty)
    # Slowdown is usually >= 1 but not guaranteed: shifted arrival times
    # can perturb issue scheduling non-monotonically (same anomaly class
    # as conservative-vs-oracle disambiguation), so only bound it.
    assert all(0.5 < p.slowdown < 10.0 for p in faulty)


def test_sweep_is_reproducible(sweep):
    again = run_resilience(limit=LIMIT, num_nodes=4, seeds=(SEED,),
                           drop_probs=(0.0, 1e-3, 1e-2),
                           interconnect=MEDIUM)
    assert again == sweep


def test_format_resilience_renders(sweep):
    text = format_resilience(sweep)
    assert "Resilience" in text
    assert "slowdown" in text
    assert "NO" not in text.splitlines()[0]  # arch-ok column header fine


def test_default_sweep_constants():
    assert DROP_PROBS[0] == 0.0
    assert list(DROP_PROBS) == sorted(DROP_PROBS)
    config = fault_config_for(1e-3, seed=SEED)
    assert config.seed == SEED
    assert config.receiver_drop_prob == pytest.approx(1e-3)
    assert config.injects_anything
