"""Integration tests for the experiment drivers.

These use small instruction limits — full-scale regeneration lives in
benchmarks/.  Each test checks the *shape* properties DESIGN.md commits
to for the corresponding table or figure.
"""

import pytest

from repro.experiments import (
    PARAMETERS,
    datascalar_crossings,
    format_figure1,
    format_figure3,
    format_figure7,
    format_figure8,
    format_table1,
    format_table2,
    format_table3,
    run_benchmark,
    run_figure1,
    run_figure3,
    run_panel,
    run_table1,
    run_table2,
    run_table3,
    traditional_crossings,
)

FAST = dict(limit=6000)
QUICK_BENCHMARKS = ["compress", "go"]


# ----------------------------------------------------------------------
# Table 1.
# ----------------------------------------------------------------------
def test_table1_shape():
    rows = run_table1(benchmarks=QUICK_BENCHMARKS + ["tomcatv"], limit=50000)
    assert len(rows) == 3
    for row in rows:
        # ESP always removes at least the request half of transactions.
        assert row.transactions_eliminated >= 0.5
        assert 0.0 <= row.bytes_eliminated < 1.0
        assert row.misses > 0


def test_table1_store_heavy_codes_eliminate_more():
    rows = {r.benchmark: r for r in
            run_table1(benchmarks=["compress", "fpppp"], limit=50000)}
    assert (rows["compress"].bytes_eliminated
            > rows["fpppp"].bytes_eliminated)


def test_table1_formatting():
    text = format_table1(run_table1(benchmarks=["go"], limit=20000))
    assert "Table 1" in text and "go" in text and "%" in text


# ----------------------------------------------------------------------
# Table 2.
# ----------------------------------------------------------------------
def test_table2_shape():
    rows = run_table2(benchmarks=["swim", "li", "fpppp"], limit=80000)
    by_name = {r.benchmark: r for r in rows}
    # The interleaved-grid FP code has short data threads.
    assert by_name["swim"].thread_data < 10
    # fpppp's replicated text yields very long text threads.
    assert by_name["fpppp"].thread_text > by_name["swim"].thread_text
    for row in rows:
        assert row.distribution_kb >= 1
        total_replicated = (row.replicated_text + row.replicated_global
                            + row.replicated_heap + row.replicated_stack)
        assert total_replicated >= 1


def test_table2_formatting():
    text = format_table2(run_table2(benchmarks=["go"], limit=20000))
    assert "Table 2" in text and "thread(all)" in text


# ----------------------------------------------------------------------
# Table 3.
# ----------------------------------------------------------------------
def test_table3_shape():
    rows = run_table3(benchmarks=QUICK_BENCHMARKS, **FAST)
    for row in rows:
        assert 0.0 <= row.late_broadcasts <= 1.0
        assert 0.0 <= row.bshr_squashes <= 1.0
        assert 0.0 <= row.found_in_bshr <= 1.0
        assert row.total_broadcasts > 0


def test_table3_formatting():
    text = format_table3(run_table3(benchmarks=["go"], **FAST))
    assert "Table 3" in text and "late broadcasts" in text


# ----------------------------------------------------------------------
# Figure 1.
# ----------------------------------------------------------------------
def test_figure1_matches_paper_exactly():
    result = run_figure1()
    assert result.paper_schedule.receive_times == [1, 2, 3, 4, 7, 8, 9, 12, 13]
    assert result.paper_schedule.lead_changes == 2
    assert result.lead_change_cost == 4  # two lead changes, 2 extra each


def test_figure1_formatting():
    text = format_figure1(run_figure1())
    assert "w5" in text and "7" in text


# ----------------------------------------------------------------------
# Figure 3.
# ----------------------------------------------------------------------
def test_figure3_analytic_counts_match_paper():
    chain = [0, 0, 0, 1]
    assert datascalar_crossings(chain) == 2
    assert traditional_crossings(chain, local_node=None) == 8


def test_figure3_timing_advantage():
    result = run_figure3(hops=48)
    assert result.datascalar_cycles < result.traditional_cycles
    assert result.crossing_ratio == 4.0


def test_figure3_crossings_edge_cases():
    assert datascalar_crossings([]) == 0
    assert datascalar_crossings([0]) == 1
    assert traditional_crossings([0, 1], local_node=0) == 2


def test_figure3_formatting():
    text = format_figure3(run_figure3(hops=24))
    assert "2 vs 8" in text


# ----------------------------------------------------------------------
# Figure 7.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def figure7_compress():
    return run_benchmark("compress", limit=8000)


def test_figure7_perfect_cache_is_upper_bound(figure7_compress):
    row = figure7_compress
    for ipc in (row.datascalar2_ipc, row.datascalar4_ipc,
                row.traditional_half_ipc, row.traditional_quarter_ipc):
        assert row.perfect_ipc >= ipc


def test_figure7_compress_wins_for_datascalar(figure7_compress):
    """The paper's headline: store-elimination makes compress the big
    DataScalar win."""
    row = figure7_compress
    assert row.speedup_2 > 1.0
    assert row.speedup_4 > row.speedup_2


def test_figure7_datascalar_insensitive_to_node_count(figure7_compress):
    row = figure7_compress
    drop_ds = row.datascalar2_ipc - row.datascalar4_ipc
    drop_trad = row.traditional_half_ipc - row.traditional_quarter_ipc
    assert drop_ds <= drop_trad + 0.05


def test_figure7_formatting(figure7_compress):
    text = format_figure7([figure7_compress])
    assert "Figure 7" in text and "compress" in text and "x" in text


# ----------------------------------------------------------------------
# Figure 8.
# ----------------------------------------------------------------------
def test_figure8_datascalar_wins_across_bus_sweep():
    """Paper: 'the DataScalar runs consistently outperform the
    traditional runs over a wide range of parameters' — at four nodes
    the win holds at every bus speed (see EXPERIMENTS.md for the
    two-node tag-overhead discussion)."""
    panel = run_panel("compress", "bus_clock", values=[2, 8, 16],
                      limit=5000)
    for point in panel.points:
        assert (point.datascalar4_ipc
                > point.traditional_quarter_ipc * 1.15), point.value


def test_figure8_memory_latency_sweep_converges():
    """Systems converge as bank time dominates (DataScalar reduces the
    overhead of transmitting the data, not accessing them)."""
    panel = run_panel("go", "memory_latency", values=[4, 64], limit=8000)
    fast, slow = panel.points
    gap_fast = fast.datascalar2_ipc / fast.traditional_half_ipc
    gap_slow = slow.datascalar2_ipc / slow.traditional_half_ipc
    assert abs(gap_slow - 1.0) < abs(gap_fast - 1.0)


def test_figure8_unknown_parameter_rejected():
    with pytest.raises(ValueError):
        run_panel("go", "voltage", values=[1])


def test_figure8_parameter_grid_is_complete():
    assert set(PARAMETERS) == {"cache_size", "memory_latency", "bus_clock",
                               "bus_width", "ruu_entries"}


def test_figure8_formatting():
    panel = run_panel("go", "cache_size", values=[4096], limit=3000)
    text = format_figure8([panel])
    assert "Figure 8" in text and "cache_size" in text
